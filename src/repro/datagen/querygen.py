"""Random query generation over one database instance (Section 4.2).

Queries are assembled from the paper's primitives — filter, join,
aggregate, sort, project — according to a :class:`QueryStructure`.
Generation is fully deterministic in ``(instance, seed, structure,
index)`` so workloads are reproducible.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from ..rng import derive_rng
from ..engine.catalog import Catalog
from ..engine.expressions import (
    Aggregate,
    AggregateFunction,
    BetweenPredicate,
    ComparisonOp,
    ComparisonPredicate,
    InListPredicate,
    LikePredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
)
from ..engine.logical import (
    LogicalGroupBy,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopK,
    LogicalWindow,
)
from ..engine.schema import DatabaseSchema, JoinEdge
from .instances import Instance
from .structures import QueryStructure

#: Selectivity range for generated filters (log-uniform).
_MIN_SELECTIVITY = 0.002
_MAX_SELECTIVITY = 0.95

#: Group-by key columns must not exceed this many distinct values.
_MAX_GROUP_DISTINCT = 50_000


class RandomQueryGenerator:
    """Generates random logical plans for one instance.

    ``extended_operators`` additionally mixes semi/anti joins and
    DISTINCT into the generated queries (off by default: the paper's
    generator produces inner-join SPJA shapes; the fixed benchmark
    suites already cover the remaining operators).
    """

    def __init__(self, instance: Instance, seed: int = 0,
                 extended_operators: bool = False):
        self.instance = instance
        self.schema: DatabaseSchema = instance.schema
        self.catalog: Catalog = instance.catalog
        self.seed = seed
        self.extended_operators = extended_operators

    # -- public API ------------------------------------------------------

    def generate(self, structure: QueryStructure, index: int) -> LogicalNode:
        """Generate the ``index``-th query of a structure group."""
        rng = derive_rng(self.seed, self.instance.name, structure.name, index)
        for attempt in range(8):
            try:
                return self._generate_once(structure, rng)
            except WorkloadError:
                continue
        raise WorkloadError(
            f"could not generate a {structure.name} query for "
            f"{self.instance.name}")

    def generate_batch(self, structure: QueryStructure,
                       count: int) -> List[LogicalNode]:
        return [self.generate(structure, i) for i in range(count)]

    # -- generation steps ---------------------------------------------------

    def _generate_once(self, structure: QueryStructure,
                       rng: np.random.Generator) -> LogicalNode:
        n_joins = 0
        if structure.joins[1] > 0:
            n_joins = int(rng.integers(structure.joins[0],
                                       structure.joins[1] + 1))
        plan, tables = self._join_tree(rng, n_joins, structure.selection)
        if structure.window:
            plan = self._add_window(plan, tables, rng)
        if structure.aggregation == "group":
            plan = self._add_group_by(plan, tables, rng)
        elif structure.aggregation == "simple":
            plan = self._add_simple_aggregation(plan, tables, rng)
        if structure.order == "sort":
            plan = self._add_order(plan, tables, rng, top_k=False,
                                   aggregated=structure.aggregation != "none")
        elif structure.order == "topk":
            plan = self._add_order(plan, tables, rng, top_k=True,
                                   aggregated=structure.aggregation != "none")
        if structure.aggregation == "none" and not structure.window:
            plan = self._add_projection(plan, tables, rng)
        return plan

    def _join_tree(self, rng: np.random.Generator, n_joins: int,
                   selection: str) -> Tuple[LogicalNode, List[str]]:
        """Random connected join tree with per-table filters."""
        start = self._pick_start_table(rng, n_joins)
        tables = [start]
        plan: LogicalNode = self._make_scan(start, selection, rng)
        for _ in range(n_joins):
            extension = self._pick_extension_edge(tables, rng)
            if extension is None:
                break
            edge, new_table = extension
            scan = self._make_scan(new_table, selection, rng,
                                   filter_probability=0.6)
            kind = "inner"
            if self.extended_operators and rng.random() < 0.2:
                # Semi/anti joins keep the *right* (tree) side, so the
                # new scan becomes the filter set and the existing tree
                # survives with its columns intact.
                kind = "semi" if rng.random() < 0.7 else "anti"
                plan = LogicalJoin(scan, plan, edge.reversed(), kind)
                continue
            plan = LogicalJoin(plan, scan, edge)
            tables.append(new_table)
        return plan, tables

    def _pick_start_table(self, rng: np.random.Generator,
                          n_joins: int) -> str:
        names = self.schema.table_names
        if n_joins > 0:
            names = [n for n in names if self.schema.edges_for(n)]
        if not names:
            raise WorkloadError("no joinable tables in schema")
        return str(rng.choice(names))

    def _pick_extension_edge(
            self, tables: List[str],
            rng: np.random.Generator) -> Optional[Tuple[JoinEdge, str]]:
        """An edge connecting the current tree to a fresh table."""
        candidates: List[Tuple[JoinEdge, str]] = []
        in_tree = set(tables)
        for edge in self.schema.join_edges:
            if edge.left_table in in_tree and edge.right_table not in in_tree:
                candidates.append((edge, edge.right_table))
            elif edge.right_table in in_tree and edge.left_table not in in_tree:
                candidates.append((edge.reversed(), edge.left_table))
        if not candidates:
            return None
        index = int(rng.integers(len(candidates)))
        return candidates[index]

    # -- scans and filters -----------------------------------------------------

    def _make_scan(self, table: str, selection: str,
                   rng: np.random.Generator,
                   filter_probability: float = 1.0) -> LogicalScan:
        predicates: List[Predicate] = []
        correlation = 1.0
        if selection != "none" and rng.random() < filter_probability:
            n_predicates = int(rng.integers(1, 4))
            for _ in range(n_predicates):
                predicate = self._make_predicate(table, selection, rng)
                if predicate is not None:
                    predicates.append(predicate)
            if len(predicates) >= 2:
                correlation = float(np.exp(rng.normal(0.0, 0.35)))
        return LogicalScan(table, predicates, correlation)

    def _make_predicate(self, table: str, selection: str,
                        rng: np.random.Generator) -> Optional[Predicate]:
        complex_wanted = selection == "complex" and rng.random() < 0.7
        if complex_wanted:
            choice = rng.random()
            if choice < 0.3:
                return self._between_predicate(table, rng)
            if choice < 0.55:
                return self._in_predicate(table, rng)
            if choice < 0.8:
                return self._like_predicate(table, rng)
            if choice < 0.9:
                inner = self._comparison_predicate(table, rng)
                other = self._comparison_predicate(table, rng)
                if inner is not None and other is not None:
                    return OrPredicate([inner, other])
                return inner or other
            inner = self._comparison_predicate(table, rng)
            return NotPredicate(inner) if inner is not None else None
        return self._comparison_predicate(table, rng)

    def _target_selectivity(self, rng: np.random.Generator) -> float:
        log_low, log_high = math.log(_MIN_SELECTIVITY), math.log(_MAX_SELECTIVITY)
        return math.exp(rng.uniform(log_low, log_high))

    def _numeric_columns(self, table: str) -> List[str]:
        schema = self.schema.table(table)
        return [c.name for c in schema.columns
                if c.dtype.is_numeric and c.name != schema.primary_key]

    def _string_columns(self, table: str) -> List[str]:
        schema = self.schema.table(table)
        return [c.name for c in schema.columns if c.dtype.is_string]

    def _comparison_predicate(self, table: str,
                              rng: np.random.Generator) -> Optional[Predicate]:
        columns = self._numeric_columns(table)
        if not columns:
            return None
        column = str(rng.choice(columns))
        dist = self.catalog.column_stats(table, column).distribution
        selectivity = self._target_selectivity(rng)
        if rng.random() < 0.5:
            value = dist.quantile(selectivity)
            op = ComparisonOp.LE if rng.random() < 0.8 else ComparisonOp.LT
        else:
            value = dist.quantile(1.0 - selectivity)
            op = ComparisonOp.GE if rng.random() < 0.8 else ComparisonOp.GT
        if rng.random() < 0.1 and dist.n_distinct < 10_000:
            op = ComparisonOp.EQ
            value = dist.quantile(rng.random())
        return ComparisonPredicate(table, column, op, float(value))

    def _between_predicate(self, table: str,
                           rng: np.random.Generator) -> Optional[Predicate]:
        columns = self._numeric_columns(table)
        if not columns:
            return None
        column = str(rng.choice(columns))
        dist = self.catalog.column_stats(table, column).distribution
        width = self._target_selectivity(rng)
        start = rng.uniform(0.0, max(1e-9, 1.0 - width))
        low = dist.quantile(start)
        high = dist.quantile(min(1.0, start + width))
        if high < low:
            low, high = high, low
        return BetweenPredicate(table, column, float(low), float(high))

    def _in_predicate(self, table: str,
                      rng: np.random.Generator) -> Optional[Predicate]:
        columns = self._numeric_columns(table) + self._string_columns(table)
        if not columns:
            return None
        column = str(rng.choice(columns))
        dist = self.catalog.column_stats(table, column).distribution
        n_values = int(rng.integers(2, 9))
        values = {float(dist.quantile(rng.random())) for _ in range(n_values)}
        return InListPredicate(table, column, sorted(values))

    def _like_predicate(self, table: str,
                        rng: np.random.Generator) -> Optional[Predicate]:
        columns = self._string_columns(table)
        if not columns:
            return self._comparison_predicate(table, rng)
        column = str(rng.choice(columns))
        dist = self.catalog.column_stats(table, column).distribution
        fraction = self._target_selectivity(rng)
        n_match = max(1, int(round(dist.n_distinct * fraction)))
        n_match = min(n_match, dist.n_distinct, 50_000)
        codes = rng.choice(dist.n_distinct, size=n_match, replace=False)
        return LikePredicate(table, column, pattern=f"%p{int(codes[0])}%",
                             matching_codes=[int(c) for c in codes])

    # -- aggregation / window / order / projection ------------------------------

    def _group_columns(self, tables: Sequence[str],
                       rng: np.random.Generator) -> List[Tuple[str, str]]:
        candidates: List[Tuple[str, str]] = []
        for table in tables:
            for column in self.schema.table(table).columns:
                stats = self.catalog.column_stats(table, column.name)
                if stats.true_distinct <= _MAX_GROUP_DISTINCT:
                    candidates.append((table, column.name))
        if not candidates:
            raise WorkloadError("no group-by candidate columns")
        n_keys = min(len(candidates), int(rng.integers(1, 3)))
        picked = rng.choice(len(candidates), size=n_keys, replace=False)
        return [candidates[int(i)] for i in picked]

    def _make_aggregates(self, tables: Sequence[str],
                         rng: np.random.Generator) -> List[Aggregate]:
        numeric: List[str] = []
        for table in tables:
            numeric.extend(f"{table}.{c}" for c in self._numeric_columns(table))
        aggregates: List[Aggregate] = [Aggregate(AggregateFunction.COUNT)]
        functions = [AggregateFunction.SUM, AggregateFunction.MIN,
                     AggregateFunction.MAX, AggregateFunction.AVG]
        if numeric:
            extra = int(rng.integers(1, 4))
            n_functions = len(functions)
            for _ in range(extra):
                function = functions[int(rng.integers(n_functions))]
                column = str(rng.choice(numeric))
                aggregates.append(Aggregate(function, column))
        return aggregates

    def _add_group_by(self, plan: LogicalNode, tables: Sequence[str],
                      rng: np.random.Generator) -> LogicalNode:
        return LogicalGroupBy(plan, self._group_columns(tables, rng),
                              self._make_aggregates(tables, rng))

    def _add_simple_aggregation(self, plan: LogicalNode,
                                tables: Sequence[str],
                                rng: np.random.Generator) -> LogicalNode:
        return LogicalGroupBy(plan, [], self._make_aggregates(tables, rng))

    def _add_window(self, plan: LogicalNode, tables: Sequence[str],
                    rng: np.random.Generator) -> LogicalNode:
        try:
            partitions = self._group_columns(tables, rng)[:1]
        except WorkloadError:
            partitions = []
        order_candidates: List[Tuple[str, str]] = []
        for table in tables:
            order_candidates.extend(
                (table, c) for c in self._numeric_columns(table))
        if not order_candidates:
            raise WorkloadError("no window ordering column")
        order = [order_candidates[int(rng.integers(len(order_candidates)))]]
        return LogicalWindow(plan, partitions, order, function="rank")

    def _add_order(self, plan: LogicalNode, tables: Sequence[str],
                   rng: np.random.Generator, top_k: bool,
                   aggregated: bool) -> LogicalNode:
        if aggregated:
            keys: List[Tuple[str, str]] = [("#computed", "agg_0")]
        else:
            candidates: List[Tuple[str, str]] = []
            for table in tables:
                candidates.extend(
                    (table, c.name) for c in self.schema.table(table).columns)
            if not candidates:
                raise WorkloadError("no sort key available")
            keys = [candidates[int(rng.integers(len(candidates)))]]
        if top_k:
            k = int(rng.choice([10, 100, 1000]))
            return LogicalTopK(plan, keys, k)
        return LogicalSort(plan, keys)

    def _add_projection(self, plan: LogicalNode, tables: Sequence[str],
                        rng: np.random.Generator) -> LogicalNode:
        candidates: List[Tuple[str, str]] = []
        for table in tables:
            candidates.extend(
                (table, c.name) for c in self.schema.table(table).columns)
        n_columns = max(1, min(len(candidates), int(rng.integers(1, 7))))
        picked = rng.choice(len(candidates), size=n_columns, replace=False)
        columns = [candidates[int(i)] for i in picked]
        if self.extended_operators and rng.random() < 0.25:
            from ..engine.logical import LogicalDistinct
            lowcard = [(t, c) for t, c in columns
                       if self.catalog.column_stats(t, c).true_distinct
                       <= _MAX_GROUP_DISTINCT]
            if lowcard:
                return LogicalDistinct(plan, lowcard[:2])
        return LogicalProject(plan, columns)
