"""The Join Order Benchmark (JOB): 113 join queries over the IMDB schema.

The published JOB [23] consists of 113 queries in 33 families (1a, 1b,
..., 33c): select-project-join queries over IMDB with 3-12 joins,
realistic correlated predicates, and a final aggregation to a single
row. This module reproduces the suite: 33 families are formed by
combining join *blocks* (companies, keywords, info, cast, alternative
titles) around the central ``title`` table; each family has 3-4 filter
variants, for exactly 113 queries.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence, Tuple

from ..errors import WorkloadError
from ..rng import derive_rng
from ..engine.logical import LogicalNode
from .benchmarks_common import (
    BenchmarkQueryBuilder,
    NamedQuery,
    count_rows,
    min_of,
)
from .instances import Instance, get_instance

#: Join blocks: table groups that attach to ``title`` as a unit.
_BLOCKS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("mc", ("movie_companies", "company_name", "company_type")),
    ("mk", ("movie_keyword", "keyword")),
    ("mi", ("movie_info", "info_type")),
    ("mii", ("movie_info_idx",)),
    ("ci", ("cast_info", "name", "role_type")),
    ("at", ("aka_title",)),
)

N_FAMILIES = 33
N_QUERIES = 113


def _families() -> List[Tuple[str, ...]]:
    """The 33 block combinations that define the query families."""
    combos: List[Tuple[str, ...]] = []
    names = [name for name, _ in _BLOCKS]
    for size in (1, 2, 3):
        for combo in combinations(names, size):
            combos.append(combo)
    return combos[:N_FAMILIES]


def _variant_counts() -> List[int]:
    """Variants per family summing to exactly 113 (33 × 3 + 14 extras)."""
    counts = [3] * N_FAMILIES
    for family_index in range(N_QUERIES - 3 * N_FAMILIES):
        counts[family_index] += 1
    return counts


def _block_tables(block_name: str) -> Tuple[str, ...]:
    for name, tables in _BLOCKS:
        if name == block_name:
            return tables
    raise WorkloadError(f"unknown JOB block {block_name!r}")


def _connect(builder: BenchmarkQueryBuilder,
             scans: Sequence[Tuple[str, LogicalNode]]) -> LogicalNode:
    """Left-deep join of scans; each new table attaches via a schema edge."""
    plan_tables = [scans[0][0]]
    plan = scans[0][1]
    for table, scan in scans[1:]:
        attached = False
        for existing in plan_tables:
            edge = builder.schema.edge_between(existing, table)
            if edge is not None:
                plan = builder.join(plan, scan, existing, table)
                plan_tables.append(table)
                attached = True
                break
        if not attached:
            raise WorkloadError(f"cannot attach {table!r} to join tree")
    return plan


def _build_query(builder: BenchmarkQueryBuilder, blocks: Tuple[str, ...],
                 variant: int) -> LogicalNode:
    rng = derive_rng(0x10B, "job", blocks, variant)
    title_predicates = []
    if rng.random() < 0.8:
        start = float(rng.uniform(0.3, 0.9))
        title_predicates.append(
            builder.between("title", "production_year", start,
                            float(rng.uniform(0.02, 0.3))))
    scans: List[Tuple[str, LogicalNode]] = [
        ("title", builder.scan("title", title_predicates))]
    keyword_pattern = f"kw{variant}"
    note_pattern = f"note{variant}"
    info_pattern = f"mi{variant}"

    for block_name in blocks:
        for table in _block_tables(block_name):
            predicates = []
            if table == "company_name" and rng.random() < 0.7:
                predicates.append(builder.eq(
                    "company_name", "country_code", float(rng.uniform(0.05, 0.95))))
            elif table == "keyword":
                predicates.append(builder.like(
                    "keyword", "keyword", float(rng.uniform(0.0005, 0.02)),
                    keyword_pattern))
            elif table == "info_type":
                predicates.append(builder.eq(
                    "info_type", "info", float(rng.uniform(0.05, 0.95))))
            elif table == "name" and rng.random() < 0.5:
                predicates.append(builder.eq(
                    "name", "gender", float(rng.uniform(0.1, 0.9))))
            elif table == "cast_info" and rng.random() < 0.6:
                predicates.append(builder.isin(
                    "cast_info", "nr_order",
                    [float(p) for p in rng.uniform(0.05, 0.6, size=3)]))
            elif table == "movie_companies" and rng.random() < 0.4:
                predicates.append(builder.like(
                    "movie_companies", "note", float(rng.uniform(0.005, 0.1)),
                    note_pattern))
            elif table == "movie_info" and rng.random() < 0.5:
                predicates.append(builder.like(
                    "movie_info", "info", float(rng.uniform(0.001, 0.05)),
                    info_pattern))
            scans.append((table, builder.scan(table, predicates)))

    plan = _connect(builder, scans)
    # JOB queries aggregate to a single row (MIN over result columns).
    aggregates = [min_of("title.production_year"), count_rows()]
    return builder.agg(plan, aggregates)


def job_family_blocks() -> List[Tuple[str, ...]]:
    """Public view of the family definitions (for tests and docs)."""
    return _families()


def job_queries(instance: Instance = None) -> List[NamedQuery]:
    """All 113 JOB queries (named ``job_1a`` ... ``job_33d``)."""
    instance = instance or get_instance("imdb")
    builder = BenchmarkQueryBuilder(instance)
    queries: List[NamedQuery] = []
    for family_index, (blocks, n_variants) in enumerate(
            zip(_families(), _variant_counts()), start=1):
        for variant in range(n_variants):
            suffix = "abcd"[variant]
            queries.append((f"job_{family_index}{suffix}",
                            _build_query(builder, blocks, variant)))
    if len(queries) != N_QUERIES:
        raise WorkloadError(
            f"JOB suite has {len(queries)} queries, expected {N_QUERIES}")
    return queries
