"""The 16 modular query structures (Section 4.2, Figure 8).

Queries are built from five primitives — filter, join, aggregate, sort,
project — combined into explicitly structured groups, from
single-table selections ("Se") up to the group combining all primitives.
Group labels follow Figure 8 of the paper: Se(lections),
C(omplex)Se(lections), J(oins), A(ggregations), Si(mple)A(ggregations),
W(indow functions), and their combinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import WorkloadError


@dataclass(frozen=True)
class QueryStructure:
    """Declarative shape of one generated-query group."""

    name: str
    label: str
    joins: Tuple[int, int] = (0, 0)          # min/max join count
    selection: str = "none"                   # none | simple | complex
    aggregation: str = "none"                 # none | group | simple
    window: bool = False
    order: str = "none"                       # none | sort | topk
    description: str = ""

    def __post_init__(self) -> None:
        assert self.selection in ("none", "simple", "complex")
        assert self.aggregation in ("none", "group", "simple")
        assert self.order in ("none", "sort", "topk")


#: All 16 generated query structures (the paper: "for each of the 16
#: query structures, we generate 40 queries per database").
QUERY_STRUCTURES: List[QueryStructure] = [
    QueryStructure("Se", "Se", selection="simple",
                   description="single-table scans with numeric filters"),
    QueryStructure("CSe", "CSe", selection="complex",
                   description="single-table scans with LIKE/IN/BETWEEN/OR"),
    QueryStructure("A", "A", aggregation="group",
                   description="single-table group-by aggregation"),
    QueryStructure("SiA", "SiA", aggregation="simple",
                   description="single-table aggregation to one row"),
    QueryStructure("W", "W", selection="simple", window=True,
                   description="window function over a filtered table"),
    QueryStructure("J", "J", joins=(1, 4),
                   description="pure join queries"),
    QueryStructure("SeJ", "SeJ", joins=(1, 4), selection="simple",
                   description="filters plus joins"),
    QueryStructure("CSeJ", "CSeJ", joins=(1, 4), selection="complex",
                   description="complex filters plus joins"),
    QueryStructure("SeA", "SeA", selection="simple", aggregation="group",
                   description="filters plus group-by"),
    QueryStructure("SeSiA", "SeSiA", selection="simple", aggregation="simple",
                   description="filters plus simple aggregation"),
    QueryStructure("JA", "JA", joins=(1, 4), aggregation="group",
                   description="joins plus group-by"),
    QueryStructure("SeJA", "SeJA", joins=(1, 4), selection="simple",
                   aggregation="group",
                   description="filters, joins, and group-by"),
    QueryStructure("SeJSiA", "SeJSiA", joins=(1, 5), selection="simple",
                   aggregation="simple",
                   description="filters, joins, aggregation to one row"),
    QueryStructure("CSeJA", "CSeJA", joins=(1, 4), selection="complex",
                   aggregation="group",
                   description="complex filters, joins, group-by"),
    QueryStructure("CSeJSiA", "CSeJSiA", joins=(1, 5), selection="complex",
                   aggregation="simple",
                   description="complex filters, joins, simple aggregation"),
    QueryStructure("All", "SeJASo", joins=(1, 4), selection="simple",
                   aggregation="group", order="topk",
                   description="all primitives: filter, join, group, sort"),
]


def structure_by_name(name: str) -> QueryStructure:
    for structure in QUERY_STRUCTURES:
        if structure.name == name:
            return structure
    raise WorkloadError(f"unknown query structure {name!r}")
