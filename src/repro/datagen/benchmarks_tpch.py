"""The 22 TPC-H benchmark queries as logical plans.

Each builder reproduces the *plan structure* of the published SQL on the
instance schema: the same join graph, aggregation keys, orderings, and
selectivity profile (date ranges covering one year select ~1/7 of a
7-year domain, ``r_name = 'ASIA'`` selects 1/5 of regions, and so on).
Correlated subqueries are lowered the way a real optimizer unnests them:
EXISTS → semi join, NOT EXISTS → anti join, scalar subqueries → extra
aggregation passes.

The suite runs against any ``tpch`` family instance (sf 1/10/100).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..engine.logical import LogicalNode
from .benchmarks_common import (
    BenchmarkQueryBuilder,
    NamedQuery,
    avg_of,
    count_rows,
    min_of,
    sum_of,
)
from .instances import Instance, get_instance

#: One year out of the ~7-year TPC-H date domain.
YEAR = 1.0 / 7.0


def _q1(b: BenchmarkQueryBuilder) -> LogicalNode:
    lineitem = b.scan("lineitem", [b.le("lineitem", "l_shipdate", 0.97)])
    grouped = b.group(
        lineitem,
        [("lineitem", "l_returnflag"), ("lineitem", "l_linestatus")],
        [sum_of("lineitem.l_quantity"), sum_of("lineitem.l_extendedprice"),
         sum_of("lineitem.l_discount"), avg_of("lineitem.l_quantity"),
         avg_of("lineitem.l_extendedprice"), avg_of("lineitem.l_discount"),
         count_rows()])
    return b.sort(grouped, [("lineitem", "l_returnflag"),
                            ("lineitem", "l_linestatus")])


def _q2(b: BenchmarkQueryBuilder) -> LogicalNode:
    part = b.scan("part", [b.eq("part", "p_size", 0.3),
                           b.like("part", "p_type", 1.0 / 6.0, "BRASS")])
    plan = b.join(b.scan("partsupp"), part, "partsupp", "part")
    plan = b.join(plan, b.scan("supplier"), "partsupp", "supplier")
    plan = b.join(plan, b.scan("nation"), "supplier", "nation")
    plan = b.join(plan, b.scan("region", [b.eq("region", "r_name", 0.2)]),
                  "nation", "region")
    grouped = b.group(plan, [("partsupp", "ps_partkey")],
                      [min_of("partsupp.ps_supplycost")])
    return b.topk(grouped, [("#computed", "agg_0")], 100)


def _q3(b: BenchmarkQueryBuilder) -> LogicalNode:
    customer = b.scan("customer", [b.eq("customer", "c_mktsegment", 0.3)])
    orders = b.scan("orders", [b.le("orders", "o_orderdate", 0.45)])
    lineitem = b.scan("lineitem", [b.ge("lineitem", "l_shipdate", 0.55)])
    plan = b.join(customer, orders, "customer", "orders")
    plan = b.join(plan, lineitem, "orders", "lineitem")
    grouped = b.group(
        plan,
        [("lineitem", "l_orderkey"), ("orders", "o_orderdate"),
         ("orders", "o_shippriority")],
        [sum_of("lineitem.l_extendedprice")])
    return b.topk(grouped, [("#computed", "agg_0"),
                            ("orders", "o_orderdate")], 10)


def _q4(b: BenchmarkQueryBuilder) -> LogicalNode:
    orders = b.scan("orders",
                    [b.between("orders", "o_orderdate", 0.5, YEAR / 4)])
    late = b.scan("lineitem", [b.le("lineitem", "l_commitdate", 0.63)])
    plan = b.join(late, orders, "lineitem", "orders", kind="semi")
    grouped = b.group(plan, [("orders", "o_orderpriority")], [count_rows()])
    return b.sort(grouped, [("orders", "o_orderpriority")])


def _q5(b: BenchmarkQueryBuilder) -> LogicalNode:
    # The paper's running example (Figure 2). The region join is folded
    # into a nation-key restriction (Umbra evaluates region x nation at
    # optimization time); the remaining nation join is eliminated by the
    # optimizer's small-table pass, leaving BETWEEN + IN predicates on
    # c_nationkey — exactly the feature pattern of Listing 3.
    customer = b.scan("customer")
    orders = b.scan("orders",
                    [b.between("orders", "o_orderdate", 0.3, YEAR)])
    nation = b.scan("nation",
                    [b.eq("nation", "n_regionkey", 0.6)])  # r_name = 'ASIA'
    plan = b.join(customer, nation, "customer", "nation")
    plan = b.join(plan, orders, "customer", "orders")
    plan = b.join(plan, b.scan("lineitem"), "orders", "lineitem")
    plan = b.join(plan, b.scan("supplier"), "lineitem", "supplier")
    grouped = b.group(plan, [("customer", "c_nationkey")],
                      [sum_of("lineitem.l_extendedprice")])
    return b.topk(grouped, [("#computed", "agg_0")], 25)


def _q6(b: BenchmarkQueryBuilder) -> LogicalNode:
    lineitem = b.scan("lineitem", [
        b.between("lineitem", "l_shipdate", 0.3, YEAR),
        b.between("lineitem", "l_discount", 0.45, 0.27),
        b.le("lineitem", "l_quantity", 0.48)])
    return b.agg(lineitem, [sum_of("lineitem.l_extendedprice")])


def _q7(b: BenchmarkQueryBuilder) -> LogicalNode:
    supplier = b.scan("supplier")
    lineitem = b.scan("lineitem",
                      [b.between("lineitem", "l_shipdate", 0.55, 2 * YEAR)])
    nation = b.scan("nation", [b.isin("nation", "n_name", [0.2, 0.8])])
    plan = b.join(supplier, lineitem, "supplier", "lineitem")
    plan = b.join(plan, b.scan("orders"), "lineitem", "orders")
    plan = b.join(plan, b.scan("customer"), "orders", "customer")
    plan = b.join(plan, nation, "supplier", "nation")
    grouped = b.group(plan, [("nation", "n_name")],
                      [sum_of("lineitem.l_extendedprice")])
    return b.sort(grouped, [("nation", "n_name")])


def _q8(b: BenchmarkQueryBuilder) -> LogicalNode:
    part = b.scan("part", [b.eq("part", "p_type", 0.4)])
    orders = b.scan("orders",
                    [b.between("orders", "o_orderdate", 0.6, 2 * YEAR)])
    region = b.scan("region", [b.eq("region", "r_name", 0.4)])
    plan = b.join(part, b.scan("lineitem"), "part", "lineitem")
    plan = b.join(plan, b.scan("supplier"), "lineitem", "supplier")
    plan = b.join(plan, orders, "lineitem", "orders")
    plan = b.join(plan, b.scan("customer"), "orders", "customer")
    plan = b.join(plan, b.scan("nation"), "customer", "nation")
    plan = b.join(plan, region, "nation", "region")
    grouped = b.group(plan, [("orders", "o_orderdate")],
                      [sum_of("lineitem.l_extendedprice")])
    return b.sort(grouped, [("orders", "o_orderdate")])


def _q9(b: BenchmarkQueryBuilder) -> LogicalNode:
    part = b.scan("part", [b.like("part", "p_type", 0.08, "green")])
    plan = b.join(part, b.scan("lineitem"), "part", "lineitem")
    plan = b.join(plan, b.scan("supplier"), "lineitem", "supplier")
    plan = b.join(plan, b.scan("partsupp"), "part", "partsupp")
    plan = b.join(plan, b.scan("orders"), "lineitem", "orders")
    plan = b.join(plan, b.scan("nation"), "supplier", "nation")
    grouped = b.group(
        plan, [("nation", "n_name"), ("orders", "o_orderdate")],
        [sum_of("lineitem.l_extendedprice")])
    return b.sort(grouped, [("nation", "n_name")])


def _q10(b: BenchmarkQueryBuilder) -> LogicalNode:
    orders = b.scan("orders",
                    [b.between("orders", "o_orderdate", 0.7, YEAR / 4)])
    lineitem = b.scan("lineitem", [b.eq("lineitem", "l_returnflag", 0.25)])
    plan = b.join(b.scan("customer"), orders, "customer", "orders")
    plan = b.join(plan, lineitem, "orders", "lineitem")
    plan = b.join(plan, b.scan("nation"), "customer", "nation")
    grouped = b.group(
        plan,
        [("customer", "c_custkey"), ("nation", "n_name")],
        [sum_of("lineitem.l_extendedprice")])
    return b.topk(grouped, [("#computed", "agg_0")], 20)


def _q11(b: BenchmarkQueryBuilder) -> LogicalNode:
    nation = b.scan("nation", [b.eq("nation", "n_name", 0.5)])
    plan = b.join(b.scan("partsupp"), b.scan("supplier"),
                  "partsupp", "supplier")
    plan = b.join(plan, nation, "supplier", "nation")
    grouped = b.group(plan, [("partsupp", "ps_partkey")],
                      [sum_of("partsupp.ps_supplycost")])
    return b.topk(grouped, [("#computed", "agg_0")], 1000)


def _q12(b: BenchmarkQueryBuilder) -> LogicalNode:
    lineitem = b.scan("lineitem", [
        b.isin("lineitem", "l_shipmode", [0.2, 0.7]),
        b.between("lineitem", "l_receiptdate", 0.4, YEAR)])
    plan = b.join(b.scan("orders"), lineitem, "orders", "lineitem")
    grouped = b.group(plan, [("lineitem", "l_shipmode")], [count_rows()])
    return b.sort(grouped, [("lineitem", "l_shipmode")])


def _q13(b: BenchmarkQueryBuilder) -> LogicalNode:
    # Two-level aggregation: orders per customer, then count by order count.
    orders = b.scan("orders",
                    [b.not_like("orders", "o_orderpriority", 0.2, "special")])
    per_customer = b.group(orders, [("orders", "o_custkey")], [count_rows()])
    redistributed = b.group(per_customer, [("#computed", "agg_0")],
                            [count_rows()])
    return b.sort(redistributed, [("#computed", "agg_0")])


def _q14(b: BenchmarkQueryBuilder) -> LogicalNode:
    lineitem = b.scan("lineitem",
                      [b.between("lineitem", "l_shipdate", 0.8, YEAR / 12)])
    plan = b.join(lineitem, b.scan("part"), "lineitem", "part")
    return b.agg(plan, [sum_of("lineitem.l_extendedprice"), count_rows()])


def _q15(b: BenchmarkQueryBuilder) -> LogicalNode:
    lineitem = b.scan("lineitem",
                      [b.between("lineitem", "l_shipdate", 0.9, YEAR / 4)])
    revenue = b.group(lineitem, [("lineitem", "l_suppkey")],
                      [sum_of("lineitem.l_extendedprice")])
    plan = b.join(revenue, b.scan("supplier"), "lineitem", "supplier")
    return b.topk(plan, [("#computed", "agg_0")], 1)


def _q16(b: BenchmarkQueryBuilder) -> LogicalNode:
    part = b.scan("part", [
        b.ne("part", "p_brand", 0.5),
        b.not_like("part", "p_type", 1.0 / 6.0, "MEDIUM"),
        b.isin("part", "p_size", [0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.95, 0.05])])
    plan = b.join(b.scan("partsupp"), part, "partsupp", "part")
    grouped = b.group(
        plan,
        [("part", "p_brand"), ("part", "p_type"), ("part", "p_size")],
        [count_rows()])
    return b.topk(grouped, [("#computed", "agg_0")], 1000)


def _q17(b: BenchmarkQueryBuilder) -> LogicalNode:
    part = b.scan("part", [b.eq("part", "p_brand", 0.4),
                           b.eq("part", "p_container", 0.6)])
    lineitem = b.scan("lineitem", [b.le("lineitem", "l_quantity", 0.1)])
    plan = b.join(part, lineitem, "part", "lineitem")
    return b.agg(plan, [sum_of("lineitem.l_extendedprice")])


def _q18(b: BenchmarkQueryBuilder) -> LogicalNode:
    big_orders = b.group(b.scan("lineitem"), [("lineitem", "l_orderkey")],
                         [sum_of("lineitem.l_quantity")])
    plan = b.join(big_orders, b.scan("orders"), "lineitem", "orders")
    plan = b.join(plan, b.scan("customer"), "orders", "customer")
    grouped = b.group(
        plan,
        [("customer", "c_custkey"), ("orders", "o_orderdate")],
        [sum_of("orders.o_totalprice")])
    return b.topk(grouped, [("#computed", "agg_0")], 100)


def _q19(b: BenchmarkQueryBuilder) -> LogicalNode:
    part = b.scan("part", [
        b.either(b.eq("part", "p_brand", 0.2), b.eq("part", "p_brand", 0.5),
                 b.eq("part", "p_brand", 0.8)),
        b.le("part", "p_size", 0.3)])
    lineitem = b.scan("lineitem", [
        b.between("lineitem", "l_quantity", 0.2, 0.2),
        b.isin("lineitem", "l_shipmode", [0.1, 0.6])])
    plan = b.join(part, lineitem, "part", "lineitem")
    return b.agg(plan, [sum_of("lineitem.l_extendedprice")])


def _q20(b: BenchmarkQueryBuilder) -> LogicalNode:
    part = b.scan("part", [b.like("part", "p_brand", 0.1, "forest")])
    qualifying = b.join(part, b.scan("partsupp"), "part", "partsupp")
    supplier = b.join(qualifying, b.scan("supplier"), "partsupp", "supplier",
                      kind="semi")
    plan = b.join(supplier, b.scan("nation", [b.eq("nation", "n_name", 0.3)]),
                  "supplier", "nation")
    return b.sort(plan, [("supplier", "s_name")])


def _q21(b: BenchmarkQueryBuilder) -> LogicalNode:
    orders = b.scan("orders", [b.eq("orders", "o_orderstatus", 0.9)])
    lineitem = b.scan("lineitem",
                      [b.ge("lineitem", "l_receiptdate", 0.5)])
    plan = b.join(b.scan("supplier"), lineitem, "supplier", "lineitem")
    plan = b.join(plan, orders, "lineitem", "orders")
    plan = b.join(plan, b.scan("nation", [b.eq("nation", "n_name", 0.7)]),
                  "supplier", "nation")
    grouped = b.group(plan, [("supplier", "s_name")], [count_rows()])
    return b.topk(grouped, [("#computed", "agg_0")], 100)


def _q22(b: BenchmarkQueryBuilder) -> LogicalNode:
    customer = b.scan("customer", [
        b.isin("customer", "c_nationkey", [0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.95]),
        b.ge("customer", "c_acctbal", 0.5)])
    plan = b.join(b.scan("orders"), customer, "orders", "customer",
                  kind="anti")
    grouped = b.group(plan, [("customer", "c_nationkey")],
                      [count_rows(), sum_of("customer.c_acctbal")])
    return b.sort(grouped, [("customer", "c_nationkey")])


_BUILDERS: Dict[str, Callable[[BenchmarkQueryBuilder], LogicalNode]] = {
    f"tpch_q{i}": fn for i, fn in enumerate(
        [_q1, _q2, _q3, _q4, _q5, _q6, _q7, _q8, _q9, _q10, _q11,
         _q12, _q13, _q14, _q15, _q16, _q17, _q18, _q19, _q20, _q21, _q22],
        start=1)
}


def tpch_query_names() -> List[str]:
    return list(_BUILDERS)


def tpch_queries(instance: Instance = None) -> List[NamedQuery]:
    """All 22 TPC-H queries for a ``tpch`` family instance."""
    instance = instance or get_instance("tpch_sf1")
    builder = BenchmarkQueryBuilder(instance)
    return [(name, build(builder)) for name, build in _BUILDERS.items()]


def tpch_query(name: str, instance: Instance = None) -> LogicalNode:
    instance = instance or get_instance("tpch_sf1")
    return _BUILDERS[name](BenchmarkQueryBuilder(instance))
