"""The corpus of 21 database instances.

The paper trains on the 21 public instances collected by Hilprecht and
Binnig for their zero-shot corpus [16] — TPC-H and TPC-DS at several
scale factors plus real-world datasets (financial, health, sports, ...).
Those datasets are not available offline, so this module defines
schema-and-statistics equivalents:

* TPC-H (sf 1/10/100), TPC-DS (sf 1/10/100) and JOB/IMDB are modeled
  table-by-table after the published schemas and row counts,
* the remaining instances are deterministic synthetic schemas whose
  shapes (table counts, row-count spreads, fan-outs, skew) are drawn to
  match the diversity of the original corpus.

T3 never reads tuples — only schemas, statistics, and cardinalities —
so instance diversity is the property that matters and is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import SchemaError
from ..rng import derive_rng
from ..engine.catalog import Catalog
from ..engine.distributions import (
    UniformInt,
    ZipfInt,
    uniform_categorical,
    zipf_categorical,
)
from ..engine.schema import Column, DatabaseSchema, JoinEdge, TableSchema
from ..engine.types import DataType


@dataclass(frozen=True)
class Instance:
    """One database instance: schema plus full statistics."""

    name: str
    family: str
    schema: DatabaseSchema
    catalog: Catalog


class InstanceBuilder:
    """Small DSL for declaring instances with consistent statistics."""

    def __init__(self, name: str, family: Optional[str] = None, seed: int = 0):
        self.name = name
        self.family = family or name
        self.seed = seed
        self._tables: List[TableSchema] = []
        self._edges: List[JoinEdge] = []
        self._rows: Dict[str, int] = {}
        self._distributions: Dict[str, Dict[str, object]] = {}

    # -- tables ------------------------------------------------------------

    def table(self, name: str, rows: int) -> "TableBuilder":
        if rows < 1:
            raise SchemaError(f"table {name!r} needs at least one row")
        return TableBuilder(self, name, rows)

    def _register_table(self, table: TableSchema, rows: int,
                        distributions: Dict[str, object]) -> None:
        self._tables.append(table)
        self._rows[table.name] = rows
        self._distributions[table.name] = distributions

    def edge(self, left_table: str, left_column: str, right_table: str,
             right_column: str, fanout: float = 1.0) -> None:
        self._edges.append(JoinEdge(left_table, left_column,
                                    right_table, right_column, fanout))

    def build(self) -> Instance:
        schema = DatabaseSchema(self.name, self._tables, self._edges)
        catalog = Catalog(schema, seed=self.seed)
        for table_name, rows in self._rows.items():
            catalog.set_table_stats(table_name, rows)
            for column_name, dist in self._distributions[table_name].items():
                catalog.set_column_distribution(table_name, column_name, dist)
        catalog.validate_complete()
        return Instance(self.name, self.family, schema, catalog)


class TableBuilder:
    """Declares the columns of one table, with their distributions."""

    def __init__(self, parent: InstanceBuilder, name: str, rows: int):
        self._parent = parent
        self.name = name
        self.rows = rows
        self._columns: List[Column] = []
        self._distributions: Dict[str, object] = {}
        self._primary_key: Optional[str] = None

    def key(self, name: str) -> "TableBuilder":
        """Dense integer primary key 1..rows."""
        self._columns.append(Column(name, DataType.BIGINT))
        self._distributions[name] = UniformInt(1, self.rows)
        self._primary_key = name
        return self

    def fk(self, name: str, parent_rows: int) -> "TableBuilder":
        """Foreign key referencing a dense 1..parent_rows key."""
        self._columns.append(Column(name, DataType.BIGINT))
        self._distributions[name] = UniformInt(1, max(1, parent_rows))
        return self

    def int_col(self, name: str, low: int, high: int,
                skew: float = 0.0) -> "TableBuilder":
        self._columns.append(Column(name, DataType.INT))
        if skew > 0:
            self._distributions[name] = ZipfInt(low, high - low + 1, skew)
        else:
            self._distributions[name] = UniformInt(low, high)
        return self

    def decimal_col(self, name: str, low: int, high: int,
                    skew: float = 0.0) -> "TableBuilder":
        self._columns.append(Column(name, DataType.DECIMAL))
        if skew > 0:
            self._distributions[name] = ZipfInt(low, high - low + 1, skew)
        else:
            self._distributions[name] = UniformInt(low, high)
        return self

    def date_col(self, name: str, n_days: int = 2557,
                 start: int = 8035) -> "TableBuilder":
        """Date column spanning ``n_days`` days (default: 1992-1998)."""
        self._columns.append(Column(name, DataType.DATE))
        self._distributions[name] = UniformInt(start, start + n_days - 1)
        return self

    #: Explicit pmf arrays are capped at this many dictionary codes;
    #: higher-cardinality text columns are represented by a same-shaped
    #: distribution over a coarser dictionary (their selectivity
    #: behaviour is fraction-based and unaffected).
    MAX_DICTIONARY_CODES = 50_000

    def category(self, name: str, n_distinct: int,
                 skew: float = 0.0) -> "TableBuilder":
        """Dictionary-encoded short string (CHAR) column."""
        self._columns.append(Column(name, DataType.CHAR))
        n_distinct = min(n_distinct, self.MAX_DICTIONARY_CODES)
        if skew > 0:
            self._distributions[name] = zipf_categorical(n_distinct, skew)
        else:
            self._distributions[name] = uniform_categorical(n_distinct)
        return self

    def text(self, name: str, n_distinct: int,
             skew: float = 1.0) -> "TableBuilder":
        """Dictionary-encoded VARCHAR column (names, comments, ...)."""
        self._columns.append(Column(name, DataType.VARCHAR))
        n_distinct = min(n_distinct, self.MAX_DICTIONARY_CODES)
        if skew > 0:
            self._distributions[name] = zipf_categorical(n_distinct, skew)
        else:
            self._distributions[name] = uniform_categorical(n_distinct)
        return self

    def done(self) -> InstanceBuilder:
        table = TableSchema(self.name, self._columns, self._primary_key)
        self._parent._register_table(table, self.rows, self._distributions)
        return self._parent


# ---------------------------------------------------------------------------
# TPC-H
# ---------------------------------------------------------------------------


def _build_tpch(scale_factor: int) -> Instance:
    sf = scale_factor
    b = InstanceBuilder(f"tpch_sf{sf}", family="tpch", seed=100 + sf)
    n_customer = 150_000 * sf
    n_orders = 1_500_000 * sf
    n_lineitem = 6_000_000 * sf
    n_part = 200_000 * sf
    n_supplier = 10_000 * sf
    n_partsupp = 800_000 * sf

    (b.table("region", 5)
     .key("r_regionkey").text("r_name", 5, 0.0).done())
    (b.table("nation", 25)
     .key("n_nationkey").fk("n_regionkey", 5).text("n_name", 25, 0.0).done())
    (b.table("supplier", n_supplier)
     .key("s_suppkey").fk("s_nationkey", 25)
     .decimal_col("s_acctbal", -999, 9999).text("s_name", n_supplier).done())
    (b.table("customer", n_customer)
     .key("c_custkey").fk("c_nationkey", 25)
     .decimal_col("c_acctbal", -999, 9999)
     .category("c_mktsegment", 5).text("c_name", n_customer).done())
    (b.table("part", n_part)
     .key("p_partkey").category("p_brand", 25).category("p_type", 150)
     .category("p_container", 40).int_col("p_size", 1, 50)
     .decimal_col("p_retailprice", 900, 2000).done())
    (b.table("partsupp", n_partsupp)
     .fk("ps_partkey", n_part).fk("ps_suppkey", n_supplier)
     .int_col("ps_availqty", 1, 9999)
     .decimal_col("ps_supplycost", 1, 1000).done())
    (b.table("orders", n_orders)
     .key("o_orderkey").fk("o_custkey", n_customer)
     .category("o_orderstatus", 3, 0.6).decimal_col("o_totalprice", 800, 500000)
     .date_col("o_orderdate").category("o_orderpriority", 5)
     .int_col("o_shippriority", 0, 0).done())
    (b.table("lineitem", n_lineitem)
     .fk("l_orderkey", n_orders).fk("l_partkey", n_part)
     .fk("l_suppkey", n_supplier)
     .int_col("l_linenumber", 1, 7)
     .int_col("l_quantity", 1, 50)
     .decimal_col("l_extendedprice", 900, 100000)
     .decimal_col("l_discount", 0, 10)
     .decimal_col("l_tax", 0, 8)
     .category("l_returnflag", 3, 0.5).category("l_linestatus", 2)
     .date_col("l_shipdate").date_col("l_commitdate").date_col("l_receiptdate")
     .category("l_shipmode", 7).done())

    b.edge("nation", "n_regionkey", "region", "r_regionkey")
    b.edge("supplier", "s_nationkey", "nation", "n_nationkey")
    b.edge("customer", "c_nationkey", "nation", "n_nationkey")
    b.edge("orders", "o_custkey", "customer", "c_custkey")
    b.edge("lineitem", "l_orderkey", "orders", "o_orderkey", fanout=4.0)
    b.edge("lineitem", "l_partkey", "part", "p_partkey")
    b.edge("lineitem", "l_suppkey", "supplier", "s_suppkey")
    b.edge("partsupp", "ps_partkey", "part", "p_partkey")
    b.edge("partsupp", "ps_suppkey", "supplier", "s_suppkey")
    return b.build()


# ---------------------------------------------------------------------------
# TPC-DS (representative 12-table subset of the 24-table schema)
# ---------------------------------------------------------------------------


def _build_tpcds(scale_factor: int) -> Instance:
    sf = scale_factor
    b = InstanceBuilder(f"tpcds_sf{sf}", family="tpcds", seed=200 + sf)
    n_item = 18_000 * max(1, sf // 3 + 1)
    n_customer = 100_000 * sf
    n_address = 50_000 * sf
    n_demo = 1_920_800  # fixed size in TPC-DS
    n_date = 73_049     # fixed size in TPC-DS
    n_store = max(12, 6 * sf)
    n_promo = 300 + 10 * sf
    n_warehouse = max(5, sf)
    n_store_sales = 2_880_000 * sf
    n_catalog_sales = 1_440_000 * sf
    n_web_sales = 720_000 * sf
    n_store_returns = 288_000 * sf

    (b.table("date_dim", n_date)
     .key("d_date_sk").int_col("d_year", 1900, 2100)
     .int_col("d_moy", 1, 12).int_col("d_dom", 1, 31)
     .category("d_day_name", 7).int_col("d_qoy", 1, 4).done())
    (b.table("item", n_item)
     .key("i_item_sk").category("i_category", 10).category("i_brand", 700, 0.4)
     .category("i_class", 100).decimal_col("i_current_price", 1, 300)
     .category("i_color", 92).text("i_product_name", n_item).done())
    (b.table("customer", n_customer)
     .key("c_customer_sk").fk("c_current_addr_sk", n_address)
     .fk("c_current_cdemo_sk", n_demo)
     .int_col("c_birth_year", 1924, 1992).text("c_last_name", 5000, 0.7).done())
    (b.table("customer_address", n_address)
     .key("ca_address_sk").category("ca_state", 51, 0.6)
     .category("ca_city", 600, 0.8).category("ca_country", 1)
     .int_col("ca_gmt_offset", -10, -5).done())
    (b.table("customer_demographics", n_demo)
     .key("cd_demo_sk").category("cd_gender", 2)
     .category("cd_marital_status", 5).category("cd_education_status", 7)
     .int_col("cd_dep_count", 0, 6).done())
    (b.table("store", n_store)
     .key("s_store_sk").category("s_state", 9).int_col("s_number_employees", 200, 300)
     .decimal_col("s_tax_percentage", 0, 11).done())
    (b.table("warehouse", n_warehouse)
     .key("w_warehouse_sk").int_col("w_warehouse_sq_ft", 50000, 1000000).done())
    (b.table("promotion", n_promo)
     .key("p_promo_sk").category("p_channel_email", 2)
     .category("p_channel_tv", 2).decimal_col("p_cost", 500, 2000).done())
    (b.table("store_sales", n_store_sales)
     .fk("ss_sold_date_sk", n_date).fk("ss_item_sk", n_item)
     .fk("ss_customer_sk", n_customer).fk("ss_store_sk", n_store)
     .fk("ss_promo_sk", n_promo)
     .int_col("ss_quantity", 1, 100)
     .decimal_col("ss_sales_price", 1, 200, skew=0.5)
     .decimal_col("ss_ext_discount_amt", 0, 10000, skew=1.0)
     .decimal_col("ss_net_profit", -10000, 20000).done())
    (b.table("catalog_sales", n_catalog_sales)
     .fk("cs_sold_date_sk", n_date).fk("cs_item_sk", n_item)
     .fk("cs_bill_customer_sk", n_customer).fk("cs_warehouse_sk", n_warehouse)
     .int_col("cs_quantity", 1, 100)
     .decimal_col("cs_sales_price", 1, 300, skew=0.5)
     .decimal_col("cs_net_profit", -10000, 20000).done())
    (b.table("web_sales", n_web_sales)
     .fk("ws_sold_date_sk", n_date).fk("ws_item_sk", n_item)
     .fk("ws_bill_customer_sk", n_customer)
     .int_col("ws_quantity", 1, 100)
     .decimal_col("ws_sales_price", 1, 300, skew=0.5)
     .decimal_col("ws_net_profit", -10000, 20000).done())
    (b.table("store_returns", n_store_returns)
     .fk("sr_returned_date_sk", n_date).fk("sr_item_sk", n_item)
     .fk("sr_customer_sk", n_customer)
     .int_col("sr_return_quantity", 1, 100)
     .decimal_col("sr_return_amt", 1, 20000, skew=0.8).done())

    for fact, prefix in (("store_sales", "ss"), ("catalog_sales", "cs"),
                         ("web_sales", "ws")):
        date_col = f"{prefix}_sold_date_sk"
        b.edge(fact, date_col, "date_dim", "d_date_sk")
        b.edge(fact, f"{prefix}_item_sk", "item", "i_item_sk")
    b.edge("store_sales", "ss_customer_sk", "customer", "c_customer_sk")
    b.edge("store_sales", "ss_store_sk", "store", "s_store_sk")
    b.edge("store_sales", "ss_promo_sk", "promotion", "p_promo_sk")
    b.edge("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk")
    b.edge("catalog_sales", "cs_warehouse_sk", "warehouse", "w_warehouse_sk")
    b.edge("web_sales", "ws_bill_customer_sk", "customer", "c_customer_sk")
    b.edge("store_returns", "sr_returned_date_sk", "date_dim", "d_date_sk")
    b.edge("store_returns", "sr_item_sk", "item", "i_item_sk")
    b.edge("store_returns", "sr_customer_sk", "customer", "c_customer_sk")
    b.edge("customer", "c_current_addr_sk", "customer_address", "ca_address_sk")
    b.edge("customer", "c_current_cdemo_sk", "customer_demographics",
           "cd_demo_sk")
    return b.build()


# ---------------------------------------------------------------------------
# IMDB (Join Order Benchmark schema)
# ---------------------------------------------------------------------------


def _build_imdb() -> Instance:
    b = InstanceBuilder("imdb", family="imdb", seed=300)
    n_title = 2_528_312
    n_name = 4_167_491
    n_company = 234_997
    n_keyword = 134_170
    n_char = 3_140_339

    (b.table("title", n_title)
     .key("id").fk("kind_id", 7).int_col("production_year", 1880, 2019, skew=0.8)
     .text("title", 1_500_000, 0.5).int_col("season_nr", 1, 90).done())
    (b.table("kind_type", 7).key("id").text("kind", 7, 0.0).done())
    (b.table("movie_companies", 2_609_129)
     .fk("movie_id", n_title).fk("company_id", n_company)
     .fk("company_type_id", 4).text("note", 130_000, 1.2).done())
    (b.table("company_name", n_company)
     .key("id").text("name", n_company).category("country_code", 230, 1.2).done())
    (b.table("company_type", 4).key("id").text("kind", 4, 0.0).done())
    (b.table("movie_info", 14_835_720)
     .fk("movie_id", n_title).fk("info_type_id", 113)
     .text("info", 2_700_000, 1.0).done())
    (b.table("movie_info_idx", 1_380_035)
     .fk("movie_id", n_title).fk("info_type_id", 113)
     .text("info", 130_000, 0.8).done())
    (b.table("info_type", 113).key("id").text("info", 113, 0.0).done())
    (b.table("cast_info", 36_244_344)
     .fk("movie_id", n_title).fk("person_id", n_name)
     .fk("role_id", 12).fk("person_role_id", n_char)
     .int_col("nr_order", 1, 1000, skew=1.1).done())
    (b.table("name", n_name)
     .key("id").text("name", n_name).category("gender", 3, 0.4).done())
    (b.table("char_name", n_char).key("id").text("name", n_char).done())
    (b.table("role_type", 12).key("id").text("role", 12, 0.0).done())
    (b.table("movie_keyword", 4_523_930)
     .fk("movie_id", n_title).fk("keyword_id", n_keyword).done())
    (b.table("keyword", n_keyword).key("id").text("keyword", n_keyword).done())
    (b.table("aka_title", 361_472)
     .fk("movie_id", n_title).text("title", 340_000).done())

    b.edge("title", "kind_id", "kind_type", "id")
    b.edge("movie_companies", "movie_id", "title", "id", fanout=1.0)
    b.edge("movie_companies", "company_id", "company_name", "id", fanout=1.3)
    b.edge("movie_companies", "company_type_id", "company_type", "id")
    b.edge("movie_info", "movie_id", "title", "id", fanout=5.9)
    b.edge("movie_info", "info_type_id", "info_type", "id")
    b.edge("movie_info_idx", "movie_id", "title", "id")
    b.edge("movie_info_idx", "info_type_id", "info_type", "id")
    b.edge("cast_info", "movie_id", "title", "id", fanout=14.3)
    b.edge("cast_info", "person_id", "name", "id", fanout=8.7)
    b.edge("cast_info", "role_id", "role_type", "id")
    b.edge("cast_info", "person_role_id", "char_name", "id", fanout=2.0)
    b.edge("movie_keyword", "movie_id", "title", "id", fanout=1.8)
    b.edge("movie_keyword", "keyword_id", "keyword", "id", fanout=1.5)
    b.edge("aka_title", "movie_id", "title", "id")
    return b.build()


# ---------------------------------------------------------------------------
# Synthetic real-world-like instances
# ---------------------------------------------------------------------------

#: The 14 remaining corpus members (names follow the zero-shot corpus).
_SYNTHETIC_NAMES = (
    "airline", "ssb", "walmart", "financial", "basketball", "accidents",
    "movielens", "baseball", "hepatitis", "tournament", "genome", "credit",
    "employee", "carcinogenesis",
)

#: Rough size classes (max fact-table rows) per synthetic instance.
_SYNTHETIC_SCALE = {
    "airline": 8_000_000, "ssb": 6_000_000, "walmart": 4_000_000,
    "financial": 1_100_000, "basketball": 300_000, "accidents": 1_500_000,
    "movielens": 1_000_000, "baseball": 400_000, "hepatitis": 20_000,
    "tournament": 150_000, "genome": 5_000_000, "credit": 900_000,
    "employee": 500_000, "carcinogenesis": 50_000,
}


def _build_synthetic(name: str) -> Instance:
    """Deterministically synthesize a plausible multi-table instance."""
    rng = derive_rng(0xC0FFEE, "instance", name)
    scale = _SYNTHETIC_SCALE[name]
    b = InstanceBuilder(name, family=name, seed=derive_rng(1, name).integers(1 << 30))
    n_dimensions = int(rng.integers(2, 6))
    n_facts = int(rng.integers(1, 3))

    dimension_rows: List[int] = []
    for dim_index in range(n_dimensions):
        rows = int(np.clip(rng.lognormal(np.log(scale) - 4.5, 1.5), 10,
                           scale // 5))
        dimension_rows.append(rows)
        table = b.table(f"{name}_dim{dim_index}", rows).key("id")
        for col_index in range(int(rng.integers(2, 6))):
            kind = rng.random()
            if kind < 0.35:
                table.int_col(f"attr{col_index}", 0,
                              int(rng.integers(10, 10_000)),
                              skew=float(rng.choice([0.0, 0.0, 0.6, 1.1])))
            elif kind < 0.6:
                table.category(f"cat{col_index}", int(rng.integers(2, 200)),
                               skew=float(rng.choice([0.0, 0.5, 1.0])))
            elif kind < 0.8:
                table.decimal_col(f"val{col_index}", 0,
                                  int(rng.integers(100, 100_000)))
            else:
                table.text(f"txt{col_index}",
                           max(2, rows // int(rng.integers(2, 20))))
        table.done()

    for fact_index in range(n_facts):
        rows = int(scale / (fact_index + 1))
        table = b.table(f"{name}_fact{fact_index}", rows).key("id")
        linked = rng.choice(n_dimensions, size=min(n_dimensions,
                                                   int(rng.integers(1, 5))),
                            replace=False)
        for dim_index in sorted(int(i) for i in linked):
            table.fk(f"dim{dim_index}_id", dimension_rows[dim_index])
        for col_index in range(int(rng.integers(2, 7))):
            kind = rng.random()
            if kind < 0.4:
                table.decimal_col(f"measure{col_index}", 0,
                                  int(rng.integers(100, 1_000_000)),
                                  skew=float(rng.choice([0.0, 0.0, 0.8])))
            elif kind < 0.7:
                table.int_col(f"attr{col_index}", 0,
                              int(rng.integers(5, 5_000)),
                              skew=float(rng.choice([0.0, 0.7, 1.2])))
            else:
                table.date_col(f"date{col_index}")
        table.done()
        for dim_index in sorted(int(i) for i in linked):
            fanout = float(rng.choice([1.0, 1.0, 1.0, 1.5, 3.0]))
            b.edge(f"{name}_fact{fact_index}", f"dim{dim_index}_id",
                   f"{name}_dim{dim_index}", "id", fanout=fanout)
    if n_facts == 2:
        b.edge(f"{name}_fact1", "id", f"{name}_fact0", "id")
    return b.build()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BUILDERS: Dict[str, Callable[[], Instance]] = {
    "tpch_sf1": lambda: _build_tpch(1),
    "tpch_sf10": lambda: _build_tpch(10),
    "tpch_sf100": lambda: _build_tpch(100),
    "tpcds_sf1": lambda: _build_tpcds(1),
    "tpcds_sf10": lambda: _build_tpcds(10),
    "tpcds_sf100": lambda: _build_tpcds(100),
    "imdb": _build_imdb,
}
for _name in _SYNTHETIC_NAMES:
    _BUILDERS[_name] = (lambda n=_name: _build_synthetic(n))


def all_instance_names() -> List[str]:
    """Names of all 21 corpus instances."""
    return list(_BUILDERS)


def instance_families() -> List[str]:
    """Distinct schema families (scale variants collapse into one)."""
    seen: List[str] = []
    for name in all_instance_names():
        family = get_instance(name).family
        if family not in seen:
            seen.append(family)
    return seen


@lru_cache(maxsize=None)
def get_instance(name: str) -> Instance:
    """Build (and cache) one corpus instance by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise SchemaError(
            f"unknown instance {name!r}; available: {all_instance_names()}"
        ) from None
    return builder()
