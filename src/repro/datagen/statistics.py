"""Statistics collection from concrete data (Section 4.1).

The paper builds its query-generation statistics by *running queries
against each database*: table cardinalities, distinct counts, and value
ranges. This module closes the same loop for the substrate: given a
:class:`~repro.engine.executor.TableStore` with real arrays, it collects
a complete :class:`~repro.engine.catalog.Catalog` whose distributions
are **empirical** (value-frequency histograms measured from the data),
and discovers joinable column pairs by name/type/value-overlap analysis
— so new instances can be added from raw data with no manual modelling.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import SchemaError
from ..engine.catalog import Catalog
from ..engine.distributions import Distribution
from ..engine.executor import TableStore
from ..engine.schema import DatabaseSchema, JoinEdge

#: Columns with at most this many distinct values get an exact
#: frequency histogram; wider domains are approximated.
MAX_EXACT_HISTOGRAM = 10_000


class EmpiricalDistribution(Distribution):
    """Distribution measured from observed values.

    Stores sorted distinct values with empirical frequencies; all
    selectivity queries are exact with respect to the sample.
    """

    def __init__(self, values: np.ndarray, counts: np.ndarray):
        if len(values) == 0:
            raise SchemaError("empirical distribution needs data")
        order = np.argsort(values)
        self._values = np.asarray(values, dtype=np.float64)[order]
        weights = np.asarray(counts, dtype=np.float64)[order]
        total = weights.sum()
        self._pmf = weights / total
        self._cdf = np.cumsum(self._pmf)
        self.min_value = float(self._values[0])
        self.max_value = float(self._values[-1])
        self.n_distinct = int(len(self._values))

    @classmethod
    def from_column(cls, data: np.ndarray,
                    max_bins: int = MAX_EXACT_HISTOGRAM
                    ) -> "EmpiricalDistribution":
        values, counts = np.unique(data, return_counts=True)
        if len(values) > max_bins:
            # Equi-width merge of the tail into representative points.
            quantiles = np.linspace(0, len(values) - 1, max_bins).astype(int)
            merged_counts = np.add.reduceat(counts, quantiles)
            values = values[quantiles]
            counts = merged_counts
        return cls(values.astype(np.float64), counts)

    def selectivity_le(self, value: float) -> float:
        index = int(np.searchsorted(self._values, value, side="right"))
        if index == 0:
            return 0.0
        return float(self._cdf[index - 1])

    def selectivity_eq(self, value: float) -> float:
        index = int(np.searchsorted(self._values, value, side="left"))
        if index < len(self._values) and self._values[index] == value:
            return float(self._pmf[index])
        return 0.0

    def quantile(self, p: float) -> float:
        p = min(max(p, 0.0), 1.0)
        index = int(np.searchsorted(self._cdf, p))
        return float(self._values[min(index, len(self._values) - 1)])

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        picks = rng.choice(len(self._values), size=n, p=self._pmf)
        return self._values[picks].astype(np.int64)


def collect_catalog(schema: DatabaseSchema, store: TableStore,
                    seed: int = 0) -> Catalog:
    """ANALYZE: build a complete catalog from concrete data."""
    catalog = Catalog(schema, seed=seed)
    for table_name, table in schema.tables.items():
        columns = store.columns(table_name)
        catalog.set_table_stats(table_name, store.row_count(table_name))
        for column in table.columns:
            data = columns.get(column.name)
            if data is None:
                raise SchemaError(
                    f"store has no data for {table_name}.{column.name}")
            catalog.set_column_distribution(
                table_name, column.name,
                EmpiricalDistribution.from_column(data))
    return catalog


def discover_join_edges(schema: DatabaseSchema, store: TableStore,
                        sample_size: int = 5_000,
                        min_containment: float = 0.6,
                        seed: int = 0) -> List[JoinEdge]:
    """Find joinable column pairs (paper: "by considering their names
    and types").

    A pair qualifies when (a) one side is a declared primary key whose
    name is contained in the other column's name (``id`` ↔ ``movie_id``
    style) or the names match, and (b) a sample of the candidate foreign
    key is mostly contained in the key column's value set.
    """
    rng = np.random.default_rng(seed)
    edges: List[JoinEdge] = []
    key_columns: List[Tuple[str, str]] = [
        (name, table.primary_key)
        for name, table in schema.tables.items() if table.primary_key]

    for fk_table_name, fk_table in schema.tables.items():
        fk_columns = store.columns(fk_table_name)
        for column in fk_table.columns:
            if column.name == fk_table.primary_key:
                continue
            for key_table, key_column in key_columns:
                if key_table == fk_table_name:
                    continue
                if not _name_suggests_join(column.name, key_table,
                                           key_column):
                    continue
                data = fk_columns[column.name]
                if len(data) == 0:
                    continue
                sample = data[rng.choice(len(data),
                                         size=min(sample_size, len(data)),
                                         replace=False)]
                key_values = store.columns(key_table)[key_column]
                containment = float(np.isin(sample, key_values).mean())
                if containment >= min_containment:
                    # Discovered edges assume the uniform key/foreign-key
                    # matching rate; skew beyond that (fanout > 1) is not
                    # observable from a containment sample.
                    edges.append(JoinEdge(fk_table_name, column.name,
                                          key_table, key_column, fanout=1.0))
    return edges


def _name_suggests_join(fk_name: str, key_table: str, key_name: str) -> bool:
    fk = fk_name.lower()
    table = key_table.lower()
    key = key_name.lower()
    if fk == key:
        return True
    if table in fk and (key in fk or fk.endswith("id") or fk.endswith("sk")):
        return True
    stripped_fk = fk.split("_", 1)[-1]          # o_custkey -> custkey
    stripped_key = key.split("_", 1)[-1]        # c_custkey -> custkey
    if stripped_fk == stripped_key and stripped_fk not in ("id",):
        return True  # tpch style: o_custkey -> customer.c_custkey
    # Prefix-of-table style: o_cust -> customer, ss_item_sk -> item.
    root = stripped_fk
    for suffix in ("_sk", "_id", "key", "sk", "id"):
        if root.endswith(suffix) and len(root) > len(suffix):
            root = root[: -len(suffix)]
            break
    return len(root) >= 3 and table.startswith(root)
