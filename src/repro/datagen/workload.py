"""Workload assembly: generate → optimize → benchmark (Section 4).

For every instance, :class:`WorkloadBuilder` produces the generated
query groups (16 structures × N queries) plus — where the instance has a
published benchmark — the fixed suite (TPC-H 22, TPC-DS 100, JOB 113).
Each query is optimized to a physical plan and "benchmarked" on the
execution simulator with the paper's protocol: 10 repetitions, medians
as training targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..rng import DEFAULT_SEED, derive_seed
from ..engine.logical import LogicalNode
from ..engine.optimizer import Optimizer, OptimizerConfig
from ..engine.physical import PhysicalPlan
from ..engine.pipelines import Pipeline
from ..engine.simulator import ExecutionSimulator, SimulatedExecution, SimulatorConfig
from .instances import Instance, get_instance
from .querygen import RandomQueryGenerator
from .structures import QUERY_STRUCTURES

#: Group label used for fixed (published) benchmark queries in Figure 8.
FIXED_GROUP = "Fixed"


@dataclass
class BenchmarkedQuery:
    """One benchmarked query: plan, pipelines, and measured times.

    ``catalog`` is the statistics catalog of the query's instance;
    cardinality models for featurization are built from it.
    """

    name: str
    instance_name: str
    family: str
    group: str
    plan: PhysicalPlan
    execution: SimulatedExecution
    catalog: object = None

    @property
    def pipelines(self) -> List[Pipeline]:
        return self.execution.pipelines

    @property
    def n_pipelines(self) -> int:
        return len(self.execution.pipelines)

    @property
    def median_time(self) -> float:
        return self.execution.median_run_time

    @property
    def expected_time(self) -> float:
        return self.execution.total_time

    def pipeline_targets(self, n_runs: Optional[int] = None) -> np.ndarray:
        """Per-pipeline median measured times — the training targets."""
        return self.execution.median_pipeline_times(n_runs)


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of workload construction.

    The paper uses 40 queries per structure per database (~14k queries);
    the default here is smaller so the full multi-experiment suite runs
    in CI-scale time. Scale ``queries_per_structure`` up freely.
    """

    queries_per_structure: int = 12
    n_runs: int = 10
    seed: int = DEFAULT_SEED
    include_fixed_benchmarks: bool = True
    #: Mix semi/anti joins and DISTINCT into generated queries (see
    #: RandomQueryGenerator.extended_operators).
    extended_operators: bool = False
    simulator: SimulatorConfig = field(default_factory=SimulatorConfig)
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)


class WorkloadBuilder:
    """Builds the benchmarked workload of one instance."""

    def __init__(self, instance: Instance,
                 config: Optional[WorkloadConfig] = None):
        self.instance = instance
        self.config = config or WorkloadConfig()
        self.optimizer = Optimizer(instance.schema, instance.catalog,
                                   self.config.optimizer)
        self.simulator = ExecutionSimulator(
            instance.catalog, self.config.simulator,
            seed=derive_seed(self.config.seed, "simulator", instance.name))
        self.generator = RandomQueryGenerator(
            self.instance, seed=derive_seed(self.config.seed, "querygen"),
            extended_operators=self.config.extended_operators)

    # -- pieces ---------------------------------------------------------

    def benchmark_logical(self, logical: LogicalNode, name: str,
                          group: str) -> BenchmarkedQuery:
        """Optimize and benchmark one logical query."""
        plan = self.optimizer.optimize(logical, name)
        execution = self.simulator.execute(plan, n_runs=self.config.n_runs)
        return BenchmarkedQuery(name, self.instance.name,
                                self.instance.family, group, plan, execution,
                                catalog=self.instance.catalog)

    def benchmark_generated(self, structure, index: int) -> BenchmarkedQuery:
        """Generate and benchmark one query of one structure group.

        Every random stream involved is derived from
        ``(seed, instance, structure, index)`` — never from call order —
        so this produces the same query whether it runs serially, out of
        order, or in another process (the parallel pipeline relies on
        this).
        """
        logical = self.generator.generate(structure, index)
        name = f"{self.instance.name}/{structure.name}/{index}"
        return self.benchmark_logical(logical, name, structure.name)

    def generated_queries(self) -> List[BenchmarkedQuery]:
        """All generated structure groups for this instance."""
        queries: List[BenchmarkedQuery] = []
        for structure in QUERY_STRUCTURES:
            for index in range(self.config.queries_per_structure):
                queries.append(self.benchmark_generated(structure, index))
        return queries

    def fixed_benchmark_queries(self) -> List[BenchmarkedQuery]:
        """The published benchmark suite of this instance's family, if any."""
        family = self.instance.family
        if family == "tpch":
            from .benchmarks_tpch import tpch_queries
            named = tpch_queries(self.instance)
        elif family == "tpcds":
            from .benchmarks_tpcds import tpcds_queries
            named = tpcds_queries(self.instance)
        elif family == "imdb":
            from .benchmarks_job import job_queries
            named = job_queries(self.instance)
        else:
            return []
        queries: List[BenchmarkedQuery] = []
        prefix = f"{self.instance.name}/"
        for name, logical in named:
            queries.append(self.benchmark_logical(
                logical, prefix + name, FIXED_GROUP))
        return queries

    def build(self) -> List[BenchmarkedQuery]:
        """Generated plus (where applicable) fixed benchmark queries."""
        queries = self.generated_queries()
        if self.config.include_fixed_benchmarks:
            queries.extend(self.fixed_benchmark_queries())
        return queries


def build_corpus_workload(instance_names: Sequence[str],
                          config: Optional[WorkloadConfig] = None
                          ) -> List[BenchmarkedQuery]:
    """Benchmarked workload across several instances."""
    config = config or WorkloadConfig()
    queries: List[BenchmarkedQuery] = []
    for name in instance_names:
        builder = WorkloadBuilder(get_instance(name), config)
        queries.extend(builder.build())
    return queries


def workload_statistics(queries: Sequence[BenchmarkedQuery]) -> Dict[str, float]:
    """Summary numbers used in docs and sanity tests."""
    times = np.array([q.median_time for q in queries])
    pipeline_counts = np.array([q.n_pipelines for q in queries])
    return {
        "n_queries": float(len(queries)),
        "median_time": float(np.median(times)),
        "max_time": float(times.max()),
        "min_time": float(times.min()),
        "mean_pipelines": float(pipeline_counts.mean()),
        "max_pipelines": float(pipeline_counts.max()),
    }
