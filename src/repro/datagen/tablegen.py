"""Concrete data generation for the vectorized executor.

Samples numpy column arrays from an instance's catalog distributions so
plans can actually be *executed* (examples, integration tests, simulator
calibration). Tables can be scaled down uniformly; key/foreign-key
integrity is preserved by generating dense keys and resampling foreign
keys within the scaled parent domain.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import SchemaError
from ..rng import derive_rng
from ..engine.executor import TableStore
from ..engine.schema import DatabaseSchema
from .instances import Instance


def _scaled_rows(rows: int, fraction: float) -> int:
    return max(1, int(round(rows * fraction)))


def _foreign_key_targets(schema: DatabaseSchema) -> Dict[str, str]:
    """Map ``table.column`` → parent table for declared key edges."""
    targets: Dict[str, str] = {}
    for edge in schema.join_edges:
        right_table = schema.table(edge.right_table)
        if right_table.primary_key == edge.right_column:
            targets[f"{edge.left_table}.{edge.left_column}"] = edge.right_table
        left_table = schema.table(edge.left_table)
        if left_table.primary_key == edge.left_column:
            targets[f"{edge.right_table}.{edge.right_column}"] = edge.left_table
    return targets


def generate_table_store(instance: Instance, scale_fraction: float = 1.0,
                         seed: int = 0,
                         max_rows_per_table: Optional[int] = None,
                         small_table_floor: int = 2000) -> TableStore:
    """Materialize an instance's data (optionally scaled down).

    ``scale_fraction`` scales every table's row count; additionally,
    ``max_rows_per_table`` caps each table (useful to keep huge fact
    tables executable). Tables at or below ``small_table_floor`` rows
    are never scaled down — shrinking dimension tables like ``nation``
    would distort key domains. Referential integrity: primary keys are
    dense ``1..n`` and foreign keys are drawn within the scaled parent
    domain, so joins behave like the full-scale instance modulo scale.
    """
    if scale_fraction <= 0 or scale_fraction > 1:
        raise SchemaError("scale_fraction must be in (0, 1]")
    schema = instance.schema
    catalog = instance.catalog
    fk_targets = _foreign_key_targets(schema)

    scaled: Dict[str, int] = {}
    for table_name in schema.table_names:
        original = catalog.row_count(table_name)
        rows = _scaled_rows(original, scale_fraction)
        rows = max(rows, min(original, small_table_floor))
        if max_rows_per_table is not None:
            rows = min(rows, max_rows_per_table)
        scaled[table_name] = rows

    store = TableStore()
    for table_name, table in schema.tables.items():
        rng = derive_rng(seed, "tablegen", instance.name, table_name)
        n = scaled[table_name]
        columns: Dict[str, np.ndarray] = {}
        for column in table.columns:
            qualified_name = f"{table_name}.{column.name}"
            if column.name == table.primary_key:
                columns[column.name] = np.arange(1, n + 1, dtype=np.int64)
            elif qualified_name in fk_targets:
                parent_rows = scaled[fk_targets[qualified_name]]
                columns[column.name] = rng.integers(
                    1, parent_rows + 1, size=n, dtype=np.int64)
            else:
                dist = catalog.column_stats(table_name, column.name).distribution
                columns[column.name] = dist.sample(n, rng)
        store.put_table(table_name, columns)
    return store
