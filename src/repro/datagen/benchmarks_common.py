"""Shared helpers for building the fixed benchmark query suites.

The published SQL texts of TPC-H/TPC-DS/JOB are reproduced here as
logical plans. The helpers keep the per-query builders compact: they
resolve join edges from the schema and turn target selectivities into
concrete literals via the catalog's distributions, so each query has the
same *structural* behaviour (join shape, selectivity profile) as its SQL
original.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import WorkloadError
from ..rng import derive_rng
from ..engine.expressions import (
    Aggregate,
    AggregateFunction,
    BetweenPredicate,
    ComparisonOp,
    ComparisonPredicate,
    InListPredicate,
    LikePredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
)
from ..engine.logical import (
    LogicalGroupBy,
    LogicalJoin,
    LogicalNode,
    LogicalScan,
    LogicalSort,
    LogicalTopK,
)
from .instances import Instance

NamedQuery = Tuple[str, LogicalNode]


class BenchmarkQueryBuilder:
    """Compact construction API for fixed benchmark suites."""

    def __init__(self, instance: Instance):
        self.instance = instance
        self.schema = instance.schema
        self.catalog = instance.catalog

    # -- scans ------------------------------------------------------------

    def scan(self, table: str, predicates: Sequence[Predicate] = (),
             correlation: float = 1.0) -> LogicalScan:
        return LogicalScan(table, list(predicates), correlation)

    # -- predicates with selectivity-targeted literals ----------------------

    def _distribution(self, table: str, column: str):
        return self.catalog.column_stats(table, column).distribution

    def le(self, table: str, column: str, fraction: float) -> Predicate:
        """``column <= quantile(fraction)`` — keeps ~``fraction`` of rows."""
        value = self._distribution(table, column).quantile(fraction)
        return ComparisonPredicate(table, column, ComparisonOp.LE, float(value))

    def ge(self, table: str, column: str, fraction: float) -> Predicate:
        """``column >= quantile(1 - fraction)`` — keeps ~``fraction``."""
        value = self._distribution(table, column).quantile(1.0 - fraction)
        return ComparisonPredicate(table, column, ComparisonOp.GE, float(value))

    def eq(self, table: str, column: str,
           position: float = 0.5) -> Predicate:
        """Equality with the value at ``position`` in the distribution."""
        value = self._distribution(table, column).quantile(position)
        return ComparisonPredicate(table, column, ComparisonOp.EQ, float(value))

    def ne(self, table: str, column: str, position: float = 0.5) -> Predicate:
        value = self._distribution(table, column).quantile(position)
        return ComparisonPredicate(table, column, ComparisonOp.NE, float(value))

    def between(self, table: str, column: str, start: float,
                width: float) -> Predicate:
        """Range covering ~``width`` of the rows starting at ``start``."""
        dist = self._distribution(table, column)
        low = dist.quantile(start)
        high = dist.quantile(min(1.0, start + width))
        if high < low:
            low, high = high, low
        return BetweenPredicate(table, column, float(low), float(high))

    def isin(self, table: str, column: str,
             positions: Sequence[float]) -> Predicate:
        dist = self._distribution(table, column)
        values = sorted({float(dist.quantile(p)) for p in positions})
        return InListPredicate(table, column, values)

    def like(self, table: str, column: str, fraction: float,
             label: str = "") -> Predicate:
        """LIKE predicate matching ~``fraction`` of the dictionary codes."""
        dist = self._distribution(table, column)
        n_match = max(1, min(dist.n_distinct,
                             int(round(dist.n_distinct * fraction))))
        n_match = min(n_match, 50_000)
        rng = derive_rng(0x11CE, self.instance.name, table, column, label)
        codes = rng.choice(dist.n_distinct, size=n_match, replace=False)
        return LikePredicate(table, column, pattern=f"%{label or column}%",
                             matching_codes=[int(c) for c in codes])

    def not_like(self, table: str, column: str, fraction: float,
                 label: str = "") -> Predicate:
        return NotPredicate(self.like(table, column, fraction, label))

    def either(self, *parts: Predicate) -> Predicate:
        return OrPredicate(list(parts))

    # -- joins ---------------------------------------------------------------

    def join(self, left: LogicalNode, right: LogicalNode, left_table: str,
             right_table: str, kind: str = "inner") -> LogicalJoin:
        """Join two subtrees along the declared edge between two tables."""
        edge = self.schema.edge_between(left_table, right_table)
        if edge is None:
            raise WorkloadError(
                f"no join edge between {left_table!r} and {right_table!r}")
        return LogicalJoin(left, right, edge, kind)

    def chain(self, first: LogicalNode, first_table: str,
              *steps: Tuple[LogicalNode, str, str]) -> LogicalNode:
        """Left-deep join chain: each step is (node, from_table, to_table)."""
        plan = first
        for node, from_table, to_table in steps:
            plan = self.join(plan, node, from_table, to_table)
        return plan

    # -- aggregation shortcuts --------------------------------------------------

    def group(self, plan: LogicalNode, keys: Sequence[Tuple[str, str]],
              aggregates: Sequence[Aggregate]) -> LogicalGroupBy:
        return LogicalGroupBy(plan, list(keys), list(aggregates))

    def agg(self, plan: LogicalNode,
            aggregates: Sequence[Aggregate]) -> LogicalGroupBy:
        return LogicalGroupBy(plan, [], list(aggregates))

    def sort(self, plan: LogicalNode,
             keys: Sequence[Tuple[str, str]]) -> LogicalSort:
        return LogicalSort(plan, list(keys))

    def topk(self, plan: LogicalNode, keys: Sequence[Tuple[str, str]],
             k: int) -> LogicalTopK:
        return LogicalTopK(plan, list(keys), k)


def sum_of(column: str) -> Aggregate:
    return Aggregate(AggregateFunction.SUM, column)


def avg_of(column: str) -> Aggregate:
    return Aggregate(AggregateFunction.AVG, column)


def min_of(column: str) -> Aggregate:
    return Aggregate(AggregateFunction.MIN, column)


def max_of(column: str) -> Aggregate:
    return Aggregate(AggregateFunction.MAX, column)


def count_rows() -> Aggregate:
    return Aggregate(AggregateFunction.COUNT)
