"""The TPC-DS benchmark suite: 100 queries over the TPC-DS schema.

The published TPC-DS workload consists of ~100 analytical queries whose
defining characteristics are: star joins from one of three sales
channels into shared dimensions, channel-comparison queries combining
two fact tables, returns analysis, rollup-style multi-key aggregations,
and ranking/window queries. This module reproduces the suite as 100
queries drawn from ten structural templates (ten parameterized variants
each), matching those characteristics on the instance schema.

Each query is deterministic in its index, so ``tpcds_q1`` ... ``tpcds_q100``
are stable across runs — a requirement for train/test splits.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..rng import derive_rng
from ..engine.expressions import Predicate
from ..engine.logical import LogicalNode, LogicalUnion, LogicalWindow
from .benchmarks_common import (
    BenchmarkQueryBuilder,
    NamedQuery,
    avg_of,
    count_rows,
    sum_of,
)
from .instances import Instance, get_instance

#: The three sales channels with their fact tables and column prefixes.
_CHANNELS = (("store_sales", "ss", "ss_customer_sk"),
             ("catalog_sales", "cs", "cs_bill_customer_sk"),
             ("web_sales", "ws", "ws_bill_customer_sk"))


def _channel(rng: np.random.Generator):
    return _CHANNELS[int(rng.integers(len(_CHANNELS)))]


def _year_filter(b: BenchmarkQueryBuilder, rng: np.random.Generator) -> Predicate:
    """One sales year out of the date dimension."""
    start = float(rng.uniform(0.1, 0.85))
    return b.between("date_dim", "d_year", start, 0.05)


def _t_star_agg(b, rng) -> LogicalNode:
    """Star join: channel fact × date_dim × item, grouped by item category."""
    fact, prefix, _ = _channel(rng)
    dates = b.scan("date_dim", [_year_filter(b, rng)])
    items = b.scan("item", [b.eq("item", "i_category", float(rng.uniform(0.05, 0.95)))])
    plan = b.join(b.scan(fact), dates, fact, "date_dim")
    plan = b.join(plan, items, fact, "item")
    grouped = b.group(plan, [("item", "i_brand")],
                      [sum_of(f"{fact}.{prefix}_sales_price"), count_rows()])
    return b.topk(grouped, [("#computed", "agg_0")], 100)


def _t_customer_rollup(b, rng) -> LogicalNode:
    """Customer demographics rollup over a sales channel."""
    fact, prefix, customer_fk = _channel(rng)
    plan = b.join(b.scan(fact), b.scan("customer"), fact, "customer")
    plan = b.join(plan, b.scan("customer_address", [
        b.isin("customer_address", "ca_state",
               [float(p) for p in rng.uniform(0.02, 0.98, size=5)])]),
        "customer", "customer_address")
    grouped = b.group(
        plan, [("customer_address", "ca_state"),
               ("customer_address", "ca_city")],
        [sum_of(f"{fact}.{prefix}_net_profit"), count_rows()])
    return b.topk(grouped, [("#computed", "agg_0")], 100)


def _t_returns(b, rng) -> LogicalNode:
    """Store returns against items and dates."""
    returns = b.scan("store_returns",
                     [b.ge("store_returns", "sr_return_amt",
                           float(rng.uniform(0.05, 0.6)))])
    plan = b.join(returns, b.scan("date_dim", [_year_filter(b, rng)]),
                  "store_returns", "date_dim")
    plan = b.join(plan, b.scan("item"), "store_returns", "item")
    grouped = b.group(plan, [("item", "i_category")],
                      [sum_of("store_returns.sr_return_amt"), count_rows()])
    return b.sort(grouped, [("item", "i_category")])


def _t_channel_union(b, rng) -> LogicalNode:
    """Cross-channel comparison via a union of two channels."""
    (fact_a, prefix_a, _), (fact_b, prefix_b, _) = (
        _CHANNELS[0], _CHANNELS[1 + int(rng.integers(2))])
    selectivity = float(rng.uniform(0.1, 0.7))
    left = b.scan(fact_a, [b.le(fact_a, f"{prefix_a}_quantity", selectivity)])
    right = b.scan(fact_b, [b.le(fact_b, f"{prefix_b}_quantity", selectivity)])
    left_p = b.group(left, [(fact_a, f"{prefix_a}_item_sk")],
                     [sum_of(f"{fact_a}.{prefix_a}_sales_price")])
    right_p = b.group(right, [(fact_b, f"{prefix_b}_item_sk")],
                      [sum_of(f"{fact_b}.{prefix_b}_sales_price")])
    union = LogicalUnion(left_p, right_p)
    return b.group(union, [("#computed", "agg_0")], [count_rows()])


def _t_promo(b, rng) -> LogicalNode:
    """Promotion effectiveness on store sales."""
    promo = b.scan("promotion",
                   [b.eq("promotion", "p_channel_email", 0.5)])
    plan = b.join(b.scan("store_sales"), promo, "store_sales", "promotion")
    plan = b.join(plan, b.scan("date_dim", [_year_filter(b, rng)]),
                  "store_sales", "date_dim")
    return b.agg(plan, [sum_of("store_sales.ss_ext_discount_amt"),
                        avg_of("store_sales.ss_sales_price"), count_rows()])


def _t_store_perf(b, rng) -> LogicalNode:
    """Per-store performance with employee-size filter."""
    stores = b.scan("store", [b.ge("store", "s_number_employees",
                                   float(rng.uniform(0.2, 0.8)))])
    plan = b.join(b.scan("store_sales"), stores, "store_sales", "store")
    plan = b.join(plan, b.scan("date_dim", [_year_filter(b, rng)]),
                  "store_sales", "date_dim")
    grouped = b.group(plan, [("store", "s_store_sk")],
                      [sum_of("store_sales.ss_net_profit")])
    return b.sort(grouped, [("#computed", "agg_0")])


def _t_demographic(b, rng) -> LogicalNode:
    """Demographics-heavy join (customer_demographics is a large dimension)."""
    fact, prefix, _ = _CHANNELS[0]
    demographics = b.scan("customer_demographics", [
        b.eq("customer_demographics", "cd_gender", float(rng.uniform(0.2, 0.8))),
        b.eq("customer_demographics", "cd_marital_status",
             float(rng.uniform(0.1, 0.9)))])
    plan = b.join(b.scan(fact), b.scan("customer"), fact, "customer")
    plan = b.join(plan, demographics, "customer", "customer_demographics")
    grouped = b.group(plan, [("customer_demographics", "cd_education_status")],
                      [count_rows(), avg_of(f"{fact}.{prefix}_quantity")])
    return b.sort(grouped, [("customer_demographics", "cd_education_status")])


def _t_window_rank(b, rng) -> LogicalNode:
    """Ranking query: window function over item revenue."""
    fact, prefix, _ = _channel(rng)
    plan = b.join(b.scan(fact), b.scan("item", [
        b.isin("item", "i_category",
               [float(p) for p in rng.uniform(0.05, 0.95, size=3)])]),
        fact, "item")
    grouped = b.group(plan, [("item", "i_class"), ("item", "i_brand")],
                      [sum_of(f"{fact}.{prefix}_sales_price")])
    window = LogicalWindow(grouped, [("item", "i_class")],
                           [("#computed", "agg_0")], function="rank")
    return b.topk(window, [("#computed", "rank")], 100)


def _t_cross_channel_customers(b, rng) -> LogicalNode:
    """Customers active in one channel but not another (anti join)."""
    plan = b.join(b.scan("web_sales"), b.scan("customer"),
                  "web_sales", "customer", kind="semi")
    plan = b.join(b.scan("catalog_sales"), plan,
                  "catalog_sales", "customer", kind="anti")
    plan = b.join(plan, b.scan("customer_address"),
                  "customer", "customer_address")
    grouped = b.group(plan, [("customer_address", "ca_state")], [count_rows()])
    return b.topk(grouped, [("#computed", "agg_0")], 10)


def _t_inventory_heavy(b, rng) -> LogicalNode:
    """Deep join chain across fact, returns, and dimensions."""
    plan = b.join(b.scan("store_sales"), b.scan("customer"),
                  "store_sales", "customer")
    plan = b.join(plan, b.scan("store_returns",
                               [b.ge("store_returns", "sr_return_quantity",
                                     float(rng.uniform(0.2, 0.8)))]),
                  "customer", "store_returns")
    plan = b.join(plan, b.scan("item"), "store_returns", "item")
    plan = b.join(plan, b.scan("date_dim", [_year_filter(b, rng)]),
                  "store_sales", "date_dim")
    grouped = b.group(plan, [("item", "i_category"), ("date_dim", "d_moy")],
                      [sum_of("store_sales.ss_sales_price"), count_rows()])
    return b.topk(grouped, [("#computed", "agg_0")], 100)


_TEMPLATES = [_t_star_agg, _t_customer_rollup, _t_returns, _t_channel_union,
              _t_promo, _t_store_perf, _t_demographic, _t_window_rank,
              _t_cross_channel_customers, _t_inventory_heavy]

#: The suite always has exactly 100 queries, like the published benchmark.
N_QUERIES = 100


def tpcds_queries(instance: Instance = None) -> List[NamedQuery]:
    """All 100 TPC-DS benchmark-style queries for a ``tpcds`` instance."""
    instance = instance or get_instance("tpcds_sf1")
    builder = BenchmarkQueryBuilder(instance)
    queries: List[NamedQuery] = []
    n_templates = len(_TEMPLATES)
    for index in range(N_QUERIES):
        template = _TEMPLATES[index % n_templates]
        rng = derive_rng(0xD5, "tpcds", index)
        queries.append((f"tpcds_q{index + 1}", template(builder, rng)))
    return queries
