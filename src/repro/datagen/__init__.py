"""Training-data generation: instances, queries, and benchmarking.

Mirrors Section 4 of the paper:

* :mod:`repro.datagen.instances` — the corpus of 21 database instances
  (TPC-H and TPC-DS at scale factors 1/10/100, the JOB/IMDB instance,
  and 14 real-world-like synthetic instances),
* :mod:`repro.datagen.tablegen` — concrete numpy data for the real
  executor at reduced scale,
* :mod:`repro.datagen.structures` / :mod:`repro.datagen.querygen` — the
  16 modular query structures and the random query generator,
* :mod:`repro.datagen.benchmarks_tpch` / ``_tpcds`` / ``_job`` — the
  fixed benchmark query suites,
* :mod:`repro.datagen.workload` — end-to-end dataset assembly: generate
  queries, optimize them, and benchmark them on the simulator.
"""

from .instances import Instance, get_instance, all_instance_names, instance_families
from .structures import QUERY_STRUCTURES, QueryStructure
from .querygen import RandomQueryGenerator
from .workload import BenchmarkedQuery, WorkloadBuilder, WorkloadConfig

__all__ = [
    "Instance",
    "get_instance",
    "all_instance_names",
    "instance_families",
    "QUERY_STRUCTURES",
    "QueryStructure",
    "RandomQueryGenerator",
    "BenchmarkedQuery",
    "WorkloadBuilder",
    "WorkloadConfig",
]
