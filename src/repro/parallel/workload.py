"""Parallel workload construction: bit-identical to the serial build.

The corpus workload is a flat list over ``(instance, structure, index)``
plus each instance's fixed benchmark suite. Both dimensions are carved
into :class:`WorkloadChunk` tasks — one per structure-chunk and one per
fixed suite — that worker processes execute independently; because
query generation and simulator noise are seeded by identity labels (see
:meth:`~repro.datagen.workload.WorkloadBuilder.benchmark_generated`),
chunk results depend only on the chunk, not on what ran before it.
Reassembling chunks in their submission order therefore reproduces the
serial ``build_corpus_workload`` output exactly, element for element.

Workers strip the per-query ``catalog`` reference before shipping
results back (catalogs are large and deterministic); the parent
re-attaches the shared per-instance catalog objects, so downstream
consumers see exactly what the serial builder produces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..datagen.instances import get_instance
from ..datagen.structures import QUERY_STRUCTURES, structure_by_name
from ..datagen.workload import (
    BenchmarkedQuery,
    WorkloadBuilder,
    WorkloadConfig,
    build_corpus_workload,
)
from .executor import process_map
from .jobs import resolve_jobs

#: Queries per generated-structure task. Small enough that 21 instances
#: x 16 structures yield far more tasks than workers (good balancing),
#: large enough that per-task pool overhead stays negligible.
DEFAULT_CHUNK_SIZE = 8


@dataclass(frozen=True)
class WorkloadChunk:
    """One unit of parallel work: a slice of one instance's workload.

    ``structure_name=None`` denotes the instance's fixed benchmark
    suite (TPC-H 22, TPC-DS 100, JOB 113); otherwise ``indices`` are
    query indices within the named generated-structure group.
    """

    instance_name: str
    structure_name: Optional[str]
    indices: Tuple[int, ...]
    config: WorkloadConfig


def iter_workload_chunks(instance_names: Sequence[str],
                         config: WorkloadConfig,
                         chunk_size: int = DEFAULT_CHUNK_SIZE
                         ) -> Iterator[WorkloadChunk]:
    """Chunks in serial-workload order: concatenating their results in
    this order yields exactly ``build_corpus_workload``'s output."""
    if chunk_size < 1:
        chunk_size = 1
    per_structure = config.queries_per_structure
    n_chunks = max(1, math.ceil(per_structure / chunk_size))
    for instance_name in instance_names:
        for structure in QUERY_STRUCTURES:
            for chunk in range(n_chunks):
                lo = chunk * chunk_size
                hi = min(lo + chunk_size, per_structure)
                if lo >= hi:
                    continue
                yield WorkloadChunk(instance_name, structure.name,
                                    tuple(range(lo, hi)), config)
        if config.include_fixed_benchmarks:
            yield WorkloadChunk(instance_name, None, (), config)


def _build_chunk(chunk: WorkloadChunk) -> List[BenchmarkedQuery]:
    """Worker entry point: benchmark one chunk in a fresh process."""
    builder = WorkloadBuilder(get_instance(chunk.instance_name), chunk.config)
    if chunk.structure_name is None:
        queries = builder.fixed_benchmark_queries()
    else:
        structure = structure_by_name(chunk.structure_name)
        queries = [builder.benchmark_generated(structure, index)
                   for index in chunk.indices]
    for query in queries:
        query.catalog = None  # re-attached by the parent; see module doc
    return queries


def build_corpus_workload_parallel(instance_names: Sequence[str],
                                   config: Optional[WorkloadConfig] = None,
                                   jobs: Optional[int] = None,
                                   chunk_size: int = DEFAULT_CHUNK_SIZE
                                   ) -> List[BenchmarkedQuery]:
    """Benchmarked workload across instances, built on a process pool.

    Bit-identical to :func:`~repro.datagen.workload.build_corpus_workload`
    on the same config — same queries, same order, same simulated times.
    ``jobs=1`` (or a single-chunk input) runs serially in-process.
    """
    config = config or WorkloadConfig()
    jobs = resolve_jobs(jobs)
    if jobs == 1:
        return build_corpus_workload(instance_names, config)
    chunks = list(iter_workload_chunks(instance_names, config, chunk_size))
    results = process_map(_build_chunk, chunks, jobs=jobs)
    queries: List[BenchmarkedQuery] = []
    for chunk_queries in results:
        queries.extend(chunk_queries)
    for query in queries:
        if query.catalog is None:
            query.catalog = get_instance(query.instance_name).catalog
    return queries
