"""Order-preserving, crash-safe process-pool map.

A wrapper over :class:`concurrent.futures.ProcessPoolExecutor` that

* degrades to a plain in-process loop for ``jobs=1`` or single-task
  inputs,
* always returns results in task order, so callers that reassemble
  chunked work never depend on scheduling, and
* survives worker death. When the pool breaks
  (:class:`~concurrent.futures.process.BrokenProcessPool` — a worker
  segfaulted, was OOM-killed, or hit ``os._exit``), the tasks that
  have not produced results are retried on a **fresh** pool after a
  capped exponential backoff; after ``max_pool_failures`` broken pools
  the remaining tasks run serially in the parent. Because results are
  keyed by task index and every task is a pure function of its input
  (the repo-wide determinism contract), a run that loses workers
  produces output bit-identical to a run that does not.

Ordinary exceptions raised *by the task function* are not retried —
they propagate to the caller exactly as the serial loop would raise
them. Only infrastructure failure (a broken pool) triggers recovery.

The ``parallel.worker`` fault site (:mod:`repro.faults`) simulates a
worker dying mid-task. It fires in the *parent*, while collecting that
task's result: worker processes each hold a diverged copy of the
injector's counters, so a parent-side decision is the only one that
replays deterministically. A fired fault marks the task for retry
through the same recovery path a real broken pool takes.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, List, Optional, TypeVar

from ..errors import InjectedFaultError, WorkerDeathError
from ..faults import FaultInjector, get_injector
from .jobs import resolve_jobs

_T = TypeVar("_T")
_R = TypeVar("_R")

_LOG = logging.getLogger(__name__)

#: Pool-level failures tolerated before degrading to a serial loop.
DEFAULT_MAX_POOL_FAILURES = 3
#: Backoff before building a replacement pool: ``base * 2**(n-1)``
#: seconds after the n-th failure, capped.
DEFAULT_BACKOFF_BASE_S = 0.1
DEFAULT_BACKOFF_CAP_S = 2.0


def process_map(fn: Callable[[_T], _R], tasks: Iterable[_T],
                jobs: Optional[int] = None,
                max_pool_failures: int = DEFAULT_MAX_POOL_FAILURES,
                backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
                backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
                injector: Optional[FaultInjector] = None) -> List[_R]:
    """Apply ``fn`` to every task, fanning out over ``jobs`` processes.

    ``fn`` must be a module-level callable and tasks/results must be
    picklable (standard process-pool requirements). Results come back
    in task order regardless of which worker finished first, and
    worker death never loses work — see the module docstring for the
    recovery ladder (fresh pool with backoff, then serial).
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    injector = injector or get_injector()
    workers = min(jobs, len(tasks))
    results: Dict[int, _R] = {}
    pending = list(range(len(tasks)))
    pool_failures = 0
    while pending and pool_failures < max_pool_failures:
        try:
            pending = _run_round(fn, tasks, pending, results,
                                 workers, injector)
        except BrokenProcessPool as exc:
            pool_failures += 1
            pending = [index for index in pending
                       if index not in results]
            _LOG.warning(
                "process pool broke (%d/%d): %s; retrying %d task(s) "
                "on a fresh pool", pool_failures, max_pool_failures,
                exc, len(pending))
            if pending and pool_failures < max_pool_failures:
                time.sleep(min(backoff_cap_s,
                               backoff_base_s * 2 ** (pool_failures - 1)))
    if pending:
        _LOG.warning("process pool broke %d times; finishing %d "
                     "task(s) serially", pool_failures, len(pending))
        for index in pending:
            results[index] = fn(tasks[index])
    return [results[index] for index in range(len(tasks))]


def _run_round(fn: Callable[[_T], _R], tasks: List[_T],
               pending: List[int], results: Dict[int, _R],
               workers: int, injector: FaultInjector) -> List[int]:
    """One pool lifetime: run ``pending`` tasks, fill ``results``.

    Returns the (empty) list of unfinished indices on a clean round.
    Raises :class:`BrokenProcessPool` when the pool dies — really or
    via an injected ``parallel.worker`` fault; ``results`` keeps
    everything collected before the crash, so the caller retries only
    the remainder.
    """
    faulted: List[int] = []
    with ProcessPoolExecutor(max_workers=min(workers,
                                             len(pending))) as pool:
        futures: Dict[int, Future] = {
            index: pool.submit(fn, tasks[index]) for index in pending}
        # Collect strictly in task-index order, not completion order:
        # the injector's invocation-count draws must hit the same task
        # every run, so chaos replay stays bit-identical — fault
        # sequence and fire counts included, not just final outputs.
        for index in pending:
            value = futures[index].result()  # raises BrokenProcessPool
            try:
                injector.fire("parallel.worker")
            except InjectedFaultError:
                # Simulated worker death: drop the result and send
                # the task through the retry path.
                faulted.append(index)
                continue
            results[index] = value
    if faulted:
        raise WorkerDeathError(
            f"{len(faulted)} worker(s) killed by injected fault at "
            "parallel.worker")
    return []
