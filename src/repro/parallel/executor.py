"""Order-preserving process-pool map.

A thin wrapper over :class:`concurrent.futures.ProcessPoolExecutor`
that (a) degrades to a plain in-process loop for ``jobs=1`` or
single-task inputs, and (b) always returns results in task order, so
callers that reassemble chunked work never depend on scheduling.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

from .jobs import resolve_jobs

_T = TypeVar("_T")
_R = TypeVar("_R")


def process_map(fn: Callable[[_T], _R], tasks: Iterable[_T],
                jobs: Optional[int] = None) -> List[_R]:
    """Apply ``fn`` to every task, fanning out over ``jobs`` processes.

    ``fn`` must be a module-level callable and tasks/results must be
    picklable (standard process-pool requirements). Results come back
    in task order regardless of which worker finished first.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, tasks))
