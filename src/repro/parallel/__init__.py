"""Parallel offline data pipeline.

The offline side of T3 — generate queries, optimize them, benchmark
them on the simulator, featurize — is embarrassingly parallel across
``(instance, structure, query_index)`` because every random stream in
the library is derived from those labels (see :mod:`repro.rng`), never
from call order. This package fans that work out over a process pool
and reassembles the results in the exact serial order, so a parallel
build is bit-identical to a serial one.

Worker count comes from, in priority order: an explicit ``jobs``
argument, the ``REPRO_JOBS`` environment variable, ``os.cpu_count()``.
"""

from .jobs import REPRO_JOBS_ENV, resolve_jobs
from .executor import process_map
from .incremental import consume_segments
from .workload import (
    WorkloadChunk,
    build_corpus_workload_parallel,
    iter_workload_chunks,
)

__all__ = [
    "REPRO_JOBS_ENV",
    "WorkloadChunk",
    "build_corpus_workload_parallel",
    "consume_segments",
    "iter_workload_chunks",
    "process_map",
    "resolve_jobs",
]
