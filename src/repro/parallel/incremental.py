"""Incremental consumption of an append-only segmented log.

The lifecycle retrainer repeatedly asks "what's new since I last
looked?" against the observation log. This helper answers it through
the same crash-safe :func:`~repro.parallel.executor.process_map`
fan-out as the offline pipeline: segments the cursor has never touched
are decoded in worker processes (they are sealed or at least
append-only, so a concurrent writer can only add records *after* the
count the cursor was diffed against), while partially-consumed
segments are re-read in-process and sliced — fan-out overhead is only
paid where there is a whole segment of work to win back.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from .executor import process_map

__all__ = ["consume_segments"]

_R = TypeVar("_R")


def consume_segments(reader: Callable[[Path], List[_R]],
                     segments: Sequence[Path],
                     counts: Dict[str, int],
                     cursor: Dict[str, int],
                     jobs: Optional[int] = None,
                     ) -> Tuple[List[_R], Dict[str, int]]:
    """Read every record past ``cursor``; returns (records, new cursor).

    ``counts`` maps segment name to its committed record count (the
    log's own bookkeeping); ``cursor`` maps segment name to how many
    records the caller has already consumed. ``reader`` must be a
    module-level callable returning one segment's committed records in
    order (process-pool contract). Records come back in log order —
    segment order, record order within each — and the returned cursor
    reflects exactly what was read, so a crash between calls re-reads
    at worst one call's worth.
    """
    fresh: List[Path] = []
    partial: List[Path] = []
    for path in segments:
        have = counts.get(path.name, 0)
        done = cursor.get(path.name, 0)
        if have <= done:
            continue
        (fresh if done == 0 else partial).append(path)
    decoded: Dict[str, List[_R]] = {}
    if fresh:
        for path, records in zip(fresh, process_map(reader, fresh,
                                                    jobs=jobs)):
            decoded[path.name] = records
    for path in partial:
        decoded[path.name] = reader(path)[cursor[path.name]:]
    out: List[_R] = []
    new_cursor = dict(cursor)
    for path in segments:
        records = decoded.get(path.name)
        if records is None:
            continue
        # A writer may have appended past the count we diffed against;
        # cap at `counts` so those records are consumed next call, not
        # double-counted by a stale cursor.
        fresh_limit = counts[path.name] - cursor.get(path.name, 0)
        records = records[:fresh_limit]
        out.extend(records)
        new_cursor[path.name] = cursor.get(path.name, 0) + len(records)
    return out, new_cursor
