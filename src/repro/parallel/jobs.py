"""Worker-count resolution: the ``REPRO_JOBS`` knob.

Every parallel entry point takes an optional ``jobs`` argument; when it
is ``None``, the ``REPRO_JOBS`` environment variable decides, and when
that is unset too, all available cores are used. ``jobs=1`` always
means "run serially in this process" — no pool is created, which keeps
single-core runs, debuggers, and coverage tools happy.
"""

from __future__ import annotations

import os
from typing import Optional

from ..errors import ConfigurationError

#: Environment variable consulted when no explicit ``jobs`` is given.
REPRO_JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument > ``REPRO_JOBS`` > cpu_count."""
    if jobs is None:
        env = os.environ.get(REPRO_JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"{REPRO_JOBS_ENV}={env!r} is not an integer") from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs
