"""The shared experiment setup (workloads, splits, trained models).

Reproduces the paper's standard protocol: train on all instances except
the TPC-DS family, evaluate on TPC-DS test queries (generated groups
plus the fixed benchmark), exact cardinalities unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..rng import DEFAULT_SEED
from ..trees.boosting import BoostingParams
from ..datagen.instances import all_instance_names
from ..datagen.workload import BenchmarkedQuery, WorkloadConfig
from ..core.ablation import TargetMode
from ..core.dataset import CardinalityKind, build_dataset
from ..core.model import T3Config, T3Model
from ..baselines.zeroshot import ZeroShotConfig, ZeroShotModel
from ..parallel import build_corpus_workload_parallel
from .cache import DiskCache, default_cache, fingerprint

#: The family held out for evaluation throughout the paper.
TEST_FAMILY = "tpcds"


@dataclass(frozen=True)
class ExperimentScale:
    """Workload / training sizes.

    ``default`` keeps the full benchmark suite under a few minutes of
    compute; ``paper`` approaches the paper's 14k-query corpus (slow).
    """

    name: str
    queries_per_structure: int
    boosting_rounds: int
    zeroshot_epochs: int

    @classmethod
    def default(cls) -> "ExperimentScale":
        return cls("default", queries_per_structure=6, boosting_rounds=200,
                   zeroshot_epochs=120)

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """Tiny scale for tests."""
        return cls("smoke", queries_per_structure=2, boosting_rounds=40,
                   zeroshot_epochs=25)

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls("paper", queries_per_structure=40, boosting_rounds=200,
                   zeroshot_epochs=200)


class ExperimentContext:
    """Builds and caches everything the benchmark targets share."""

    def __init__(self, scale: Optional[ExperimentScale] = None,
                 cache: Optional[DiskCache] = None,
                 seed: int = DEFAULT_SEED,
                 jobs: Optional[int] = None):
        self.scale = scale or ExperimentScale.default()
        self.cache = cache or default_cache()
        self.seed = seed
        #: Worker processes for workload construction; ``None`` defers
        #: to ``REPRO_JOBS`` / cpu count. Never part of cache keys —
        #: parallel and serial builds are bit-identical.
        self.jobs = jobs

    # -- keys ------------------------------------------------------------

    def cache_fingerprint(self) -> str:
        """Content hash of everything that determines the artifacts.

        Covers the full :class:`ExperimentScale` and
        :class:`~repro.datagen.workload.WorkloadConfig` (simulator and
        optimizer knobs included) plus the seed, so any configuration
        change re-keys the cache automatically — no hand-maintained
        version strings. CI uses this as its artifact-cache key.
        """
        return fingerprint(self.scale, self.workload_config(), self.seed)

    def _key(self, *parts: object) -> str:
        return "-".join(str(p) for p in
                        ("exp", self.scale.name, self.cache_fingerprint())
                        + parts)

    def workload_cache_key(self) -> str:
        """Cache key of the benchmarked workload (``build-workload``
        uses it to pre-warm or force-invalidate the entry)."""
        return self._key("workload")

    # -- workloads ----------------------------------------------------------

    def workload_config(self) -> WorkloadConfig:
        return WorkloadConfig(
            queries_per_structure=self.scale.queries_per_structure,
            seed=self.seed)

    def workload(self) -> List[BenchmarkedQuery]:
        """The full 21-instance benchmarked workload (cached).

        Built on the process pool (``jobs``/``REPRO_JOBS``); the result
        is bit-identical to a serial build, so the cache key ignores
        the worker count.
        """
        return self.cache.get_or_build(
            self.workload_cache_key(),
            lambda: build_corpus_workload_parallel(all_instance_names(),
                                                   self.workload_config(),
                                                   jobs=self.jobs))

    def instance_workload(self, instance_name: str) -> List[BenchmarkedQuery]:
        return [q for q in self.workload()
                if q.instance_name == instance_name]

    def train_queries(self) -> List[BenchmarkedQuery]:
        """All queries outside the held-out TPC-DS family."""
        return [q for q in self.workload() if q.family != TEST_FAMILY]

    def test_queries(self) -> List[BenchmarkedQuery]:
        """All TPC-DS queries (generated + fixed, sf 1/10/100)."""
        return [q for q in self.workload() if q.family == TEST_FAMILY]

    def queries_excluding_family(self, family: str) -> List[BenchmarkedQuery]:
        return [q for q in self.workload() if q.family != family]

    def queries_of_family(self, family: str) -> List[BenchmarkedQuery]:
        return [q for q in self.workload() if q.family == family]

    def families(self) -> List[str]:
        seen: List[str] = []
        for query in self.workload():
            if query.family not in seen:
                seen.append(query.family)
        return seen

    def job_benchmark_queries(self) -> List[BenchmarkedQuery]:
        """The 113 benchmarked JOB queries (the imdb fixed group)."""
        return [q for q in self.workload()
                if q.family == "imdb" and q.group == "Fixed"]

    # -- models ----------------------------------------------------------------

    def t3_config(self, cardinalities: CardinalityKind = CardinalityKind.EXACT,
                  target_mode: TargetMode = TargetMode.PER_TUPLE) -> T3Config:
        boosting = BoostingParams(n_rounds=self.scale.boosting_rounds,
                                  objective="mape", validation_fraction=0.2)
        return T3Config(boosting=boosting, cardinalities=cardinalities,
                        target_mode=target_mode, seed=self.seed)

    def _train_t3(self, queries: Sequence[BenchmarkedQuery],
                  config: T3Config, key: str) -> T3Model:
        def build() -> T3Model:
            model = T3Model.train(queries, config)
            return model

        def build_payload():
            model = build()
            return (model.booster, model.config)

        booster, config_out = self.cache.get_or_build(key, build_payload)
        return T3Model(booster, config_out)

    def t3(self) -> T3Model:
        """The paper's standard model: trained on all non-TPC-DS queries."""
        return self._train_t3(self.train_queries(), self.t3_config(),
                              self._key("t3-standard"))

    def t3_variant(self,
                   cardinalities: CardinalityKind = CardinalityKind.EXACT,
                   target_mode: TargetMode = TargetMode.PER_TUPLE,
                   exclude_family: str = TEST_FAMILY,
                   n_runs: Optional[int] = None) -> T3Model:
        """A T3 trained under a non-standard regime (ablations, Fig 9/11/14)."""
        key = self._key("t3", cardinalities.value, target_mode.value,
                        exclude_family, n_runs)
        config = self.t3_config(cardinalities, target_mode)
        queries = self.queries_excluding_family(exclude_family)

        def build_payload():
            dataset = build_dataset(queries, kind=cardinalities,
                                    n_runs=n_runs, seed=self.seed)
            model = T3Model.from_dataset(dataset, config)
            return (model.booster, model.config)

        booster, config_out = self.cache.get_or_build(key, build_payload)
        return T3Model(booster, config_out)

    def autowlm(self):
        """The AutoWLM-style baseline (single query vector + GBDT, cached)."""
        from ..baselines.autowlm import AutoWLMModel

        key = self._key("autowlm")

        def build_payload():
            model = AutoWLMModel.train(self.train_queries(), self.t3_config())
            return (model.inner.booster, model.inner.config)

        booster, config = self.cache.get_or_build(key, build_payload)
        return AutoWLMModel(T3Model(booster, config))

    def zeroshot(self,
                 cardinalities: CardinalityKind = CardinalityKind.EXACT,
                 train_on: str = "corpus") -> ZeroShotModel:
        """The Zero-Shot baseline (cached).

        ``train_on='corpus'`` uses the standard non-TPC-DS training set;
        ``train_on='complex'`` mimics the paper's Figure 10 setup, where
        Zero Shot is trained on its *complex workload* pattern
        (selective scans + equi-joins + final aggregation — our SeJSiA /
        CSeJSiA groups) from non-IMDB instances.
        """
        key = self._key("zeroshot", cardinalities.value, train_on)

        def build() -> ZeroShotModel:
            if train_on == "complex":
                queries = [q for q in self.workload()
                           if q.family != "imdb"
                           and q.group in ("SeJSiA", "CSeJSiA", "SeJ", "J")]
            else:
                queries = self.train_queries()
            config = ZeroShotConfig(n_epochs=self.scale.zeroshot_epochs,
                                    cardinalities=cardinalities,
                                    seed=self.seed)
            return ZeroShotModel(config).fit(queries)

        return self.cache.get_or_build(key, build)
