"""Shared experiment harness for the paper's tables and figures.

:class:`~repro.experiments.context.ExperimentContext` owns the standard
setup every experiment shares — the 21-instance benchmarked workload,
the TPC-DS leave-out split, and the trained models — and caches the
expensive artifacts on disk so the 17 benchmark targets can run
back-to-back without recomputing them.
"""

from .cache import DiskCache, default_cache, fingerprint
from .context import ExperimentContext, ExperimentScale
from .reporting import print_table, print_series, format_seconds

__all__ = [
    "DiskCache",
    "default_cache",
    "fingerprint",
    "ExperimentContext",
    "ExperimentScale",
    "print_table",
    "print_series",
    "format_seconds",
]
