"""CSV export of figure data for downstream plotting.

The benchmark harness prints paper-style tables; this module exposes
the same data as machine-readable series so users can plot the figures
with their tool of choice:

>>> from repro.experiments.figures import FigureData, write_csv
>>> data = FigureData("fig12", "distortion",
...                   {"T3": [1.1, 1.4], "ZeroShot": [2.4, 3.5]},
...                   [1, 1000])
>>> write_csv(data, "fig12.csv")                      # doctest: +SKIP
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Union

from ..errors import ReproError


@dataclass
class FigureData:
    """One figure's data: named series over shared x values."""

    name: str
    x_label: str
    series: Dict[str, Sequence[float]]
    x_values: Sequence[object]
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.series:
            raise ReproError(f"figure {self.name!r} has no series")
        lengths = {len(values) for values in self.series.values()}
        lengths.add(len(self.x_values))
        if len(lengths) != 1:
            raise ReproError(
                f"figure {self.name!r}: series lengths differ: {lengths}")

    def rows(self) -> List[List[object]]:
        header = [self.x_label] + list(self.series)
        body = []
        for i, x in enumerate(self.x_values):
            body.append([x] + [self.series[name][i] for name in self.series])
        return [header] + body


def write_csv(data: FigureData, path: Union[str, Path]) -> Path:
    """Write one figure's data as CSV; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for row in data.rows():
            writer.writerow(row)
    return path


def read_csv(path: Union[str, Path]) -> FigureData:
    """Read a figure back from :func:`write_csv` output."""
    path = Path(path)
    with path.open(newline="") as handle:
        rows = list(csv.reader(handle))
    if len(rows) < 2:
        raise ReproError(f"{path} does not contain figure data")
    header, body = rows[0], rows[1:]
    x_values = [row[0] for row in body]
    series = {name: [float(row[i + 1]) for row in body]
              for i, name in enumerate(header[1:])}
    return FigureData(path.stem, header[0], series, x_values)


def export_all(figures: Sequence[FigureData],
               directory: Union[str, Path]) -> List[Path]:
    """Write a set of figures into ``directory`` as ``<name>.csv``."""
    directory = Path(directory)
    return [write_csv(figure, directory / f"{figure.name}.csv")
            for figure in figures]
