"""Disk cache for expensive experiment artifacts.

Workload construction and model training take tens of seconds; the
benchmark suite runs 17 experiments that share them. Artifacts are
pickled under ``REPRO_CACHE_DIR`` (default: ``<repo>/.cache``), keyed by
a version-stamped string, and rebuilt transparently when missing.
"""

from __future__ import annotations

import os
import pickle
import re
import uuid
from pathlib import Path
from typing import Any, Callable, Optional

#: Bump to invalidate all cached artifacts after incompatible changes.
CACHE_VERSION = "v3"


def _default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    # <repo>/.cache when running from a checkout; cwd fallback otherwise.
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent / ".cache"
    return Path.cwd() / ".cache"


class DiskCache:
    """Pickle-backed key-value cache with namespaced keys."""

    def __init__(self, directory: Optional[Path] = None, enabled: bool = True):
        self.directory = Path(directory) if directory else _default_cache_dir()
        self.enabled = enabled

    def _path(self, key: str) -> Path:
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", key)
        return self.directory / f"{CACHE_VERSION}-{safe}.pkl"

    _MISS = object()

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it if needed."""
        if not self.enabled:
            return builder()
        path = self._path(key)
        value = self._read(path)
        if value is not self._MISS:
            return value
        value = builder()
        self._write_atomic(path, value)
        return value

    def _read(self, path: Path) -> Any:
        """Load one entry; quarantines (never returns) corrupt files."""
        if not path.exists():
            return self._MISS
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            self._quarantine(path)
            return self._MISS

    def _quarantine(self, path: Path) -> None:
        """Move a truncated/corrupt entry aside so a rebuild can proceed
        and the bad bytes stay available for diagnosis."""
        target = path.with_name(f"{path.name}.corrupt-{uuid.uuid4().hex[:8]}")
        try:
            os.replace(path, target)
        except OSError:
            # Another process already quarantined or rebuilt it.
            pass

    def _write_atomic(self, path: Path, value: Any) -> None:
        """Publish via write-temp-then-rename so readers never observe a
        partially written pickle; the temp name is unique per writer so
        concurrent builders cannot clobber each other's temp file."""
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def invalidate(self, key: str) -> None:
        self._path(key).unlink(missing_ok=True)

    def clear(self) -> None:
        if self.directory.exists():
            for path in self.directory.glob(f"{CACHE_VERSION}-*"):
                path.unlink()


_DEFAULT: Optional[DiskCache] = None


def default_cache() -> DiskCache:
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = DiskCache()
    return _DEFAULT
