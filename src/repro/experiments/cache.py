"""Disk cache for expensive experiment artifacts.

Workload construction and model training take tens of seconds; the
benchmark suite runs 17 experiments that share them. Artifacts are
pickled under ``REPRO_CACHE_DIR`` (default: ``<repo>/.cache``), keyed by
a version-stamped string, and rebuilt transparently when missing.
"""

from __future__ import annotations

import os
import pickle
import re
from pathlib import Path
from typing import Any, Callable, Optional

#: Bump to invalidate all cached artifacts after incompatible changes.
CACHE_VERSION = "v3"


def _default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    # <repo>/.cache when running from a checkout; cwd fallback otherwise.
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent / ".cache"
    return Path.cwd() / ".cache"


class DiskCache:
    """Pickle-backed key-value cache with namespaced keys."""

    def __init__(self, directory: Optional[Path] = None, enabled: bool = True):
        self.directory = Path(directory) if directory else _default_cache_dir()
        self.enabled = enabled

    def _path(self, key: str) -> Path:
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", key)
        return self.directory / f"{CACHE_VERSION}-{safe}.pkl"

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it if needed."""
        if not self.enabled:
            return builder()
        path = self._path(key)
        if path.exists():
            try:
                with path.open("rb") as handle:
                    return pickle.load(handle)
            except Exception:
                path.unlink(missing_ok=True)  # corrupt cache entry
        value = builder()
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)
        return value

    def invalidate(self, key: str) -> None:
        self._path(key).unlink(missing_ok=True)

    def clear(self) -> None:
        if self.directory.exists():
            for path in self.directory.glob(f"{CACHE_VERSION}-*.pkl"):
                path.unlink()


_DEFAULT: Optional[DiskCache] = None


def default_cache() -> DiskCache:
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = DiskCache()
    return _DEFAULT
