"""Disk cache for expensive experiment artifacts.

Workload construction and model training take tens of seconds; the
benchmark suite runs 17 experiments that share them. Artifacts are
pickled under ``REPRO_CACHE_DIR`` (default: ``<repo>/.cache``) and
rebuilt transparently when missing.

The cache is safe under concurrent builders (pytest-xdist, the parallel
pipeline's workers, several CLI invocations): writes publish via a
unique temp file and an atomic rename, corrupt entries are quarantined
rather than served, and ``get_or_build`` takes a per-key advisory file
lock so N processes racing a cold key perform exactly one build.

Keys should be *content-derived* — hash the full configuration that
determines an artifact with :func:`fingerprint` instead of maintaining
version strings by hand; any config change then yields a new key
automatically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import re
import uuid
from contextlib import contextmanager
from enum import Enum
from pathlib import Path
from typing import Any, Callable, Iterator, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

#: On-disk layout version; content-hashed keys handle config changes.
#: v4: cardinality memo no longer admits stale id-reuse hits, so plans
#: (and everything downstream) can differ from v3 artifacts.
CACHE_VERSION = "v4"


def fingerprint(*objects: object) -> str:
    """Stable short content hash of configuration objects.

    Dataclasses (recursively, by field), enums, containers, and
    primitives are canonicalized before hashing, so two configs with
    equal contents fingerprint identically across processes and runs —
    the basis for content-derived cache keys.
    """
    digest = hashlib.sha256()
    for obj in objects:
        digest.update(_canonical(obj).encode())
        digest.update(b"\x1f")
    return digest.hexdigest()[:16]


def _canonical(obj: object) -> str:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={_canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj))
        return f"{type(obj).__name__}({fields})"
    if isinstance(obj, Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, dict):
        items = sorted((_canonical(k), _canonical(v)) for k, v in obj.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(_canonical(item) for item in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(item) for item in obj)) + "}"
    return repr(obj)


def _default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    # <repo>/.cache when running from a checkout; cwd fallback otherwise.
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent / ".cache"
    return Path.cwd() / ".cache"


class DiskCache:
    """Pickle-backed key-value cache with namespaced keys."""

    def __init__(self, directory: Optional[Path] = None, enabled: bool = True):
        self.directory = Path(directory) if directory else _default_cache_dir()
        self.enabled = enabled

    def _path(self, key: str) -> Path:
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", key)
        return self.directory / f"{CACHE_VERSION}-{safe}.pkl"

    _MISS = object()

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it if needed.

        Concurrent callers (threads or processes) racing a cold key are
        serialized on a per-key advisory file lock: the first one
        builds and publishes, the rest block and then load the
        published artifact — each artifact is built exactly once.
        """
        if not self.enabled:
            return builder()
        path = self._path(key)
        value = self._read(path)
        if value is not self._MISS:
            return value
        with self._key_lock(path):
            # Double-checked: another process may have built and
            # published while this one waited for the lock.
            value = self._read(path)
            if value is not self._MISS:
                return value
            value = builder()
            self._write_atomic(path, value)
        return value

    @contextmanager
    def _key_lock(self, path: Path) -> Iterator[None]:
        """Exclusive advisory lock scoped to one cache entry.

        The lock file lives beside the entry and is left in place after
        release — deleting it would let a late-arriving process lock a
        fresh inode while an earlier one still holds the old file.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        lock_path = path.with_name(f"{path.name}.lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def _read(self, path: Path) -> Any:
        """Load one entry; quarantines (never returns) corrupt files."""
        if not path.exists():
            return self._MISS
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            self._quarantine(path)
            return self._MISS

    def _quarantine(self, path: Path) -> None:
        """Move a truncated/corrupt entry aside so a rebuild can proceed
        and the bad bytes stay available for diagnosis."""
        target = path.with_name(f"{path.name}.corrupt-{uuid.uuid4().hex[:8]}")
        try:
            os.replace(path, target)
        except OSError:
            # Another process already quarantined or rebuilt it.
            pass

    def _write_atomic(self, path: Path, value: Any) -> None:
        """Publish via write-temp-then-rename so readers never observe a
        partially written pickle; the temp name is unique per writer so
        concurrent builders cannot clobber each other's temp file."""
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def invalidate(self, key: str) -> None:
        self._path(key).unlink(missing_ok=True)

    def clear(self) -> None:
        if self.directory.exists():
            for path in self.directory.glob(f"{CACHE_VERSION}-*"):
                path.unlink()


_DEFAULT: Optional[DiskCache] = None


def default_cache() -> DiskCache:
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = DiskCache()
    return _DEFAULT
