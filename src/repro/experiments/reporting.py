"""Paper-style console tables for the benchmark harness.

Every benchmark target prints the rows/series the corresponding table or
figure in the paper reports, so reproduction results can be compared
side by side with the published numbers.
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Sequence


def format_seconds(seconds: float) -> str:
    """Human scale: ns / us / ms / s."""
    if seconds < 1e-6:
        return f"{seconds * 1e9:.0f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


#: Optional context-manager factory (e.g. pytest's ``capsys.disabled``)
#: installed by the benchmark harness so tables appear on the live
#: terminal despite output capturing.
_CAPTURE_DISABLER = None


def set_capture_disabler(factory) -> None:
    """Install/remove a capture-disabling context-manager factory."""
    global _CAPTURE_DISABLER
    _CAPTURE_DISABLER = factory


def _emit(text: str) -> None:
    print(text)
    sys.stdout.flush()
    if _CAPTURE_DISABLER is not None:
        with _CAPTURE_DISABLER():
            print(text)
            sys.stdout.flush()


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]],
                note: str = "") -> None:
    """Render one experiment table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"\n=== {title} ==="]
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    if note:
        lines.append(f"note: {note}")
    _emit("\n".join(lines))


def print_series(title: str, x_label: str, series: dict,
                 x_values: Sequence[object], note: str = "") -> None:
    """Render a figure's data series (one column per named series)."""
    headers = [x_label] + list(series)
    rows: List[List[object]] = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            value = series[name][i]
            row.append(f"{value:.4g}" if isinstance(value, float) else value)
        rows.append(row)
    print_table(title, headers, rows, note)
