"""Feature binning for histogram-based split finding.

Like LightGBM, the trainer does not search raw thresholds. Each feature
is discretized into at most ``max_bins`` bins chosen from the quantiles
of the training data; split search then scans bin boundaries. Binning
happens once per dataset, which is what makes histogram GBDT training
fast.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import TrainingError


class BinMapper:
    """Maps raw float features to small integer bins and back.

    The mapper stores, per feature, an ascending array of *upper bounds*:
    a value ``x`` belongs to bin ``i`` iff
    ``bounds[i-1] < x <= bounds[i]`` (with ``bounds[-1] = -inf``).
    The last bin is unbounded above. Thresholds handed to trees are the
    upper bound of the left bin, so a binned split ``bin <= i`` and the
    raw-value split ``x <= bounds[i]`` select exactly the same rows.
    """

    def __init__(self, max_bins: int = 255):
        if not 2 <= max_bins <= 255:
            raise TrainingError(f"max_bins must be in [2, 255], got {max_bins}")
        self.max_bins = max_bins
        self._bounds: Optional[List[np.ndarray]] = None
        self.n_features: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        return self._bounds is not None

    def fit(self, X: np.ndarray) -> "BinMapper":
        """Choose bin boundaries from the quantiles of ``X`` (n_rows x n_features).

        One vectorized sort of the whole matrix replaces per-column
        ``np.unique``/``np.quantile`` calls: distinct values fall out of
        the sorted columns, and the quantiles of every high-cardinality
        column are computed in a single call. Quantiles are permutation
        invariant, so the boundaries are identical to the per-column
        formulation.
        """
        X = _as_matrix(X)
        n_rows, n_features = X.shape
        if n_rows == 0:
            raise TrainingError("cannot fit BinMapper on an empty dataset")
        sorted_X = np.sort(X, axis=0)
        changed = sorted_X[1:] != sorted_X[:-1]
        n_distinct = changed.sum(axis=0) + 1
        need_quantiles = n_distinct > self.max_bins
        quantile_values = None
        if need_quantiles.any():
            quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
            quantile_values = np.quantile(sorted_X[:, need_quantiles],
                                          quantiles, axis=0)
        bounds: List[np.ndarray] = []
        quantile_column = 0
        for j in range(n_features):
            if need_quantiles[j]:
                upper = np.unique(quantile_values[:, quantile_column])
                quantile_column += 1
            elif n_distinct[j] == 1:
                upper = np.empty(0, dtype=np.float64)
            else:
                # One bin per distinct value; boundary at midpoints.
                keep = np.empty(n_rows, dtype=bool)
                keep[0] = True
                keep[1:] = changed[:, j]
                distinct = sorted_X[keep, j]
                upper = (distinct[:-1] + distinct[1:]) / 2.0
            bounds.append(np.ascontiguousarray(upper, dtype=np.float64))
        self._bounds = bounds
        self.n_features = n_features
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Bin a raw feature matrix; result dtype is uint8."""
        if self._bounds is None:
            raise TrainingError("BinMapper.transform called before fit")
        X = _as_matrix(X)
        if X.shape[1] != self.n_features:
            raise TrainingError(
                f"expected {self.n_features} features, got {X.shape[1]}")
        binned = np.empty(X.shape, dtype=np.uint8)
        for j, upper in enumerate(self._bounds):
            binned[:, j] = np.searchsorted(upper, X[:, j], side="left")
        return binned

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def n_bins(self, feature: int) -> int:
        """Number of bins actually used for ``feature``."""
        if self._bounds is None:
            raise TrainingError("BinMapper not fitted")
        return len(self._bounds[feature]) + 1

    def bin_upper_bound(self, feature: int, bin_index: int) -> float:
        """Raw-value threshold equivalent to splitting after ``bin_index``.

        Splitting rows with ``bin <= bin_index`` to the left is identical
        to the raw-value condition ``x <= bin_upper_bound(feature, bin_index)``.
        The last bin has no upper bound and is not a valid split point.
        """
        if self._bounds is None:
            raise TrainingError("BinMapper not fitted")
        upper = self._bounds[feature]
        if not 0 <= bin_index < len(upper):
            raise TrainingError(
                f"bin {bin_index} of feature {feature} is not a split boundary")
        return float(upper[bin_index])


def _as_matrix(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise TrainingError(f"expected a 2-D feature matrix, got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise TrainingError("feature matrix contains NaN or infinite values")
    return X
