"""A single regression tree, stored as flat arrays.

The layout mirrors what tree compilers (lleaves [3]) consume: every
internal node holds a feature index and a raw-value threshold; evaluation
goes left when ``x[feature] <= threshold``. Leaves hold the additive
prediction value (shrinkage already applied by the booster).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import TrainingError

#: Sentinel child index marking a leaf node.
LEAF = -1


@dataclass
class TreeNode:
    """Builder-side node; frozen into arrays by :meth:`Tree.from_nodes`."""

    feature: int = LEAF
    threshold: float = 0.0
    left: int = LEAF
    right: int = LEAF
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left == LEAF


class Tree:
    """Immutable flat-array regression tree.

    Attributes
    ----------
    feature, threshold, left, right, value:
        Parallel arrays over nodes. Node 0 is the root. ``left[i] == -1``
        marks node ``i`` as a leaf whose prediction is ``value[i]``.
    """

    def __init__(self, feature: np.ndarray, threshold: np.ndarray,
                 left: np.ndarray, right: np.ndarray, value: np.ndarray):
        self.feature = np.ascontiguousarray(feature, dtype=np.int32)
        self.threshold = np.ascontiguousarray(threshold, dtype=np.float64)
        self.left = np.ascontiguousarray(left, dtype=np.int32)
        self.right = np.ascontiguousarray(right, dtype=np.int32)
        self.value = np.ascontiguousarray(value, dtype=np.float64)
        n = len(self.feature)
        if not (len(self.threshold) == len(self.left) == len(self.right) == len(self.value) == n):
            raise TrainingError("tree arrays must have equal length")
        if n == 0:
            raise TrainingError("a tree needs at least one node")
        self._validate()

    def _validate(self) -> None:
        n = self.n_nodes
        for i in range(n):
            if self.left[i] == LEAF:
                if self.right[i] != LEAF:
                    raise TrainingError(f"node {i}: half-leaf is invalid")
            else:
                for child in (self.left[i], self.right[i]):
                    if not 0 <= child < n:
                        raise TrainingError(f"node {i}: child {child} out of range")
                if self.feature[i] < 0:
                    raise TrainingError(f"node {i}: internal node without feature")

    # -- construction --------------------------------------------------

    @classmethod
    def from_nodes(cls, nodes: List[TreeNode]) -> "Tree":
        """Freeze a list of builder nodes (index order preserved)."""
        return cls(
            feature=np.array([n.feature for n in nodes], dtype=np.int32),
            threshold=np.array([n.threshold for n in nodes], dtype=np.float64),
            left=np.array([n.left for n in nodes], dtype=np.int32),
            right=np.array([n.right for n in nodes], dtype=np.int32),
            value=np.array([n.value for n in nodes], dtype=np.float64),
        )

    @classmethod
    def single_leaf(cls, value: float) -> "Tree":
        """A degenerate tree that predicts a constant."""
        return cls.from_nodes([TreeNode(value=value)])

    # -- inspection ----------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        return int(np.count_nonzero(self.left == LEAF))

    @property
    def max_depth(self) -> int:
        """Longest root-to-leaf path length (a single leaf has depth 0)."""
        depth = np.zeros(self.n_nodes, dtype=np.int64)
        best = 0
        for i in range(self.n_nodes):
            if self.left[i] != LEAF:
                for child in (self.left[i], self.right[i]):
                    depth[child] = depth[i] + 1
                    best = max(best, int(depth[child]))
        return best

    def used_features(self) -> np.ndarray:
        """Sorted unique feature indices referenced by internal nodes."""
        internal = self.left != LEAF
        return np.unique(self.feature[internal])

    # -- evaluation ----------------------------------------------------

    def predict_one(self, x: np.ndarray) -> float:
        """Evaluate the tree for a single feature vector."""
        node = 0
        while self.left[node] != LEAF:
            if x[self.feature[node]] <= self.threshold[node]:
                node = self.left[node]
            else:
                node = self.right[node]
        return float(self.value[node])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorized evaluation for a matrix of feature vectors.

        Rows are routed level-synchronously: all rows sitting at internal
        nodes take one step per iteration until every row reaches a leaf.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            return np.array([self.predict_one(X)])
        nodes = np.zeros(len(X), dtype=np.int64)
        active = self.left[nodes] != LEAF
        while np.any(active):
            idx = np.nonzero(active)[0]
            current = nodes[idx]
            go_left = X[idx, self.feature[current]] <= self.threshold[current]
            nodes[idx] = np.where(go_left, self.left[current], self.right[current])
            active[idx] = self.left[nodes[idx]] != LEAF
        return self.value[nodes]

    def leaf_index(self, x: np.ndarray) -> int:
        """Node index of the leaf a single vector falls into."""
        node = 0
        while self.left[node] != LEAF:
            node = self.left[node] if x[self.feature[node]] <= self.threshold[node] else self.right[node]
        return node

    # -- serialization helpers ------------------------------------------

    def to_dict(self) -> dict:
        return {
            "feature": self.feature.tolist(),
            "threshold": self.threshold.tolist(),
            "left": self.left.tolist(),
            "right": self.right.tolist(),
            "value": self.value.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Tree":
        return cls(
            feature=np.array(data["feature"], dtype=np.int32),
            threshold=np.array(data["threshold"], dtype=np.float64),
            left=np.array(data["left"], dtype=np.int32),
            right=np.array(data["right"], dtype=np.int32),
            value=np.array(data["value"], dtype=np.float64),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tree(nodes={self.n_nodes}, leaves={self.n_leaves}, depth={self.max_depth})"
