"""Leaf-wise growth of a single regression tree on binned data.

This is the heart of the trainer. Like LightGBM, growth is *leaf-wise*:
among all current leaves, the one whose best split has the highest gain
is split next, until ``num_leaves`` is reached or no split has positive
gain. Split finding scans per-leaf feature histograms; sibling
histograms are obtained by subtraction from the parent so each row is
histogrammed only O(depth of smaller side) times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import TrainingError
from .histogram import BinMapper
from .tree import Tree, TreeNode


@dataclass(frozen=True)
class GrowthParams:
    """Structural hyperparameters for one tree (paper: ~30 leaves)."""

    num_leaves: int = 31
    max_depth: int = 12
    min_data_in_leaf: int = 10
    min_sum_hessian_in_leaf: float = 1e-3
    lambda_l2: float = 1e-3
    min_split_gain: float = 1e-12

    def validate(self) -> None:
        if self.num_leaves < 2:
            raise TrainingError("num_leaves must be >= 2")
        if self.min_data_in_leaf < 1:
            raise TrainingError("min_data_in_leaf must be >= 1")
        if self.max_depth < 1:
            raise TrainingError("max_depth must be >= 1")


@dataclass
class _Histogram:
    grad: np.ndarray   # (n_features, max_bins)
    hess: np.ndarray
    count: np.ndarray

    def subtract(self, other: "_Histogram") -> "_Histogram":
        return _Histogram(self.grad - other.grad,
                          self.hess - other.hess,
                          self.count - other.count)


@dataclass
class _SplitCandidate:
    gain: float
    feature: int
    bin_index: int


@dataclass
class _LeafState:
    node_index: int
    rows: np.ndarray
    depth: int
    histogram: _Histogram
    sum_grad: float
    sum_hess: float
    best: Optional[_SplitCandidate] = field(default=None)


class TreeGrower:
    """Grows one tree for a fixed (binned data, gradient, hessian) triple."""

    def __init__(self, binned: np.ndarray, bin_mapper: BinMapper,
                 params: GrowthParams,
                 feature_mask: Optional[np.ndarray] = None):
        params.validate()
        if binned.dtype != np.uint8:
            raise TrainingError("binned matrix must be uint8 (use BinMapper)")
        self.binned = binned
        self.mapper = bin_mapper
        self.params = params
        self.n_rows, self.n_features = binned.shape
        self.max_bins = bin_mapper.max_bins
        # Reusable bin-code buffer for histogram construction: bincount
        # wants intp input, and converting into a preallocated buffer
        # avoids a fresh O(rows) cast per (leaf, feature) call.
        self._codes = np.empty(self.n_rows, dtype=np.intp)
        # Per-feature number of *usable* split boundaries: bins - 1.
        self._n_boundaries = np.array(
            [bin_mapper.n_bins(j) - 1 for j in range(self.n_features)],
            dtype=np.int64)
        if feature_mask is not None and feature_mask.shape != (self.n_features,):
            raise TrainingError("feature_mask must have one entry per feature")
        self.feature_mask = feature_mask
        # Precomputed mask of invalid (feature, bin) boundary positions.
        bins = np.arange(self.max_bins)[None, :]
        self._invalid_boundary = bins >= self._n_boundaries[:, None]
        if feature_mask is not None:
            self._invalid_boundary = self._invalid_boundary | ~feature_mask[:, None]

    # -- histogram construction -----------------------------------------

    def _build_histogram(self, rows: np.ndarray, grad: np.ndarray,
                         hess: np.ndarray) -> _Histogram:
        # Accumulate per feature over the leaf's rows. Compared to
        # offsetting all codes into one flat bincount, this never
        # materializes the O(rows x features) int64 code matrix nor the
        # two O(rows x features) np.repeat weight arrays — the only
        # temporaries are the uint8 row slice and two O(rows) weight
        # gathers. Within each output bin, contributions still add in
        # ascending row order, so the sums are bit-identical to the
        # flat formulation.
        sub = self.binned[rows]
        g = grad[rows]
        h = hess[rows]
        codes = self._codes[:len(rows)]
        n_bins = self.max_bins
        grad_hist = np.empty((self.n_features, n_bins), dtype=np.float64)
        hess_hist = np.empty((self.n_features, n_bins), dtype=np.float64)
        count_hist = np.empty((self.n_features, n_bins), dtype=np.int64)
        for feature in range(self.n_features):
            np.copyto(codes, sub[:, feature], casting="unsafe")
            grad_hist[feature] = np.bincount(codes, weights=g,
                                             minlength=n_bins)
            hess_hist[feature] = np.bincount(codes, weights=h,
                                             minlength=n_bins)
            count_hist[feature] = np.bincount(codes, minlength=n_bins)
        return _Histogram(grad_hist, hess_hist, count_hist)

    # -- split search -----------------------------------------------------

    def _leaf_objective(self, sum_grad: float, sum_hess: float) -> float:
        return (sum_grad * sum_grad) / (sum_hess + self.params.lambda_l2)

    def _find_best_split(self, leaf: _LeafState) -> Optional[_SplitCandidate]:
        p = self.params
        hist = leaf.histogram
        grad_left = np.cumsum(hist.grad, axis=1)
        hess_left = np.cumsum(hist.hess, axis=1)
        count_left = np.cumsum(hist.count, axis=1)
        grad_right = leaf.sum_grad - grad_left
        hess_right = leaf.sum_hess - hess_left
        count_right = len(leaf.rows) - count_left

        lam = p.lambda_l2
        gain = (grad_left ** 2 / (hess_left + lam)
                + grad_right ** 2 / (hess_right + lam)
                - self._leaf_objective(leaf.sum_grad, leaf.sum_hess))
        invalid = (self._invalid_boundary
                   | (count_left < p.min_data_in_leaf)
                   | (count_right < p.min_data_in_leaf)
                   | (hess_left < p.min_sum_hessian_in_leaf)
                   | (hess_right < p.min_sum_hessian_in_leaf))
        gain = np.where(invalid, -np.inf, gain)
        flat_best = int(np.argmax(gain))
        feature, bin_index = divmod(flat_best, self.max_bins)
        best_gain = float(gain[feature, bin_index])
        if not np.isfinite(best_gain) or best_gain <= p.min_split_gain:
            return None
        return _SplitCandidate(best_gain, feature, bin_index)

    # -- main loop ---------------------------------------------------------

    def grow(self, grad: np.ndarray, hess: np.ndarray) -> Tree:
        """Grow and return one tree; leaf values are the unshrunk Newton steps."""
        if grad.shape != (self.n_rows,) or hess.shape != (self.n_rows,):
            raise TrainingError("gradient/hessian must have one entry per row")
        p = self.params
        nodes: List[TreeNode] = [TreeNode()]
        all_rows = np.arange(self.n_rows, dtype=np.int64)
        root = _LeafState(
            node_index=0, rows=all_rows, depth=0,
            histogram=self._build_histogram(all_rows, grad, hess),
            sum_grad=float(grad.sum()), sum_hess=float(hess.sum()))
        root.best = self._find_best_split(root)
        leaves: List[_LeafState] = [root]

        while len(leaves) < p.num_leaves:
            splittable = [leaf for leaf in leaves
                          if leaf.best is not None and leaf.depth < p.max_depth]
            if not splittable:
                break
            leaf = max(splittable, key=lambda s: s.best.gain)
            leaves.remove(leaf)
            best = leaf.best

            go_left = self.binned[leaf.rows, best.feature] <= best.bin_index
            left_rows = leaf.rows[go_left]
            right_rows = leaf.rows[~go_left]
            # Histogram only the smaller child; derive the other by subtraction.
            if len(left_rows) <= len(right_rows):
                left_hist = self._build_histogram(left_rows, grad, hess)
                right_hist = leaf.histogram.subtract(left_hist)
            else:
                right_hist = self._build_histogram(right_rows, grad, hess)
                left_hist = leaf.histogram.subtract(right_hist)

            node = nodes[leaf.node_index]
            node.feature = best.feature
            node.threshold = self.mapper.bin_upper_bound(best.feature, best.bin_index)
            node.left = len(nodes)
            node.right = len(nodes) + 1
            nodes.append(TreeNode())
            nodes.append(TreeNode())

            for rows, hist, child_index in (
                    (left_rows, left_hist, node.left),
                    (right_rows, right_hist, node.right)):
                child = _LeafState(
                    node_index=child_index, rows=rows, depth=leaf.depth + 1,
                    histogram=hist,
                    sum_grad=float(grad[rows].sum()),
                    sum_hess=float(hess[rows].sum()))
                child.best = self._find_best_split(child)
                leaves.append(child)

        for leaf in leaves:
            nodes[leaf.node_index].value = (
                -leaf.sum_grad / (leaf.sum_hess + p.lambda_l2))
        return Tree.from_nodes(nodes)
