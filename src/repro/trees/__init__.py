"""Gradient-boosted decision tree framework (LightGBM-equivalent substrate).

The paper trains its model with LightGBM [19]. That framework is not
available offline, so this package implements the same algorithm class
from scratch:

* histogram-based split finding (:mod:`repro.trees.histogram`),
* leaf-wise tree growth with gain-based leaf selection
  (:mod:`repro.trees.grow`),
* gradient boosting with shrinkage, a held-out validation fraction, and
  several objectives including the MAPE objective the paper uses
  (:mod:`repro.trees.boosting`, :mod:`repro.trees.objectives`),
* a text serialization format so trained models can be cached and handed
  to the native-code compiler (:mod:`repro.trees.serialize`).

The trained artifact is a :class:`repro.trees.boosting.BoostedTreesModel`:
an ensemble of :class:`repro.trees.tree.Tree` objects whose predictions
sum (LightGBM semantics).
"""

from .tree import Tree, TreeNode
from .histogram import BinMapper
from .objectives import L2Objective, L1Objective, MAPEObjective, get_objective
from .boosting import BoostingParams, BoostedTreesModel, train_boosted_trees
from .serialize import dump_model, load_model, dumps_model, loads_model

__all__ = [
    "Tree",
    "TreeNode",
    "BinMapper",
    "L2Objective",
    "L1Objective",
    "MAPEObjective",
    "get_objective",
    "BoostingParams",
    "BoostedTreesModel",
    "train_boosted_trees",
    "dump_model",
    "load_model",
    "dumps_model",
    "loads_model",
]
