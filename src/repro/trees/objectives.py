"""Boosting objectives: gradients and hessians of the training loss.

The paper trains with LightGBM's MAPE objective on ``-log`` transformed
per-tuple times (Section 2.4/2.5). We provide L2, L1, and MAPE; all are
expressed through first/second derivatives so the grower can consume any
of them uniformly.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

import numpy as np

from ..errors import TrainingError


class Objective:
    """Interface: loss, gradient/hessian, and the optimal constant start value."""

    name = "abstract"

    def initial_prediction(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def gradient_hessian(self, y: np.ndarray, pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def loss(self, y: np.ndarray, pred: np.ndarray) -> float:
        raise NotImplementedError


class L2Objective(Objective):
    """Mean squared error; the workhorse for the transformed targets."""

    name = "l2"

    def initial_prediction(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def gradient_hessian(self, y: np.ndarray, pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return pred - y, np.ones_like(y)

    def loss(self, y: np.ndarray, pred: np.ndarray) -> float:
        return float(np.mean((pred - y) ** 2))


class L1Objective(Objective):
    """Mean absolute error. Hessians are constant (LightGBM does the same)."""

    name = "l1"

    def initial_prediction(self, y: np.ndarray) -> float:
        return float(np.median(y))

    def gradient_hessian(self, y: np.ndarray, pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return np.sign(pred - y), np.ones_like(y)

    def loss(self, y: np.ndarray, pred: np.ndarray) -> float:
        return float(np.mean(np.abs(pred - y)))


class MAPEObjective(Objective):
    """Mean absolute percentage error, LightGBM-style.

    grad = sign(pred - y) / max(|y|, eps);  hess = 1 / max(|y|, eps).

    This is the objective named in Section 2.5. Combined with the
    ``-log`` target transformation it further de-emphasizes absolute
    magnitude differences.
    """

    name = "mape"

    def __init__(self, eps: float = 1.0):
        # LightGBM clamps |label| to at least 1 inside its MAPE objective.
        self.eps = eps

    def _scale(self, y: np.ndarray) -> np.ndarray:
        return 1.0 / np.maximum(np.abs(y), self.eps)

    def initial_prediction(self, y: np.ndarray) -> float:
        # Weighted median with weights 1/|y| minimizes weighted L1.
        order = np.argsort(y)
        weights = self._scale(y)[order]
        cumulative = np.cumsum(weights)
        idx = int(np.searchsorted(cumulative, 0.5 * cumulative[-1]))
        return float(y[order][min(idx, len(y) - 1)])

    def gradient_hessian(self, y: np.ndarray, pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        scale = self._scale(y)
        return np.sign(pred - y) * scale, scale

    def loss(self, y: np.ndarray, pred: np.ndarray) -> float:
        return float(np.mean(np.abs(pred - y) * self._scale(y)))


_REGISTRY: Dict[str, Type[Objective]] = {
    L2Objective.name: L2Objective,
    L1Objective.name: L1Objective,
    MAPEObjective.name: MAPEObjective,
}


def get_objective(name: str) -> Objective:
    """Instantiate an objective by name (``l2``, ``l1``, ``mape``)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise TrainingError(
            f"unknown objective {name!r}; available: {sorted(_REGISTRY)}") from None
