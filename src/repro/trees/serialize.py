"""Text serialization of boosted tree models.

Models are stored as a single JSON document (LightGBM uses a bespoke
text format; JSON keeps the same capability — cache trained models on
disk, ship them to the compiler — without a custom parser).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import TrainingError
from .boosting import BoostedTreesModel
from .tree import Tree

FORMAT_VERSION = 1


def dumps_model(model: BoostedTreesModel) -> str:
    """Serialize a model to a JSON string."""
    payload = {
        "format": "repro-gbdt",
        "version": FORMAT_VERSION,
        "base_score": model.base_score,
        "n_features": model.n_features,
        "trees": [tree.to_dict() for tree in model.trees],
    }
    return json.dumps(payload)


def loads_model(text: str) -> BoostedTreesModel:
    """Deserialize a model from a JSON string produced by :func:`dumps_model`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TrainingError(f"invalid model document: {exc}") from exc
    if payload.get("format") != "repro-gbdt":
        raise TrainingError("not a repro-gbdt model document")
    if payload.get("version") != FORMAT_VERSION:
        raise TrainingError(
            f"unsupported model version {payload.get('version')!r}")
    trees = [Tree.from_dict(entry) for entry in payload["trees"]]
    return BoostedTreesModel(trees, payload["base_score"], payload["n_features"])


def dump_model(model: BoostedTreesModel, path: Union[str, Path]) -> None:
    """Write a model document to ``path``."""
    Path(path).write_text(dumps_model(model))


def load_model(path: Union[str, Path]) -> BoostedTreesModel:
    """Read a model document from ``path``."""
    return loads_model(Path(path).read_text())
