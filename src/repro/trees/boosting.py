"""Gradient boosting driver (the LightGBM `train`/`update` equivalent).

The paper's recipe (Section 2.5): sample 20 % of the training data as a
validation set, call ``update`` 200 times with the MAPE objective, and
keep the resulting 200-tree ensemble with ~30 leaves per tree. This
module reproduces that loop: shrinkage, optional row/feature subsampling,
per-round validation loss tracking, and optional early stopping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import TrainingError
from ..rng import DEFAULT_SEED, derive_rng
from .grow import GrowthParams, TreeGrower
from .histogram import BinMapper
from .objectives import get_objective
from .tree import Tree


@dataclass(frozen=True)
class BoostingParams:
    """Full training configuration.

    Defaults follow the paper: 200 boosting rounds, ~30 leaves, MAPE
    objective, 20 % validation split.
    """

    n_rounds: int = 200
    learning_rate: float = 0.1
    objective: str = "mape"
    validation_fraction: float = 0.2
    early_stopping_rounds: Optional[int] = None
    max_bins: int = 255
    bagging_fraction: float = 1.0
    feature_fraction: float = 1.0
    seed: int = DEFAULT_SEED
    growth: GrowthParams = field(default_factory=GrowthParams)

    def validate(self) -> None:
        if self.n_rounds < 1:
            raise TrainingError("n_rounds must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise TrainingError("learning_rate must be in (0, 1]")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise TrainingError("validation_fraction must be in [0, 1)")
        if not 0.0 < self.bagging_fraction <= 1.0:
            raise TrainingError("bagging_fraction must be in (0, 1]")
        if not 0.0 < self.feature_fraction <= 1.0:
            raise TrainingError("feature_fraction must be in (0, 1]")
        self.growth.validate()


class BoostedTreesModel:
    """A trained ensemble: prediction is ``base_score + sum of tree outputs``."""

    def __init__(self, trees: List[Tree], base_score: float, n_features: int,
                 params: Optional[BoostingParams] = None,
                 train_loss_curve: Optional[List[float]] = None,
                 valid_loss_curve: Optional[List[float]] = None):
        self.trees = list(trees)
        self.base_score = float(base_score)
        self.n_features = int(n_features)
        self.params = params
        self.train_loss_curve = train_loss_curve or []
        self.valid_loss_curve = valid_loss_curve or []

    # -- evaluation -----------------------------------------------------

    def predict_one(self, x: np.ndarray) -> float:
        """Sequential single-vector evaluation (the latency-relevant path)."""
        total = self.base_score
        for tree in self.trees:
            total += tree.predict_one(x)
        return total

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorized batch evaluation."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            return np.array([self.predict_one(X)])
        if X.shape[1] != self.n_features:
            raise TrainingError(
                f"model expects {self.n_features} features, got {X.shape[1]}")
        out = np.full(len(X), self.base_score, dtype=np.float64)
        for tree in self.trees:
            out += tree.predict(X)
        return out

    # -- inspection -------------------------------------------------------

    @property
    def n_trees(self) -> int:
        return len(self.trees)

    @property
    def n_leaves_total(self) -> int:
        return sum(tree.n_leaves for tree in self.trees)

    def feature_importances(self) -> np.ndarray:
        """Split-count importance per feature (LightGBM ``importance_type=split``)."""
        counts = np.zeros(self.n_features, dtype=np.int64)
        for tree in self.trees:
            internal = tree.left != -1
            np.add.at(counts, tree.feature[internal], 1)
        return counts

    def truncated(self, n_trees: int) -> "BoostedTreesModel":
        """A copy of the model using only the first ``n_trees`` rounds."""
        if not 0 <= n_trees <= len(self.trees):
            raise TrainingError(f"cannot truncate to {n_trees} trees")
        return BoostedTreesModel(self.trees[:n_trees], self.base_score,
                                 self.n_features, self.params)


def _split_validation(n_rows: int, fraction: float,
                      rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    indices = rng.permutation(n_rows)
    n_valid = int(round(n_rows * fraction))
    return indices[n_valid:], indices[:n_valid]


def train_boosted_trees(X: np.ndarray, y: np.ndarray,
                        params: Optional[BoostingParams] = None,
                        sample_weight: Optional[np.ndarray] = None) -> BoostedTreesModel:
    """Train a gradient-boosted tree ensemble.

    Parameters
    ----------
    X, y:
        Feature matrix (n_rows x n_features) and regression targets.
    params:
        Training configuration; defaults to the paper's recipe.
    sample_weight:
        Optional per-row weights multiplied into gradients and hessians.
    """
    params = params or BoostingParams()
    params.validate()
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2:
        raise TrainingError("X must be 2-D")
    if y.shape != (len(X),):
        raise TrainingError("y must have one target per row of X")
    if len(X) < 2:
        raise TrainingError("need at least two training rows")
    if sample_weight is not None:
        sample_weight = np.asarray(sample_weight, dtype=np.float64)
        if sample_weight.shape != y.shape or np.any(sample_weight < 0):
            raise TrainingError("sample_weight must be non-negative, one per row")

    rng = derive_rng(params.seed, "boosting")
    objective = get_objective(params.objective)

    if params.validation_fraction > 0 and len(X) >= 10:
        train_idx, valid_idx = _split_validation(
            len(X), params.validation_fraction, rng)
    else:
        train_idx = np.arange(len(X))
        valid_idx = np.empty(0, dtype=np.int64)

    X_train, y_train = X[train_idx], y[train_idx]
    X_valid, y_valid = X[valid_idx], y[valid_idx]
    w_train = sample_weight[train_idx] if sample_weight is not None else None

    mapper = BinMapper(params.max_bins).fit(X_train)
    binned = mapper.transform(X_train)

    base_score = objective.initial_prediction(y_train)
    pred_train = np.full(len(y_train), base_score)
    pred_valid = np.full(len(y_valid), base_score)

    trees: List[Tree] = []
    train_curve: List[float] = []
    valid_curve: List[float] = []
    best_round, best_valid = 0, math.inf
    n_features = X.shape[1]

    for round_index in range(params.n_rounds):
        grad, hess = objective.gradient_hessian(y_train, pred_train)
        if w_train is not None:
            grad = grad * w_train
            hess = hess * w_train

        feature_mask = None
        if params.feature_fraction < 1.0:
            n_keep = max(1, int(round(n_features * params.feature_fraction)))
            keep = rng.choice(n_features, size=n_keep, replace=False)
            feature_mask = np.zeros(n_features, dtype=bool)
            feature_mask[keep] = True

        if params.bagging_fraction < 1.0:
            n_keep = max(2, int(round(len(y_train) * params.bagging_fraction)))
            bag = rng.choice(len(y_train), size=n_keep, replace=False)
            bag_weight = np.zeros(len(y_train))
            bag_weight[bag] = 1.0
            grad = grad * bag_weight
            hess = hess * bag_weight

        grower = TreeGrower(binned, mapper, params.growth, feature_mask)
        tree = grower.grow(grad, hess)
        # Apply shrinkage to the leaf values so evaluation is a plain sum.
        tree = Tree(tree.feature, tree.threshold, tree.left, tree.right,
                    tree.value * params.learning_rate)
        trees.append(tree)

        pred_train += tree.predict(X_train)
        train_curve.append(objective.loss(y_train, pred_train))
        if len(y_valid):
            pred_valid += tree.predict(X_valid)
            valid_loss = objective.loss(y_valid, pred_valid)
            valid_curve.append(valid_loss)
            if valid_loss < best_valid - 1e-12:
                best_valid, best_round = valid_loss, round_index + 1
            elif (params.early_stopping_rounds is not None
                  and round_index + 1 - best_round >= params.early_stopping_rounds):
                trees = trees[:best_round]
                break

    return BoostedTreesModel(trees, base_score, n_features, params,
                             train_curve, valid_curve)
