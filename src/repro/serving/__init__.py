"""Online prediction serving for T3 models.

The serving stack turns the library's offline predictor into a
long-running service (ROADMAP: "serve heavy traffic"):

* :mod:`~repro.serving.registry` — versioned model store with warm
  native compilation and interpreted fallback,
* :mod:`~repro.serving.cache` — LRU plan/feature cache keyed by
  (model, instance, normalized SQL),
* :mod:`~repro.serving.batching` — micro-batching queue with bounded
  admission and per-request deadlines,
* :mod:`~repro.serving.service` — the staged request path tying the
  above together, degrading compiled → interpreted → analytic behind
  per-model circuit breakers (:mod:`repro.faults`),
* :mod:`~repro.serving.fallback` — the analytic last-resort estimate,
* :mod:`~repro.serving.http` — stdlib HTTP endpoints
  (``/predict``, ``/observe``, ``/metrics``, ``/healthz``),
* :mod:`~repro.serving.telemetry` — counters / gauges / histograms
  with Prometheus text exposition.

Quick start::

    from repro.serving import ModelRegistry, PredictionService, ServingServer

    registry = ModelRegistry()
    registry.load("model.json")
    with ServingServer(PredictionService(registry), port=0) as server:
        print(server.url)   # POST {"sql": ..., "instance": ...} to /predict
"""

from .batching import BatcherStats, MicroBatcher
from .cache import CacheStats, LRUCache, normalize_sql
from .fallback import AnalyticBaseline
from .registry import DEFAULT_MODEL_NAME, ModelEntry, ModelRegistry
from .service import PredictionResult, PredictionService, ServingConfig
from .http import ServingServer, error_response
from .telemetry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "AnalyticBaseline",
    "BatcherStats",
    "CacheStats",
    "Counter",
    "DEFAULT_MODEL_NAME",
    "Gauge",
    "Histogram",
    "LRUCache",
    "MetricsRegistry",
    "MicroBatcher",
    "ModelEntry",
    "ModelRegistry",
    "PredictionResult",
    "PredictionService",
    "ServingConfig",
    "ServingServer",
    "error_response",
    "normalize_sql",
]
