"""Serving observability primitives: counters, gauges, histograms.

A deliberately small, stdlib-only metrics kit in the spirit of the
Prometheus client: every instrument is thread-safe, registered under a
unique name, and rendered in the text exposition format by
:meth:`MetricsRegistry.render`. Stage latencies use log-spaced
histogram buckets because prediction latencies span microseconds
(compiled tree walk) to seconds (cold parse + featurize of a large
plan) — the same nine-orders-of-magnitude argument the paper makes for
tuple-centric targets applies to observing the serving path.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_LATENCY_BUCKETS"]

#: Log-spaced latency bucket upper bounds, 1 µs .. 10 s (plus +Inf).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** exponent, 12)
    for exponent in [x / 2.0 for x in range(-12, 3)])  # 1e-6 .. 1e1


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> List[str]:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} counter")
        lines.append(f"{self.name} {_format(self.value)}")
        return lines


class Gauge:
    """A value that can go up and down, or track a callable."""

    def __init__(self, name: str, help_text: str = "",
                 function: Optional[Callable[[], float]] = None):
        self.name = name
        self.help_text = help_text
        self._function = function
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_function(self, function: Callable[[], float]) -> None:
        with self._lock:
            self._function = function

    @property
    def value(self) -> float:
        with self._lock:
            function = self._function
            if function is None:
                return self._value
        return float(function())

    def render(self) -> List[str]:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} gauge")
        lines.append(f"{self.name} {_format(self.value)}")
        return lines


class Histogram:
    """Fixed-bucket histogram with cumulative counts (Prometheus style)."""

    def __init__(self, name: str, help_text: str = "",
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        self.name = name
        self.help_text = help_text
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ConfigurationError("histogram needs at least one bucket")
        self._counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        # Bucket label text never changes after construction; rendering
        # a scrape only appends the cumulative count to each prefix.
        self._bucket_labels = tuple(
            f'{name}_bucket{{le="{_format(bound)}"}} '
            for bound in self.bounds) + (f'{name}_bucket{{le="+Inf"}} ',)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the q-th observation)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile {q} outside [0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = q * total
            cumulative = 0
            for i, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank:
                    return (self.bounds[i] if i < len(self.bounds)
                            else math.inf)
        return math.inf

    def render(self) -> List[str]:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} histogram")
        with self._lock:
            cumulative = 0
            for label, bucket_count in zip(self._bucket_labels,
                                           self._counts):
                cumulative += bucket_count
                lines.append(label + str(cumulative))
            lines.append(f"{self.name}_sum {_format(self._sum)}")
            lines.append(f"{self.name}_count {self._count}")
        return lines


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics."""

    def __init__(self):
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}")
            return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(
            name, Counter, lambda: Counter(name, help_text))

    def gauge(self, name: str, help_text: str = "",
              function: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._get_or_create(
            name, Gauge, lambda: Gauge(name, help_text, function))
        if function is not None:
            gauge.set_function(function)
        return gauge

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, help_text, buckets))

    def get(self, name: str):
        with self._lock:
            return self._instruments.get(name)

    def render(self) -> str:
        """Text exposition of every instrument, sorted by name."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        lines: List[str] = []
        for _, instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"


def _format(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
