"""Plan/feature caching for the prediction service.

Parsing, optimizing, and featurizing a query costs orders of magnitude
more than evaluating the compiled tree (microseconds), so the service
caches the *output* of that front half — the per-pipeline feature
matrix and input cardinalities — keyed by ``(model, instance,
normalized SQL)``. A repeated query then costs one native batch call.

The cache is a plain LRU with hit/miss/eviction accounting; the
service wires those counts into the metrics registry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

from ..errors import ConfigurationError

__all__ = ["CacheStats", "LRUCache", "normalize_sql"]

_MISSING = object()


def normalize_sql(sql: str) -> str:
    """Canonical cache-key form of a SQL string.

    Lowercases and collapses whitespace *outside* single-quoted string
    literals (which stay byte-for-byte intact), and drops a trailing
    semicolon — so ``"SELECT * FROM t;"`` and ``"select *\n from  t"``
    share a cache entry while ``'abc'`` and ``'ABC'`` do not.
    """
    out = []
    in_literal = False
    pending_space = False
    for ch in sql:
        if in_literal:
            out.append(ch)
            if ch == "'":
                in_literal = False
            continue
        if ch == "'":
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(ch)
            in_literal = True
            continue
        if ch.isspace():
            pending_space = True
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        out.append(ch.lower())
    normalized = "".join(out)
    if normalized.endswith(";"):
        normalized = normalized[:-1].rstrip()
    return normalized


@dataclass
class CacheStats:
    """Cumulative cache accounting (monotonic counters)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class LRUCache:
    """A thread-safe least-recently-used cache.

    ``on_hit`` / ``on_miss`` / ``on_evict`` callbacks let the owner
    mirror the stats into external counters without the cache knowing
    about any metrics system.
    """

    def __init__(self, capacity: int,
                 on_hit: Optional[Callable[[], None]] = None,
                 on_miss: Optional[Callable[[], None]] = None,
                 on_evict: Optional[Callable[[], None]] = None):
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()
        self._on_hit = on_hit
        self._on_miss = on_miss
        self._on_evict = on_evict

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                callback = self._on_miss
                value = default
            else:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                callback = self._on_hit
        if callback is not None:
            callback()
        return value

    def get_checked(self, key: Hashable,
                    validator: Callable[[Any], bool],
                    default: Any = None) -> Any:
        """A :meth:`get` that self-heals: entries failing ``validator``
        are dropped and reported as a miss (plus an eviction), so one
        corrupt value costs a rebuild instead of poisoning every
        subsequent hit."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING and not validator(value):
                del self._entries[key]
                self.stats.evictions += 1
                evict_callback = self._on_evict
                value = _MISSING
            else:
                evict_callback = None
            if value is _MISSING:
                self.stats.misses += 1
                callback = self._on_miss
                value = default
            else:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                callback = self._on_hit
        if evict_callback is not None:
            evict_callback()
        if callback is not None:
            callback()
        return value

    def put(self, key: Hashable, value: Any) -> None:
        evicted = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                evicted += 1
            callback = self._on_evict
        if callback is not None:
            for _ in range(evicted):
                callback()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def drop_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose *key* satisfies ``predicate``.

        Targeted invalidation (counted as evictions): e.g. dropping all
        plans of one instance after its statistics shift, without
        throwing away every other instance's warm entries.
        """
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self.stats.evictions += len(doomed)
            callback = self._on_evict
        if callback is not None:
            for _ in doomed:
                callback()
        return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
