"""Model registry: load, version, and warm-compile T3 models.

The registry owns every model a service can answer with. Each
``register``/``load`` produces a new immutable :class:`ModelEntry`
under a name, with versions numbered from 1; lookups default to the
newest version, so rolling out a retrained model is ``load`` + done,
and the previous version stays addressable for comparison traffic.

Registration *warm-compiles*: the ensemble is compiled to native code
up front (never on the request path) and a throwaway prediction is run
so the first real request pays neither compile nor lazy-initialisation
cost. When :func:`~repro.treecomp.compiler.find_c_compiler` reports no
compiler, the entry degrades to the interpreted backend and records
why — the service keeps working everywhere the paper's "T3
interpreted" baseline does.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..errors import InjectedFaultError, ModelNotFoundError
from ..core.model import PredictionBackend, T3Model
from ..faults import FaultInjector, get_injector
from ..treecomp.compiler import find_c_compiler

__all__ = ["DEFAULT_MODEL_NAME", "ModelEntry", "ModelRegistry"]

DEFAULT_MODEL_NAME = "default"


@dataclass
class ModelEntry:
    """One registered model version."""

    name: str
    version: int
    model: T3Model
    source: str                      # file path or "<memory>"
    backend: str = "interpreted"     # "compiled" | "interpreted"
    fallback_reason: Optional[str] = None
    warmup_seconds: float = 0.0
    registered_at: float = field(default_factory=time.time)
    #: sha256 of the source file's bytes (``load`` only); lets repeated
    #: warmups of the same artifact dedupe instead of recompiling.
    content_digest: Optional[str] = None

    @property
    def key(self) -> str:
        return f"{self.name}@{self.version}"

    @property
    def n_features(self) -> int:
        return self.model.booster.n_features

    def describe(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "name": self.name,
            "version": self.version,
            "source": self.source,
            "backend": self.backend,
            "codegen": self.model.config.codegen_strategy,
            "n_features": self.n_features,
            "n_trees": len(self.model.booster.trees),
            "warmup_seconds": round(self.warmup_seconds, 6),
        }
        if self.fallback_reason:
            info["fallback_reason"] = self.fallback_reason
        if self.content_digest:
            info["content_digest"] = self.content_digest[:16]
        return info


class ModelRegistry:
    """Thread-safe, versioned collection of serveable models."""

    def __init__(self, compile_native: bool = True,
                 injector: Optional[FaultInjector] = None,
                 codegen: Optional[str] = None):
        """``codegen`` overrides the codegen strategy of every model
        loaded from disk (``repro-t3 serve --codegen ...``); ``None``
        honours each artifact's persisted strategy. In-memory models
        passed to :meth:`register` keep their own config either way.
        """
        self.compile_native = compile_native
        self.codegen = codegen
        self._versions: Dict[str, List[ModelEntry]] = {}
        self._lock = threading.Lock()
        self._injector = injector or get_injector()

    # -- registration -----------------------------------------------------

    def register(self, model: T3Model, name: str = DEFAULT_MODEL_NAME,
                 source: str = "<memory>",
                 content_digest: Optional[str] = None) -> ModelEntry:
        """Add a model under ``name`` as the next version, warmed up."""
        backend, reason, warmup = self._warm(model)
        with self._lock:
            versions = self._versions.setdefault(name, [])
            entry = ModelEntry(name=name, version=len(versions) + 1,
                               model=model, source=source, backend=backend,
                               fallback_reason=reason, warmup_seconds=warmup,
                               content_digest=content_digest)
            versions.append(entry)
        return entry

    def load(self, path: Union[str, Path],
             name: Optional[str] = None) -> ModelEntry:
        """Load a saved model JSON (``T3Model.save``) and register it.

        Idempotent warmup: when the newest version under ``name``
        already came from a file with identical bytes, that entry is
        returned as-is — re-running a warmup script (or several
        processes warming the same registry config) compiles each
        distinct artifact exactly once instead of stacking duplicate
        versions.
        """
        path = Path(path)
        name = name or DEFAULT_MODEL_NAME
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        with self._lock:
            versions = self._versions.get(name, [])
            if versions and versions[-1].content_digest == digest:
                return versions[-1]
        model = T3Model.load(path, compile_to_native=False,
                             codegen=self.codegen)
        return self.register(model, name=name, source=str(path),
                             content_digest=digest)

    def _warm(self, model: T3Model):
        """Compile (or fall back) and run one throwaway prediction.

        A compile failure — real or injected at the
        ``registry.compile`` fault site — degrades the entry to the
        interpreted backend with the reason recorded; registration
        itself never fails on compilation.
        """
        start = time.perf_counter()
        backend, reason = "interpreted", None
        if not self.compile_native:
            reason = "native compilation disabled"
        elif find_c_compiler() is None:
            reason = "no C compiler found (looked for cc/gcc/clang)"
        else:
            try:
                self._injector.fire("registry.compile")
                compiled = model.compile()
            except InjectedFaultError as exc:
                compiled = False
                reason = str(exc)
            if compiled:
                backend = "compiled"
            elif reason is None:
                reason = "compilation failed"
        if backend == "interpreted":
            model.use_backend(PredictionBackend.INTERPRETED)
        probe = np.zeros((1, model.booster.n_features), dtype=np.float64)
        model.predict_raw_batch(probe)
        return backend, reason, time.perf_counter() - start

    # -- lookup -----------------------------------------------------------

    def get(self, name: Optional[str] = None,
            version: Optional[int] = None) -> ModelEntry:
        """Resolve a model; newest version wins when unspecified.

        A ``None`` name means the default model — ``"default"`` if
        registered, otherwise the registry's only name.
        """
        with self._lock:
            if name is None:
                if DEFAULT_MODEL_NAME in self._versions:
                    name = DEFAULT_MODEL_NAME
                elif len(self._versions) == 1:
                    name = next(iter(self._versions))
                else:
                    raise ModelNotFoundError(
                        "no default model; registered names: "
                        f"{sorted(self._versions) or 'none'}")
            versions = self._versions.get(name)
            if not versions:
                raise ModelNotFoundError(
                    f"unknown model {name!r}; registered names: "
                    f"{sorted(self._versions) or 'none'}")
            if version is None:
                return versions[-1]
            for entry in versions:
                if entry.version == version:
                    return entry
            raise ModelNotFoundError(
                f"model {name!r} has no version {version} "
                f"(have 1..{len(versions)})")

    def entries(self) -> List[ModelEntry]:
        with self._lock:
            return [entry for versions in self._versions.values()
                    for entry in versions]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._versions)

    def __len__(self) -> int:
        return len(self.entries())

    def close(self) -> None:
        """Release compiled-library build directories of all entries."""
        for entry in self.entries():
            entry.model.close()
