"""Model registry: load, version, and warm-compile T3 models.

The registry owns every model a service can answer with. Each
``register``/``load`` produces a new immutable :class:`ModelEntry`
under a name, with versions numbered from 1; lookups default to the
newest version, so rolling out a retrained model is ``load`` + done,
and the previous version stays addressable for comparison traffic.

Hot-swap is pointer-based and atomic: a name may carry an **active**
pointer (:meth:`ModelRegistry.activate`) pinning which version answers
default lookups, plus at most one **canary**
(:meth:`ModelRegistry.set_canary`) that receives a configured fraction
of traffic. :meth:`ModelRegistry.get` resolves canary-vs-active under
one lock acquisition, so a concurrent promote/rollback can never hand
a caller a half-updated view. Entries themselves are immutable and
never evicted — a request that already resolved its
:class:`ModelEntry` keeps using exactly that model object (its
micro-batcher and breaker are keyed by ``entry.key``), so a swap
mid-micro-batch cannot mix model versions.

Registration *warm-compiles*: the ensemble is compiled to native code
up front (never on the request path) and a throwaway prediction is run
so the first real request pays neither compile nor lazy-initialisation
cost. When :func:`~repro.treecomp.compiler.find_c_compiler` reports no
compiler, the entry degrades to the interpreted backend and records
why — the service keeps working everywhere the paper's "T3
interpreted" baseline does.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import (
    ConfigurationError,
    InjectedFaultError,
    ModelNotFoundError,
)
from ..core.model import PredictionBackend, T3Model
from ..faults import FaultInjector, get_injector
from ..treecomp.compiler import find_c_compiler

__all__ = ["DEFAULT_MODEL_NAME", "ModelEntry", "ModelRegistry"]

DEFAULT_MODEL_NAME = "default"


@dataclass
class ModelEntry:
    """One registered model version."""

    name: str
    version: int
    model: T3Model
    source: str                      # file path or "<memory>"
    backend: str = "interpreted"     # "compiled" | "interpreted"
    fallback_reason: Optional[str] = None
    warmup_seconds: float = 0.0
    registered_at: float = field(default_factory=time.time)
    #: sha256 of the source file's bytes (``load`` only); lets repeated
    #: warmups of the same artifact dedupe instead of recompiling.
    content_digest: Optional[str] = None
    #: :meth:`T3Model.model_digest` — identity of the trees themselves,
    #: computed once at registration (it serializes the ensemble).
    model_digest: str = ""

    @property
    def key(self) -> str:
        return f"{self.name}@{self.version}"

    @property
    def n_features(self) -> int:
        return self.model.booster.n_features

    def describe(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "name": self.name,
            "version": self.version,
            "source": self.source,
            "backend": self.backend,
            "codegen": self.model.config.codegen_strategy,
            "n_features": self.n_features,
            "n_trees": len(self.model.booster.trees),
            "warmup_seconds": round(self.warmup_seconds, 6),
        }
        if self.model_digest:
            info["model_digest"] = self.model_digest
        if self.model.lineage:
            info["lineage"] = self.model.lineage
        if self.fallback_reason:
            info["fallback_reason"] = self.fallback_reason
        if self.content_digest:
            info["content_digest"] = self.content_digest[:16]
        return info


class ModelRegistry:
    """Thread-safe, versioned collection of serveable models."""

    def __init__(self, compile_native: bool = True,
                 injector: Optional[FaultInjector] = None,
                 codegen: Optional[str] = None):
        """``codegen`` overrides the codegen strategy of every model
        loaded from disk (``repro-t3 serve --codegen ...``); ``None``
        honours each artifact's persisted strategy. In-memory models
        passed to :meth:`register` keep their own config either way.
        """
        self.compile_native = compile_native
        self.codegen = codegen
        self._versions: Dict[str, List[ModelEntry]] = {}
        #: name -> version pinned to answer default lookups. Absent
        #: means "newest version", the pre-lifecycle behaviour.
        self._active: Dict[str, int] = {}
        #: name -> (version, traffic fraction) of the one canary.
        self._canary: Dict[str, Tuple[int, float]] = {}
        self._lock = threading.Lock()
        self._injector = injector or get_injector()

    # -- registration -----------------------------------------------------

    def register(self, model: T3Model, name: str = DEFAULT_MODEL_NAME,
                 source: str = "<memory>",
                 content_digest: Optional[str] = None) -> ModelEntry:
        """Add a model under ``name`` as the next version, warmed up.

        When ``content_digest`` matches the newest version under
        ``name``, that entry is returned instead of appending — the
        dedupe decision is (re-)made *under the lock*, so two loaders
        racing on the same artifact cannot both append (the
        check-in-``load``-then-append TOCTOU).
        """
        backend, reason, warmup = self._warm(model)
        model_digest = model.model_digest()
        with self._lock:
            versions = self._versions.setdefault(name, [])
            if content_digest is not None and versions and \
                    versions[-1].content_digest == content_digest:
                return versions[-1]
            entry = ModelEntry(name=name, version=len(versions) + 1,
                               model=model, source=source, backend=backend,
                               fallback_reason=reason, warmup_seconds=warmup,
                               content_digest=content_digest,
                               model_digest=model_digest)
            versions.append(entry)
        return entry

    def load(self, path: Union[str, Path],
             name: Optional[str] = None) -> ModelEntry:
        """Load a saved model JSON (``T3Model.save``) and register it.

        Idempotent warmup: when the newest version under ``name``
        already came from a file with identical bytes, that entry is
        returned as-is — re-running a warmup script (or several
        processes warming the same registry config) compiles each
        distinct artifact exactly once instead of stacking duplicate
        versions. The early check here is an optimisation (skip the
        load + warm); :meth:`register` re-checks under the lock, so a
        racing duplicate can cost a redundant warmup but never a
        duplicate version.
        """
        path = Path(path)
        name = name or DEFAULT_MODEL_NAME
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        with self._lock:
            versions = self._versions.get(name, [])
            if versions and versions[-1].content_digest == digest:
                return versions[-1]
        model = T3Model.load(path, compile_to_native=False,
                             codegen=self.codegen)
        return self.register(model, name=name, source=str(path),
                             content_digest=digest)

    def _warm(self, model: T3Model):
        """Compile (or fall back) and run one throwaway prediction.

        A compile failure — real or injected at the
        ``registry.compile`` fault site — degrades the entry to the
        interpreted backend with the reason recorded; registration
        itself never fails on compilation.
        """
        start = time.perf_counter()
        backend, reason = "interpreted", None
        if not self.compile_native:
            reason = "native compilation disabled"
        elif find_c_compiler() is None:
            reason = "no C compiler found (looked for cc/gcc/clang)"
        else:
            try:
                self._injector.fire("registry.compile")
                compiled = model.compile()
            except InjectedFaultError as exc:
                compiled = False
                reason = str(exc)
            if compiled:
                backend = "compiled"
            elif reason is None:
                reason = "compilation failed"
        if backend == "interpreted":
            model.use_backend(PredictionBackend.INTERPRETED)
        probe = np.zeros((1, model.booster.n_features), dtype=np.float64)
        model.predict_raw_batch(probe)
        return backend, reason, time.perf_counter() - start

    # -- lookup -----------------------------------------------------------

    def _resolve_name_locked(self, name: Optional[str]) -> str:
        """``None`` means the default model — ``"default"`` if
        registered, otherwise the registry's only name."""
        if name is not None:
            return name
        if DEFAULT_MODEL_NAME in self._versions:
            return DEFAULT_MODEL_NAME
        if len(self._versions) == 1:
            return next(iter(self._versions))
        raise ModelNotFoundError(
            "no default model; registered names: "
            f"{sorted(self._versions) or 'none'}")

    def _entry_locked(self, name: str, version: int) -> ModelEntry:
        versions = self._versions.get(name) or []
        for entry in versions:
            if entry.version == version:
                return entry
        raise ModelNotFoundError(
            f"model {name!r} has no version {version} "
            f"(have 1..{len(versions)})")

    def get(self, name: Optional[str] = None,
            version: Optional[int] = None,
            canary_draw: Optional[float] = None) -> ModelEntry:
        """Resolve a model under one lock acquisition.

        Precedence for an unpinned (``version=None``) lookup: the
        canary (when ``canary_draw`` — a uniform [0, 1) draw supplied
        by the caller — lands under its traffic fraction), else the
        active pointer, else the newest version. Resolving and reading
        the pointers atomically is what makes promote/rollback safe:
        a caller can observe the pre-swap or post-swap state, never a
        mix.
        """
        with self._lock:
            name = self._resolve_name_locked(name)
            versions = self._versions.get(name)
            if not versions:
                raise ModelNotFoundError(
                    f"unknown model {name!r}; registered names: "
                    f"{sorted(self._versions) or 'none'}")
            if version is not None:
                return self._entry_locked(name, version)
            canary = self._canary.get(name)
            if canary is not None and canary_draw is not None \
                    and canary_draw < canary[1]:
                return self._entry_locked(name, canary[0])
            active = self._active.get(name)
            if active is not None:
                return self._entry_locked(name, active)
            return versions[-1]

    # -- hot-swap pointers -------------------------------------------------

    def activate(self, name: Optional[str], version: int) -> ModelEntry:
        """Atomically pin ``version`` as the answer to default lookups.

        Clears the canary when the promoted version *is* the canary
        (promotion); used with the previous active version it is the
        rollback path. The swap is one pointer write under the lock —
        requests in flight keep the entry they already resolved.
        """
        with self._lock:
            name = self._resolve_name_locked(name)
            entry = self._entry_locked(name, version)
            self._active[name] = version
            canary = self._canary.get(name)
            if canary is not None and canary[0] == version:
                del self._canary[name]
            return entry

    def set_canary(self, name: Optional[str], version: int,
                   fraction: float) -> ModelEntry:
        """Route ``fraction`` of default lookups to ``version``."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"canary fraction must be in (0, 1], got {fraction}")
        with self._lock:
            name = self._resolve_name_locked(name)
            entry = self._entry_locked(name, version)
            active = self._active.get(name)
            if active == version:
                raise ConfigurationError(
                    f"version {version} of {name!r} is already active; "
                    "canarying it is meaningless")
            self._canary[name] = (version, fraction)
            return entry

    def clear_canary(self, name: Optional[str] = None) -> Optional[int]:
        """Stop routing canary traffic; returns the demoted version."""
        with self._lock:
            name = self._resolve_name_locked(name)
            canary = self._canary.pop(name, None)
            return None if canary is None else canary[0]

    def canary_info(self, name: Optional[str] = None
                    ) -> Optional[Tuple[int, float]]:
        """(version, fraction) of the canary under ``name``, if any."""
        with self._lock:
            try:
                name = self._resolve_name_locked(name)
            except ModelNotFoundError:
                return None
            return self._canary.get(name)

    def active_version(self, name: Optional[str] = None) -> Optional[int]:
        """The pinned active version (None = unpinned, newest wins)."""
        with self._lock:
            try:
                name = self._resolve_name_locked(name)
            except ModelNotFoundError:
                return None
            return self._active.get(name)

    def status(self) -> Dict[str, Dict[str, object]]:
        """Routing view per name: versions, active pointer, canary."""
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for name, versions in self._versions.items():
                active = self._active.get(name)
                canary = self._canary.get(name)
                out[name] = {
                    "versions": len(versions),
                    "active": (active if active is not None
                               else versions[-1].version),
                    "pinned": active is not None,
                    "canary": (None if canary is None else
                               {"version": canary[0],
                                "fraction": canary[1]}),
                }
            return out

    def entries(self) -> List[ModelEntry]:
        with self._lock:
            return [entry for versions in self._versions.values()
                    for entry in versions]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._versions)

    def __len__(self) -> int:
        return len(self.entries())

    def close(self) -> None:
        """Release compiled-library build directories of all entries."""
        for entry in self.entries():
            entry.model.close()
