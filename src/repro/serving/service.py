"""The online prediction service: registry → cache → batcher → metrics.

One ``predict`` call runs the paper's Figure 2 pipeline as a staged
request path, with each stage observable and the expensive front half
cacheable:

1. **parse/optimize** — SQL → logical plan → physical plan,
2. **featurize** — pipeline decomposition → per-pipeline vectors and
   input cardinalities,
3. **infer** — raw tree evaluation through the micro-batching queue
   (one native call for many concurrent requests),
4. combine — tuple-centric inverse transform × cardinalities, summed.

Stages 1–2 are skipped entirely on a plan-cache hit, which is what
makes the service's steady-state latency approach the bare compiled
tree walk the paper measures (~4 µs).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ServingError
from ..core.ablation import TargetMode
from ..core.targets import inverse_transform
from ..datagen.instances import Instance, get_instance
from ..engine.cardinality import ExactCardinalityModel
from ..engine.optimizer import Optimizer
from ..engine.sqlparser import parse_sql
from ..treecomp.compiler import compiler_info
from .batching import MicroBatcher
from .cache import LRUCache, normalize_sql
from .registry import ModelEntry, ModelRegistry
from .telemetry import MetricsRegistry

__all__ = ["PredictionResult", "PredictionService", "ServingConfig"]


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of the serving path."""

    max_batch_rows: int = 256        # rows coalesced per native call
    batch_wait_s: float = 0.002      # micro-batch coalescing window
    queue_capacity: int = 512        # admission control bound
    plan_cache_size: int = 1024      # (model, instance, sql) entries
    default_timeout_s: float = 5.0   # per-request deadline
    compile_native: bool = True


@dataclass(frozen=True)
class PredictionResult:
    """One answered prediction with its stage breakdown."""

    predicted_seconds: float
    pipeline_seconds: Tuple[float, ...]
    model_name: str
    model_version: int
    backend: str
    cache_hit: bool
    parse_seconds: float
    featurize_seconds: float
    infer_seconds: float
    total_seconds: float

    def to_json(self) -> Dict[str, object]:
        return {
            "predicted_seconds": self.predicted_seconds,
            "pipeline_seconds": list(self.pipeline_seconds),
            "model": self.model_name,
            "version": self.model_version,
            "backend": self.backend,
            "cache_hit": self.cache_hit,
            "stages": {
                "parse_seconds": self.parse_seconds,
                "featurize_seconds": self.featurize_seconds,
                "infer_seconds": self.infer_seconds,
                "total_seconds": self.total_seconds,
            },
        }


class PredictionService:
    """Serve query-time predictions over registered models.

    ``instance_resolver`` maps an instance name to an
    :class:`~repro.datagen.instances.Instance`; it defaults to the
    21-instance corpus and is injectable for tests and custom schemas.
    """

    def __init__(self, registry: Optional[ModelRegistry] = None,
                 config: Optional[ServingConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 instance_resolver: Callable[[str], Instance] = get_instance):
        self.config = config or ServingConfig()
        self.registry = registry or ModelRegistry(
            compile_native=self.config.compile_native)
        self.metrics = metrics or MetricsRegistry()
        self._resolve_instance = instance_resolver
        self._batchers: Dict[str, MicroBatcher] = {}
        self._batchers_lock = threading.Lock()
        self._optimizers: Dict[str, Tuple[Optimizer, ExactCardinalityModel]]
        self._optimizers = {}
        self._optimizers_lock = threading.Lock()
        self._started_at = time.time()
        self._closed = threading.Event()

        m = self.metrics
        self._m_requests = m.counter(
            "t3_serving_requests_total", "prediction requests answered")
        self._m_errors = m.counter(
            "t3_serving_errors_total", "prediction requests failed")
        self._m_cache_hits = m.counter(
            "t3_serving_cache_hits_total", "plan/feature cache hits")
        self._m_cache_misses = m.counter(
            "t3_serving_cache_misses_total", "plan/feature cache misses")
        self._m_cache_evictions = m.counter(
            "t3_serving_cache_evictions_total", "plan/feature cache evictions")
        self._m_parse = m.histogram(
            "t3_serving_parse_seconds", "SQL parse + optimize stage latency")
        self._m_featurize = m.histogram(
            "t3_serving_featurize_seconds", "featurization stage latency")
        self._m_infer = m.histogram(
            "t3_serving_infer_seconds",
            "tree inference stage latency (including batch queueing)")
        self._m_total = m.histogram(
            "t3_serving_total_seconds", "end-to-end request latency")
        self._plan_cache = LRUCache(
            self.config.plan_cache_size,
            on_hit=self._m_cache_hits.inc,
            on_miss=self._m_cache_misses.inc,
            on_evict=self._m_cache_evictions.inc)
        m.gauge("t3_serving_plan_cache_size",
                "entries in the plan/feature cache",
                function=self._plan_cache.__len__)
        m.gauge("t3_serving_models", "registered model versions",
                function=lambda: float(len(self.registry)))

    # -- the request path -------------------------------------------------

    def predict(self, sql: str, instance: str,
                model: Optional[str] = None,
                version: Optional[int] = None,
                timeout: Optional[float] = None) -> PredictionResult:
        """Predict the execution time of ``sql`` against ``instance``."""
        if self._closed.is_set():
            raise ServingError("service is closed")
        started = time.perf_counter()
        try:
            entry = self.registry.get(model, version)
            vectors, cards, parse_s, featurize_s, hit = \
                self._plan_features(entry, instance, sql)
            infer_started = time.perf_counter()
            raw = self._batcher_for(entry).submit(
                vectors,
                timeout=timeout if timeout is not None
                else self.config.default_timeout_s)
            infer_s = time.perf_counter() - infer_started
            if entry.model.config.target_mode is TargetMode.PER_QUERY:
                total = float(inverse_transform(raw)[0])
                pipeline_seconds: Tuple[float, ...] = ()
            else:
                times = entry.model.pipeline_times_from_raw(raw, cards)
                pipeline_seconds = tuple(float(t) for t in times)
                total = float(times.sum())
        except Exception:
            self._m_errors.inc()
            raise
        total_s = time.perf_counter() - started
        self._m_requests.inc()
        self._m_parse.observe(parse_s)
        self._m_featurize.observe(featurize_s)
        self._m_infer.observe(infer_s)
        self._m_total.observe(total_s)
        return PredictionResult(
            predicted_seconds=total, pipeline_seconds=pipeline_seconds,
            model_name=entry.name, model_version=entry.version,
            backend=entry.backend, cache_hit=hit,
            parse_seconds=parse_s, featurize_seconds=featurize_s,
            infer_seconds=infer_s, total_seconds=total_s)

    def predict_many(self, requests: Sequence[Tuple[str, str]],
                     model: Optional[str] = None,
                     version: Optional[int] = None,
                     timeout: Optional[float] = None
                     ) -> List[PredictionResult]:
        """Predict a batch of ``(sql, instance)`` requests in one shot.

        This is the client-side face of micro-batching — the natural
        call shape when one caller holds many queries at once (e.g. an
        optimizer scoring candidate plans, or a dashboard admitting a
        queued workload). All feature matrices are stacked into a
        **single** native batch call, so the per-request Python
        overhead is paid once per batch instead of once per query.
        """
        if self._closed.is_set():
            raise ServingError("service is closed")
        if not requests:
            return []
        started = time.perf_counter()
        try:
            entry = self.registry.get(model, version)
            fronts = [self._plan_features(entry, instance, sql)
                      for sql, instance in requests]
            infer_started = time.perf_counter()
            stacked = (fronts[0][0] if len(fronts) == 1
                       else np.vstack([front[0] for front in fronts]))
            raw = self._batcher_for(entry).submit(
                stacked,
                timeout=timeout if timeout is not None
                else self.config.default_timeout_s)
            infer_s = time.perf_counter() - infer_started
        except Exception:
            self._m_errors.inc()
            raise
        results = []
        offset = 0
        per_query = entry.model.config.target_mode is TargetMode.PER_QUERY
        for vectors, cards, parse_s, featurize_s, hit in fronts:
            rows = len(vectors)
            slice_raw = raw[offset:offset + rows]
            offset += rows
            if per_query:
                total = float(inverse_transform(slice_raw)[0])
                pipeline_seconds: Tuple[float, ...] = ()
            else:
                times = entry.model.pipeline_times_from_raw(slice_raw, cards)
                pipeline_seconds = tuple(float(t) for t in times)
                total = float(times.sum())
            self._m_requests.inc()
            self._m_parse.observe(parse_s)
            self._m_featurize.observe(featurize_s)
            results.append(PredictionResult(
                predicted_seconds=total, pipeline_seconds=pipeline_seconds,
                model_name=entry.name, model_version=entry.version,
                backend=entry.backend, cache_hit=hit,
                parse_seconds=parse_s, featurize_seconds=featurize_s,
                infer_seconds=infer_s,
                total_seconds=time.perf_counter() - started))
        self._m_infer.observe(infer_s)
        self._m_total.observe(time.perf_counter() - started)
        return results

    def _plan_features(self, entry: ModelEntry, instance: str, sql: str):
        """Cached front half: SQL → (vectors, cards). Stage timings are
        zero on a hit — nothing ran."""
        key = (entry.key, instance, normalize_sql(sql))
        cached = self._plan_cache.get(key)
        if cached is not None:
            vectors, cards = cached
            return vectors, cards, 0.0, 0.0, True
        parse_started = time.perf_counter()
        optimizer, card_model = self._optimizer_for(instance)
        inst = self._resolve_instance(instance)
        logical = parse_sql(sql, inst.schema, inst.catalog)
        plan = optimizer.optimize(logical, "serving_query")
        parse_s = time.perf_counter() - parse_started
        featurize_started = time.perf_counter()
        vectors, cards = entry.model.registry.vectors_for_plan(
            plan, card_model)
        if entry.model.config.target_mode is TargetMode.PER_QUERY:
            vectors = vectors.sum(axis=0, keepdims=True)
            cards = None
        vectors = np.ascontiguousarray(vectors, dtype=np.float64)
        featurize_s = time.perf_counter() - featurize_started
        self._plan_cache.put(key, (vectors, cards))
        return vectors, cards, parse_s, featurize_s, False

    def _optimizer_for(self, instance: str):
        with self._optimizers_lock:
            cached = self._optimizers.get(instance)
        if cached is None:
            inst = self._resolve_instance(instance)
            cached = (Optimizer(inst.schema, inst.catalog),
                      ExactCardinalityModel(inst.catalog))
            with self._optimizers_lock:
                # First builder wins so every thread shares one optimizer.
                cached = self._optimizers.setdefault(instance, cached)
        return cached

    def _batcher_for(self, entry: ModelEntry) -> MicroBatcher:
        with self._batchers_lock:
            batcher = self._batchers.get(entry.key)
            if batcher is None:
                batcher = MicroBatcher(
                    entry.model.predict_raw_batch,
                    max_batch_rows=self.config.max_batch_rows,
                    max_wait_s=self.config.batch_wait_s,
                    queue_capacity=self.config.queue_capacity,
                    metrics=self.metrics,
                    name=entry.key).start()
                self._batchers[entry.key] = batcher
            return batcher

    # -- observability ----------------------------------------------------

    def metrics_text(self) -> str:
        """Prometheus-style text exposition of all serving metrics."""
        return self.metrics.render()

    def health(self) -> Dict[str, object]:
        """Liveness payload for ``/healthz``."""
        return {
            "status": "ok" if len(self.registry) else "no models",
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "models": [entry.describe() for entry in self.registry.entries()],
            "plan_cache": {
                "size": len(self._plan_cache),
                "capacity": self._plan_cache.capacity,
                "hits": self._plan_cache.stats.hits,
                "misses": self._plan_cache.stats.misses,
                "evictions": self._plan_cache.stats.evictions,
            },
            "compiler": compiler_info(),
        }

    def cache_stats(self):
        return self._plan_cache.stats

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Stop batch workers and release compiled model libraries."""
        if self._closed.is_set():
            return
        self._closed.set()
        with self._batchers_lock:
            batchers = list(self._batchers.values())
        for batcher in batchers:
            batcher.close()
        self.registry.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
