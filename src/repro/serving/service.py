"""The online prediction service: registry → cache → batcher → metrics.

One ``predict`` call runs the paper's Figure 2 pipeline as a staged
request path, with each stage observable and the expensive front half
cacheable:

1. **parse/optimize** — SQL → logical plan → physical plan,
2. **featurize** — pipeline decomposition → per-pipeline vectors and
   input cardinalities,
3. **infer** — raw tree evaluation through the micro-batching queue
   (one native call for many concurrent requests),
4. combine — tuple-centric inverse transform × cardinalities, summed.

Stages 1–2 are skipped entirely on a plan-cache hit, which is what
makes the service's steady-state latency approach the bare compiled
tree walk the paper measures (~4 µs).

**Graceful degradation.** Stage 3 is a chain, not a single call: the
registered backend (compiled native, behind a per-entry circuit
breaker) → the interpreted ensemble walk → an analytic C_out-style
baseline (:mod:`~repro.serving.fallback`). Any rung that raises or
returns non-finite values hands the request to the next one, so
``predict`` answers with a finite estimate — tagged with ``degraded``
provenance — through compiler faults, corrupt artifacts, and wedged
batchers. Overload is handled *before* evaluation: deadlines travel
with queued requests (:class:`~repro.errors.DeadlineExceeded`), a
watermark sheds load (:class:`~repro.errors.LoadShedError`), and the
healthy/degraded/draining state machine surfaces all of it in
``/healthz``.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    ConfigurationError,
    InjectedFaultError,
    InstanceNotFoundError,
    NonFinitePredictionError,
    QueueFullError,
    RequestTimeoutError,
    SchemaError,
    ServiceClosedError,
    ServingError,
)
from ..core.ablation import TargetMode
from ..core.targets import inverse_transform
from ..datagen.instances import Instance, get_instance
from ..engine.cardinality import ExactCardinalityModel
from ..engine.optimizer import Optimizer
from ..engine.sqlparser import parse_sql
from ..faults import (
    BreakerState,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    HealthState,
    HealthTracker,
    get_injector,
    install_plan,
)
from ..rng import DEFAULT_SEED
from ..treecomp.compiler import compiler_info
from .batching import MicroBatcher
from .cache import LRUCache, normalize_sql
from .fallback import AnalyticBaseline
from .registry import ModelEntry, ModelRegistry
from .telemetry import MetricsRegistry

__all__ = ["PredictionResult", "PredictionService", "ServingConfig"]

_LOG = logging.getLogger(__name__)

#: Fallback-rung labels carried in result provenance.
_INTERPRETED = "interpreted"
_ANALYTIC = "analytic"


def _canary_draw(seed: int, index: int) -> float:
    """Uniform [0, 1) from (seed, request index).

    A splitmix64-style finalizer: hot-path cheap (a handful of integer
    ops, no Generator construction) yet deterministic, so a replayed
    request sequence routes the same requests to the canary.
    """
    x = (index * 0x9E3779B97F4A7C15 + seed) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return (x >> 11) / float(1 << 53)


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of the serving path."""

    max_batch_rows: int = 256        # rows coalesced per native call
    batch_wait_s: float = 0.002      # micro-batch coalescing window
    queue_capacity: int = 512        # admission control bound
    plan_cache_size: int = 1024      # (model, instance, sql) entries
    default_timeout_s: float = 5.0   # per-request deadline
    compile_native: bool = True
    #: Codegen-strategy override for models loaded from disk
    #: (``None`` = honour each artifact's persisted strategy).
    codegen: Optional[str] = None
    # -- robustness -------------------------------------------------------
    #: Queue-depth fraction above which new requests are load-shed.
    shed_watermark_fraction: float = 0.9
    #: Per-entry circuit breaker (trips the registered backend away
    #: to the interpreted/analytic fallbacks).
    breaker_window: int = 20
    breaker_min_samples: int = 5
    breaker_failure_threshold: float = 0.5
    breaker_backoff_base_s: float = 0.5
    breaker_backoff_cap_s: float = 30.0
    breaker_half_open_probes: int = 2
    #: Seed for deterministic breaker jitter and fault arming.
    fault_seed: int = DEFAULT_SEED
    #: Installed on the global injector at service construction
    #: (``repro-t3 serve --chaos``); ``None`` leaves faults untouched.
    fault_plan: Optional[FaultPlan] = None
    #: How long after the last fallback/shed event ``/healthz`` keeps
    #: reporting ``degraded``.
    degraded_linger_s: float = 30.0

    @property
    def shed_watermark_depth(self) -> Optional[int]:
        """Absolute queue depth of the shed watermark (None = off)."""
        if not 0.0 < self.shed_watermark_fraction < 1.0:
            return None
        return max(1, int(self.queue_capacity
                          * self.shed_watermark_fraction))


@dataclass(frozen=True)
class PredictionResult:
    """One answered prediction with its stage breakdown."""

    predicted_seconds: float
    pipeline_seconds: Tuple[float, ...]
    model_name: str
    model_version: int
    backend: str
    cache_hit: bool
    parse_seconds: float
    featurize_seconds: float
    infer_seconds: float
    total_seconds: float
    #: True when the registered backend did not produce this answer.
    degraded: bool = False
    #: Which rung answered: None (primary), "interpreted", "analytic".
    fallback: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "predicted_seconds": self.predicted_seconds,
            "pipeline_seconds": list(self.pipeline_seconds),
            "model": self.model_name,
            "version": self.model_version,
            "backend": self.backend,
            "cache_hit": self.cache_hit,
            "degraded": self.degraded,
            "fallback": self.fallback,
            "stages": {
                "parse_seconds": self.parse_seconds,
                "featurize_seconds": self.featurize_seconds,
                "infer_seconds": self.infer_seconds,
                "total_seconds": self.total_seconds,
            },
        }


def _valid_feature_entry(value: object) -> bool:
    """Structural validity of a plan-cache entry (vectors, cards)."""
    if not isinstance(value, tuple) or len(value) != 2:
        return False
    vectors, cards = value
    if not isinstance(vectors, np.ndarray) or vectors.ndim != 2:
        return False
    if not np.all(np.isfinite(vectors)):
        return False
    if cards is not None:
        if not isinstance(cards, np.ndarray) or \
                len(cards) != len(vectors):
            return False
    return True


class PredictionService:
    """Serve query-time predictions over registered models.

    ``instance_resolver`` maps an instance name to an
    :class:`~repro.datagen.instances.Instance`; it defaults to the
    21-instance corpus and is injectable for tests and custom schemas.
    """

    def __init__(self, registry: Optional[ModelRegistry] = None,
                 config: Optional[ServingConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 instance_resolver: Callable[[str], Instance] = get_instance,
                 injector: Optional[FaultInjector] = None):
        self.config = config or ServingConfig()
        if injector is None:
            injector = (install_plan(self.config.fault_plan)
                        if self.config.fault_plan is not None
                        else get_injector())
        self._injector = injector
        self.registry = registry or ModelRegistry(
            compile_native=self.config.compile_native, injector=injector,
            codegen=self.config.codegen)
        self.metrics = metrics or MetricsRegistry()
        self._resolve_instance = instance_resolver
        self._analytic = AnalyticBaseline()
        self._batchers: Dict[str, MicroBatcher] = {}
        self._batchers_lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self._optimizers: Dict[str, Tuple[Optimizer, ExactCardinalityModel]]
        self._optimizers = {}
        self._optimizers_lock = threading.Lock()
        #: Attached LifecycleManager (duck-typed — serving never
        #: imports repro.lifecycle; the dependency points the other way).
        self._lifecycle = None
        self._lifecycle_lock = threading.Lock()
        #: Monotone request index feeding the canary-routing draw.
        #: itertools.count.__next__ is atomic under the GIL.
        self._canary_counter = itertools.count()
        self._started_at = time.time()
        self._closed = threading.Event()
        self._health = HealthTracker(
            degraded_linger_s=self.config.degraded_linger_s)
        self._health.add_probe("breaker_not_closed", self._any_breaker_open)

        m = self.metrics
        self._m_requests = m.counter(
            "t3_serving_requests_total", "prediction requests answered")
        self._m_errors = m.counter(
            "t3_serving_errors_total", "prediction requests failed")
        self._m_cache_hits = m.counter(
            "t3_serving_cache_hits_total", "plan/feature cache hits")
        self._m_cache_misses = m.counter(
            "t3_serving_cache_misses_total", "plan/feature cache misses")
        self._m_cache_evictions = m.counter(
            "t3_serving_cache_evictions_total", "plan/feature cache evictions")
        self._m_fallback = m.counter(
            "t3_serving_fallback_total",
            "requests answered by a degraded backend")
        self._m_fallback_interpreted = m.counter(
            "t3_serving_fallback_interpreted_total",
            "requests answered by the interpreted ensemble fallback")
        self._m_fallback_analytic = m.counter(
            "t3_serving_fallback_analytic_total",
            "requests answered by the analytic baseline fallback")
        self._m_observations = m.counter(
            "t3_serving_observations_total",
            "ground-truth observations accepted")
        self._m_canary_routed = m.counter(
            "t3_serving_canary_requests_total",
            "requests routed to a canary model version")
        self._m_parse = m.histogram(
            "t3_serving_parse_seconds", "SQL parse + optimize stage latency")
        self._m_featurize = m.histogram(
            "t3_serving_featurize_seconds", "featurization stage latency")
        self._m_infer = m.histogram(
            "t3_serving_infer_seconds",
            "tree inference stage latency (including batch queueing)")
        self._m_total = m.histogram(
            "t3_serving_total_seconds", "end-to-end request latency")
        self._plan_cache = LRUCache(
            self.config.plan_cache_size,
            on_hit=self._m_cache_hits.inc,
            on_miss=self._m_cache_misses.inc,
            on_evict=self._m_cache_evictions.inc)
        m.gauge("t3_serving_plan_cache_size",
                "entries in the plan/feature cache",
                function=self._plan_cache.__len__)
        m.gauge("t3_serving_models", "registered model versions",
                function=lambda: float(len(self.registry)))
        m.gauge("t3_serving_health_state",
                "service health (0 healthy, 1 degraded, 2 draining)",
                function=lambda: float(self._health.state.code))
        m.gauge("t3_serving_breakers_open",
                "circuit breakers currently open",
                function=lambda: float(self._breaker_count(
                    BreakerState.OPEN)))
        m.gauge("t3_serving_breakers_half_open",
                "circuit breakers currently half-open",
                function=lambda: float(self._breaker_count(
                    BreakerState.HALF_OPEN)))

    @property
    def injector(self) -> FaultInjector:
        """The fault injector shared by every site in this service."""
        return self._injector

    # -- the request path -------------------------------------------------

    def predict(self, sql: str, instance: str,
                model: Optional[str] = None,
                version: Optional[int] = None,
                timeout: Optional[float] = None,
                deadline: Optional[float] = None) -> PredictionResult:
        """Predict the execution time of ``sql`` against ``instance``.

        ``deadline`` is an absolute :func:`time.monotonic` instant; it
        wins over ``timeout`` (seconds from now) and propagates through
        every stage — a request that cannot finish in time is shed with
        :class:`~repro.errors.DeadlineExceeded`, never evaluated late.
        """
        if self._closed.is_set():
            raise ServiceClosedError("service is closed")
        started = time.perf_counter()
        deadline = self._resolve_deadline(timeout, deadline)
        try:
            entry = self._resolve_entry(model, version)
            vectors, cards, parse_s, featurize_s, hit = \
                self._plan_features(entry, instance, sql)
            infer_started = time.perf_counter()
            total, pipeline_seconds, fallback = self._predict_times(
                entry, vectors, cards, deadline)
            infer_s = time.perf_counter() - infer_started
        except Exception as exc:
            self._m_errors.inc()
            self._note_shed(exc)
            raise
        total_s = time.perf_counter() - started
        self._m_requests.inc()
        self._m_parse.observe(parse_s)
        self._m_featurize.observe(featurize_s)
        self._m_infer.observe(infer_s)
        self._m_total.observe(total_s)
        return PredictionResult(
            predicted_seconds=total, pipeline_seconds=pipeline_seconds,
            model_name=entry.name, model_version=entry.version,
            backend=entry.backend, cache_hit=hit,
            parse_seconds=parse_s, featurize_seconds=featurize_s,
            infer_seconds=infer_s, total_seconds=total_s,
            degraded=fallback is not None, fallback=fallback)

    def predict_many(self, requests: Sequence[Tuple[str, str]],
                     model: Optional[str] = None,
                     version: Optional[int] = None,
                     timeout: Optional[float] = None,
                     deadline: Optional[float] = None
                     ) -> List[PredictionResult]:
        """Predict a batch of ``(sql, instance)`` requests in one shot.

        This is the client-side face of micro-batching — the natural
        call shape when one caller holds many queries at once (e.g. an
        optimizer scoring candidate plans, or a dashboard admitting a
        queued workload). All feature matrices are stacked into a
        **single** native batch call, so the per-request Python
        overhead is paid once per batch instead of once per query.
        The degradation chain applies to the whole batch at once.
        """
        if self._closed.is_set():
            raise ServiceClosedError("service is closed")
        if not requests:
            return []
        started = time.perf_counter()
        deadline = self._resolve_deadline(timeout, deadline)
        try:
            entry = self._resolve_entry(model, version)
            fronts = [self._plan_features(entry, instance, sql)
                      for sql, instance in requests]
            infer_started = time.perf_counter()
            stacked = (fronts[0][0] if len(fronts) == 1
                       else np.vstack([front[0] for front in fronts]))
            raw, fallback = self._infer_raw(entry, stacked, deadline)
            infer_s = time.perf_counter() - infer_started
        except Exception as exc:
            self._m_errors.inc()
            self._note_shed(exc)
            raise
        results = []
        offset = 0
        per_query = entry.model.config.target_mode is TargetMode.PER_QUERY
        for vectors, cards, parse_s, featurize_s, hit in fronts:
            rows = len(vectors)
            if raw is None:   # analytic rung: no raw scores exist
                times = self._analytic.pipeline_times(vectors, cards)
                pipeline_seconds: Tuple[float, ...] = \
                    () if per_query else tuple(float(t) for t in times)
                total = float(times.sum())
            else:
                slice_raw = raw[offset:offset + rows]
                if per_query:
                    total = float(inverse_transform(slice_raw)[0])
                    pipeline_seconds = ()
                else:
                    times = entry.model.pipeline_times_from_raw(
                        slice_raw, cards)
                    pipeline_seconds = tuple(float(t) for t in times)
                    total = float(times.sum())
            offset += rows
            self._m_requests.inc()
            self._m_parse.observe(parse_s)
            self._m_featurize.observe(featurize_s)
            results.append(PredictionResult(
                predicted_seconds=total, pipeline_seconds=pipeline_seconds,
                model_name=entry.name, model_version=entry.version,
                backend=entry.backend, cache_hit=hit,
                parse_seconds=parse_s, featurize_seconds=featurize_s,
                infer_seconds=infer_s,
                total_seconds=time.perf_counter() - started,
                degraded=fallback is not None, fallback=fallback))
        self._m_infer.observe(infer_s)
        self._m_total.observe(time.perf_counter() - started)
        return results

    # -- routing -----------------------------------------------------------

    def _resolve_entry(self, model: Optional[str],
                       version: Optional[int]) -> ModelEntry:
        """Resolve the serving entry, routing a fraction to a canary.

        Explicit versions bypass routing. Otherwise a deterministic
        per-request draw decides canary vs active — the registry
        resolves both pointers under one lock, so a promote/rollback
        concurrent with this call yields the old or the new routing,
        never a mix. The entry returned is held for the whole request
        (batcher and breaker are keyed by it), so a swap mid-request
        cannot change which model answers.
        """
        if version is not None:
            return self.registry.get(model, version)
        draw = None
        canary = self.registry.canary_info(model)
        if canary is not None:
            draw = _canary_draw(self.config.fault_seed,
                                next(self._canary_counter))
        entry = self.registry.get(model, canary_draw=draw)
        if canary is not None and entry.version == canary[0]:
            self._m_canary_routed.inc()
        return entry

    # -- the observation hook ----------------------------------------------

    def observe(self, sql: str, instance: str, observed_seconds: float,
                model: Optional[str] = None) -> Dict[str, object]:
        """Accept one piece of ground truth: ``sql`` actually took
        ``observed_seconds`` on ``instance``.

        Recomputes the *active* model's prediction through the cached
        front half (observations deliberately skip canary routing: the
        pair being logged is "what the pinned model would say" vs
        reality, which is what retraining and shadow scoring compare
        against). When a lifecycle manager is attached the pair is
        appended to its crash-safe log and advances the state machine;
        without one this is a cheap echo endpoint.
        """
        if self._closed.is_set():
            raise ServiceClosedError("service is closed")
        observed = float(observed_seconds)
        if not np.isfinite(observed) or observed < 0.0:
            raise ConfigurationError(
                "observed_seconds must be finite and non-negative, "
                f"got {observed_seconds!r}")
        try:
            entry = self.registry.get(model)
            vectors, cards, _, _, _ = self._plan_features(
                entry, instance, sql)
            total, pipeline_seconds, fallback = self._predict_times(
                entry, vectors, cards,
                self._resolve_deadline(None, None))
        except Exception as exc:
            self._m_errors.inc()
            self._note_shed(exc)
            raise
        sequence = None
        lifecycle = self.lifecycle
        if lifecycle is not None:
            sequence = lifecycle.observe_served(
                instance=instance, vectors=vectors, cards=cards,
                predicted_seconds=total,
                pipeline_seconds=pipeline_seconds,
                observed_seconds=observed, model_key=entry.key)
        self._m_observations.inc()
        return {
            "sequence": sequence,
            "model": entry.name,
            "version": entry.version,
            "predicted_seconds": total,
            "observed_seconds": observed,
            "qerror": (max(max(total, 1e-9) / max(observed, 1e-9),
                           max(observed, 1e-9) / max(total, 1e-9))),
            "degraded": fallback is not None,
            "lifecycle": (None if lifecycle is None
                          else lifecycle.phase.value),
        }

    def attach_lifecycle(self, manager) -> None:
        """Install the lifecycle manager fed by :meth:`observe`."""
        with self._lifecycle_lock:
            self._lifecycle = manager

    @property
    def lifecycle(self):
        with self._lifecycle_lock:
            return self._lifecycle

    def breaker_state(self, entry: ModelEntry) -> BreakerState:
        """The circuit-breaker state guarding ``entry``'s backend."""
        return self._breaker_for(entry).state

    def invalidate_instance(self, instance: str) -> int:
        """Drop cached plans/optimizers for ``instance`` (stats shift).

        Returns how many plan-cache entries were dropped. Must be
        called when an instance's statistics change under the service
        (e.g. a drift scenario flipping regimes), otherwise predictions
        keep using plans optimized against the stale catalog.
        """
        with self._optimizers_lock:
            self._optimizers.pop(instance, None)
        return self._plan_cache.drop_where(
            lambda key: key[1] == instance)

    # -- the degradation chain --------------------------------------------

    def _predict_times(self, entry: ModelEntry, vectors: np.ndarray,
                       cards: Optional[np.ndarray],
                       deadline: Optional[float]
                       ) -> Tuple[float, Tuple[float, ...], Optional[str]]:
        """(total, pipeline times, fallback) via the degradation chain."""
        raw, fallback = self._infer_raw(entry, vectors, deadline)
        if raw is None:   # analytic rung
            times = self._analytic.pipeline_times(vectors, cards)
            per_query = (entry.model.config.target_mode
                         is TargetMode.PER_QUERY)
            pipeline_seconds: Tuple[float, ...] = \
                () if per_query else tuple(float(t) for t in times)
            return float(times.sum()), pipeline_seconds, fallback
        if entry.model.config.target_mode is TargetMode.PER_QUERY:
            return float(inverse_transform(raw)[0]), (), fallback
        times = entry.model.pipeline_times_from_raw(raw, cards)
        return (float(times.sum()),
                tuple(float(t) for t in times), fallback)

    def _infer_raw(self, entry: ModelEntry, stacked: np.ndarray,
                   deadline: Optional[float]
                   ) -> Tuple[Optional[np.ndarray], Optional[str]]:
        """Raw scores for ``stacked``, degrading rung by rung.

        Returns ``(raw, fallback)``; ``raw=None`` means the analytic
        baseline must answer (no raw scores exist on that rung).
        Shedding errors (queue full, deadline) propagate — they are
        load decisions, not artifact failures — while evaluation
        failures trip the entry's breaker and fall through.
        """
        breaker = self._breaker_for(entry)
        if breaker.allow():
            try:
                raw = self._batcher_for(entry).submit(
                    stacked, deadline=deadline)
                if not np.all(np.isfinite(raw)):
                    raise NonFinitePredictionError(
                        "backend returned non-finite predictions")
            except (QueueFullError, RequestTimeoutError,
                    ServiceClosedError):
                # Overload or shutdown, not artifact failure: shed to
                # the caller, returning the half-open probe slot
                # allow() may have taken so the breaker cannot wedge.
                breaker.record_aborted()
                raise
            except Exception as exc:
                breaker.record_failure()
                _LOG.warning("primary backend failed for %s "
                             "(falling back): %s", entry.key, exc)
            else:
                breaker.record_success()
                return raw, None
        self._check_deadline(deadline)
        # Rung 2: interpreted ensemble walk (pure python, no batcher).
        try:
            raw = np.asarray(
                entry.model.booster.predict(
                    np.ascontiguousarray(stacked, dtype=np.float64)),
                dtype=np.float64)
            if not np.all(np.isfinite(raw)):
                raise NonFinitePredictionError(
                    "interpreted backend returned non-finite predictions")
        except Exception:
            pass
        else:
            self._note_fallback(_INTERPRETED)
            return raw, _INTERPRETED
        self._check_deadline(deadline)
        # Rung 3: analytic baseline — computed by the caller, which
        # holds the cardinalities; always finite, never raises.
        self._note_fallback(_ANALYTIC)
        return None, _ANALYTIC

    def _note_fallback(self, target: str) -> None:
        self._m_fallback.inc()
        if target == _INTERPRETED:
            self._m_fallback_interpreted.inc()
        else:
            self._m_fallback_analytic.inc()
        self._health.note_fallback(target)

    def _note_shed(self, exc: Exception) -> None:
        if isinstance(exc, (QueueFullError, RequestTimeoutError)):
            self._health.note_shed()

    def _resolve_deadline(self, timeout: Optional[float],
                          deadline: Optional[float]) -> Optional[float]:
        if deadline is not None:
            return deadline
        window = (timeout if timeout is not None
                  else self.config.default_timeout_s)
        # `is not None`, not truthiness: timeout=0 means "already due"
        # (an immediately-expiring deadline), not "wait forever".
        return (time.monotonic() + window) if window is not None else None

    @staticmethod
    def _check_deadline(deadline: Optional[float]) -> None:
        from ..errors import DeadlineExceeded
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded(
                "request deadline expired between fallback rungs")

    # -- the cached front half --------------------------------------------

    def _plan_features(self, entry: ModelEntry, instance: str, sql: str):
        """Cached front half: SQL → (vectors, cards). Stage timings are
        zero on a hit — nothing ran.

        The ``cache.read`` fault site lives here: a raising read is
        treated as a miss (rebuild), and corrupt entries fail
        structural validation inside :meth:`LRUCache.get_checked`,
        which drops them — one corrupt value costs one rebuild.
        """
        key = (entry.key, instance, normalize_sql(sql))
        try:
            self._injector.fire("cache.read")
            cached = self._plan_cache.get_checked(
                key, _valid_feature_entry)
            cached = self._injector.corrupt(
                "cache.read", cached, lambda value: None)
        except InjectedFaultError:
            cached = None   # degraded to a rebuild, not an error
        if cached is not None:
            vectors, cards = cached
            return vectors, cards, 0.0, 0.0, True
        parse_started = time.perf_counter()
        optimizer, card_model = self._optimizer_for(instance)
        inst = self._instance(instance)
        logical = parse_sql(sql, inst.schema, inst.catalog)
        plan = optimizer.optimize(logical, "serving_query")
        parse_s = time.perf_counter() - parse_started
        featurize_started = time.perf_counter()
        vectors, cards = entry.model.registry.vectors_for_plan(
            plan, card_model)
        if entry.model.config.target_mode is TargetMode.PER_QUERY:
            vectors = vectors.sum(axis=0, keepdims=True)
            cards = None
        vectors = np.ascontiguousarray(vectors, dtype=np.float64)
        featurize_s = time.perf_counter() - featurize_started
        self._plan_cache.put(key, (vectors, cards))
        return vectors, cards, parse_s, featurize_s, False

    def _instance(self, name: str) -> Instance:
        """Resolve an instance name with a 404-able typed error."""
        try:
            return self._resolve_instance(name)
        except InstanceNotFoundError:
            raise
        except (SchemaError, KeyError, LookupError) as exc:
            raise InstanceNotFoundError(
                f"unknown instance {name!r}: {exc}") from exc

    def _optimizer_for(self, instance: str):
        with self._optimizers_lock:
            cached = self._optimizers.get(instance)
        if cached is None:
            inst = self._instance(instance)
            cached = (Optimizer(inst.schema, inst.catalog),
                      ExactCardinalityModel(inst.catalog))
            with self._optimizers_lock:
                # First builder wins so every thread shares one optimizer.
                cached = self._optimizers.setdefault(instance, cached)
        return cached

    def _batcher_for(self, entry: ModelEntry) -> MicroBatcher:
        with self._batchers_lock:
            batcher = self._batchers.get(entry.key)
            if batcher is None:
                batcher = MicroBatcher(
                    entry.model.predict_raw_batch,
                    max_batch_rows=self.config.max_batch_rows,
                    max_wait_s=self.config.batch_wait_s,
                    queue_capacity=self.config.queue_capacity,
                    shed_watermark=self.config.shed_watermark_depth,
                    metrics=self.metrics,
                    name=entry.key,
                    injector=self._injector).start()
                self._batchers[entry.key] = batcher
            return batcher

    def _breaker_for(self, entry: ModelEntry) -> CircuitBreaker:
        with self._breakers_lock:
            breaker = self._breakers.get(entry.key)
            if breaker is None:
                c = self.config
                breaker = CircuitBreaker(
                    entry.key,
                    window=c.breaker_window,
                    min_samples=c.breaker_min_samples,
                    failure_threshold=c.breaker_failure_threshold,
                    backoff_base_s=c.breaker_backoff_base_s,
                    backoff_cap_s=c.breaker_backoff_cap_s,
                    half_open_probes=c.breaker_half_open_probes,
                    seed=c.fault_seed)
                self._breakers[entry.key] = breaker
            return breaker

    def _breaker_count(self, state: BreakerState) -> int:
        with self._breakers_lock:
            breakers = list(self._breakers.values())
        return sum(1 for b in breakers if b.state is state)

    def _any_breaker_open(self) -> bool:
        with self._breakers_lock:
            breakers = list(self._breakers.values())
        return any(b.state is not BreakerState.CLOSED for b in breakers)

    # -- observability ----------------------------------------------------

    def metrics_text(self) -> str:
        """Prometheus-style text exposition of all serving metrics."""
        return self.metrics.render()

    def health(self) -> Dict[str, object]:
        """Liveness payload for ``/healthz``."""
        state = self._health.state
        if state is not HealthState.HEALTHY:
            status = state.value
        elif len(self.registry):
            status = "ok"    # healthy; name kept for scraper compat
        else:
            status = "no models"
        with self._breakers_lock:
            breakers = [b.snapshot() for b in self._breakers.values()]
        lifecycle = self.lifecycle
        return {
            "status": status,
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "models": [entry.describe() for entry in self.registry.entries()],
            "routing": self.registry.status(),
            "lifecycle": (lifecycle.describe()
                          if lifecycle is not None else None),
            "plan_cache": {
                "size": len(self._plan_cache),
                "capacity": self._plan_cache.capacity,
                "hits": self._plan_cache.stats.hits,
                "misses": self._plan_cache.stats.misses,
                "evictions": self._plan_cache.stats.evictions,
            },
            "degradation": self._health.describe(),
            "breakers": breakers,
            "faults": {
                "active": self._injector.active,
                "plan": (self._injector.plan.describe()
                         if self._injector.plan else []),
                "fired": self._injector.fire_counts(),
            },
            "compiler": compiler_info(),
        }

    def cache_stats(self):
        return self._plan_cache.stats

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Stop batch workers and release compiled model libraries."""
        if self._closed.is_set():
            return
        self._health.mark_draining()
        self._closed.set()
        with self._batchers_lock:
            batchers = list(self._batchers.values())
        for batcher in batchers:
            batcher.close()
        self.registry.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
