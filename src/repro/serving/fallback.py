"""The last rung of the degradation chain: an analytic baseline.

When both tree backends are unavailable — compiled artifact tripped
its breaker *and* the interpreted ensemble raised — the service still
answers, with a C_out-style analytic estimate (Cluet & Moerkotte via
:mod:`repro.baselines.cout`): cost proportional to the tuples each
pipeline touches. Kleerekoper et al. ("Can the Optimizer Cost be Used
to Predict Query Execution Times?") make the operative argument: even
a crude-but-available cost signal beats no signal, so a degraded
estimate is strictly better than an error on the optimizer hot path.

The estimate is deliberately simple: ``per_pipeline_s`` fixed overhead
plus ``per_tuple_s`` per input tuple, clamped to a finite range. It is
wrong in absolute terms and proudly so — results carry
``fallback="analytic"`` provenance so callers can weigh them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["AnalyticBaseline"]

#: Ceiling on any analytic estimate (seconds); nothing the corpus
#: executes takes longer, and the clamp guarantees finiteness.
_MAX_SECONDS = 1.0e6


class AnalyticBaseline:
    """Cardinality-proportional execution-time estimate.

    ``per_tuple_s`` defaults to 100 ns — the order of a simple
    operator's per-tuple cost in the simulator's cost tables — and
    ``per_pipeline_s`` covers fixed pipeline startup.
    """

    name = "analytic"

    def __init__(self, per_tuple_s: float = 1.0e-7,
                 per_pipeline_s: float = 1.0e-4):
        self.per_tuple_s = float(per_tuple_s)
        self.per_pipeline_s = float(per_pipeline_s)

    def pipeline_times(self, vectors: np.ndarray,
                       cards: Optional[np.ndarray]) -> np.ndarray:
        """Finite per-pipeline time estimates.

        ``cards`` is the per-pipeline input cardinality vector the
        featurizer produced; ``None`` (per-query models) falls back to
        a row-count-only estimate over ``vectors``.
        """
        if cards is None:
            n = max(1, int(np.asarray(vectors).shape[0]))
            times = np.full(n, self.per_pipeline_s, dtype=np.float64)
        else:
            tuples = np.maximum(np.nan_to_num(
                np.asarray(cards, dtype=np.float64),
                nan=1.0, posinf=_MAX_SECONDS, neginf=1.0), 1.0)
            times = self.per_pipeline_s + self.per_tuple_s * tuples
        return np.clip(times, 0.0, _MAX_SECONDS)

    def total_time(self, vectors: np.ndarray,
                   cards: Optional[np.ndarray]) -> float:
        return float(self.pipeline_times(vectors, cards).sum())
