"""Micro-batching of concurrent prediction requests.

The compiled tree's batch entry point amortizes the ctypes call
overhead over many rows (Table 2 of the paper: batch evaluation beats
back-to-back single calls by orders of magnitude). The
:class:`MicroBatcher` exploits that under concurrency: requests enqueue
their per-pipeline feature matrices, a single worker thread drains the
queue — waiting at most ``max_wait_s`` to coalesce up to
``max_batch_rows`` rows — stacks the vectors, makes **one**
``predict_raw_batch`` native call, and scatters the slices back to the
waiting callers.

Admission control is part of the contract: the queue is bounded
(:class:`~repro.errors.QueueFullError` when full, and
:class:`~repro.errors.LoadShedError` already at the shed watermark)
and every request carries a deadline — one that expires while still
queued is shed with :class:`~repro.errors.DeadlineExceeded` instead of
being evaluated late — so an overloaded service degrades with typed
errors instead of building an unbounded backlog.

The worker never blocks unboundedly: its idle wait is a short timed
``get`` re-checking the closed flag (checks rule RT001), and
:meth:`MicroBatcher.close` *drains* the queue — any request the worker
could not answer fails fast with
:class:`~repro.errors.ServiceClosedError` rather than leaving its
caller blocked past the close timeout.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..errors import (
    ConfigurationError,
    DeadlineExceeded,
    LoadShedError,
    QueueFullError,
    RequestTimeoutError,
    ServiceClosedError,
)
from ..faults import FaultInjector, get_injector
from .telemetry import MetricsRegistry

__all__ = ["BatcherStats", "MicroBatcher"]

_SHUTDOWN = object()

#: Batch-size histogram buckets (rows coalesced per native call).
_BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Idle wait per worker loop; bounds how long the worker can block
#: without noticing the closed flag.
_IDLE_TICK_S = 0.1

#: Upper bound on a deadline-less blocking :meth:`MicroBatcher.submit`
#: (RT002: never wait on a future unboundedly — a wedged worker must
#: surface as a typed timeout, not a hang).
_DEFAULT_RESULT_WAIT_S = 60.0


@dataclass
class _Request:
    vectors: np.ndarray          # (n_pipelines, n_features), contiguous
    future: "Future[np.ndarray]"
    deadline: Optional[float]    # monotonic seconds, None = no deadline


@dataclass
class BatcherStats:
    """Snapshot of the batcher's cumulative counters."""

    requests: int = 0
    batches: int = 0
    rows: int = 0
    rejected: int = 0
    timeouts: int = 0
    shed: int = 0          # watermark load-shedding rejections
    expired: int = 0       # deadline passed while queued (never evaluated)
    drained: int = 0       # failed with ServiceClosedError at close()

    @property
    def mean_batch_rows(self) -> float:
        return self.rows / self.batches if self.batches else 0.0


class MicroBatcher:
    """Coalesce concurrent requests into single native batch calls.

    ``predict_batch`` maps a stacked ``(rows, n_features)`` matrix to a
    vector of raw predictions; :meth:`submit` returns the slice
    belonging to the caller's vectors, in order.
    """

    def __init__(self, predict_batch: Callable[[np.ndarray], np.ndarray],
                 max_batch_rows: int = 256,
                 max_wait_s: float = 0.002,
                 queue_capacity: int = 512,
                 shed_watermark: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 name: str = "default",
                 injector: Optional[FaultInjector] = None):
        if max_batch_rows < 1:
            raise ConfigurationError("max_batch_rows must be >= 1")
        if queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        if shed_watermark is not None and \
                not 1 <= shed_watermark <= queue_capacity:
            raise ConfigurationError(
                "shed_watermark must be in [1, queue_capacity]")
        self._predict_batch = predict_batch
        self.max_batch_rows = int(max_batch_rows)
        self.max_wait_s = float(max_wait_s)
        self.queue_capacity = int(queue_capacity)
        self.shed_watermark = shed_watermark
        self.name = name
        self._injector = injector or get_injector()
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_capacity)
        self._stats = BatcherStats()
        self._stats_lock = threading.Lock()
        self._lifecycle_lock = threading.Lock()   # guards _worker
        self._worker: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._closed = threading.Event()
        if metrics is not None:
            self._m_batch_rows = metrics.histogram(
                "t3_serving_batch_rows",
                "rows coalesced per native batch call",
                buckets=_BATCH_SIZE_BUCKETS)
            metrics.gauge("t3_serving_queue_depth",
                          "requests waiting in the prediction queue",
                          function=self._queue.qsize)
            metrics.gauge("t3_serving_queue_capacity",
                          "bound of the prediction queue",
                          function=lambda: self.queue_capacity)
            self._m_rejected = metrics.counter(
                "t3_serving_rejected_total",
                "requests shed because the queue was full")
            self._m_timeouts = metrics.counter(
                "t3_serving_timeouts_total",
                "requests that exceeded their deadline")
            self._m_shed = metrics.counter(
                "t3_serving_shed_total",
                "requests shed by the watermark load-shedding policy")
            self._m_expired = metrics.counter(
                "t3_serving_deadline_expired_total",
                "queued requests shed because their deadline passed "
                "before evaluation")
            self._m_batches = metrics.counter(
                "t3_serving_batches_total", "native batch calls issued")
        else:
            self._m_batch_rows = None
            self._m_rejected = None
            self._m_timeouts = None
            self._m_shed = None
            self._m_expired = None
            self._m_batches = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "MicroBatcher":
        with self._lifecycle_lock:
            if self._started.is_set():
                return self
            self._worker = threading.Thread(
                target=self._run, name=f"t3-batcher-{self.name}", daemon=True)
            self._started.set()
            self._worker.start()
        return self

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker; queued requests get answered or *failed*.

        The worker drains the queue up to the shutdown sentinel, so
        requests enqueued before ``close()`` normally still get
        results. If the worker is wedged (or already dead) and the
        join times out, the queue is drained here and every pending
        request fails with :class:`~repro.errors.ServiceClosedError`
        — callers never block past the close timeout.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        with self._lifecycle_lock:
            worker = self._worker
        if self._started.is_set():
            try:
                self._queue.put_nowait(_SHUTDOWN)
            except queue.Full:
                pass  # the drain below fails the backlog
            if worker is not None:
                worker.join(timeout)
        self._drain_pending()

    def _drain_pending(self) -> None:
        """Fail every request still queued with a typed error."""
        drained = 0
        message = (f"batcher {self.name!r} closed before the request "
                   "was evaluated")
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            _try_set_exception(item.future, ServiceClosedError(message))
            drained += 1
        if drained:
            with self._stats_lock:
                self._stats.drained += drained

    # -- submission -------------------------------------------------------

    def submit_async(self, vectors: np.ndarray,
                     timeout: Optional[float] = None,
                     deadline: Optional[float] = None
                     ) -> "Future[np.ndarray]":
        """Enqueue a feature matrix; the future resolves to raw scores.

        ``deadline`` is an absolute :func:`time.monotonic` instant and
        wins over ``timeout`` (a relative window from now); it travels
        with the request so a queued entry whose deadline passes is
        shed (:class:`~repro.errors.DeadlineExceeded`) instead of
        evaluated late.
        """
        if self._closed.is_set():
            raise ServiceClosedError(f"batcher {self.name!r} is closed")
        if not self._started.is_set():
            self.start()
        vectors = np.ascontiguousarray(vectors, dtype=np.float64)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        future: "Future[np.ndarray]" = Future()
        if vectors.shape[0] == 0:
            future.set_result(np.empty(0, dtype=np.float64))
            return future
        if deadline is None and timeout is not None:
            deadline = time.monotonic() + timeout
        if deadline is not None and time.monotonic() >= deadline:
            # Already expired: shed before consuming queue capacity.
            self._note_expired()
            raise DeadlineExceeded(
                "request deadline expired before it could be enqueued")
        if self.shed_watermark is not None and \
                self._queue.qsize() >= self.shed_watermark:
            with self._stats_lock:
                self._stats.shed += 1
            if self._m_shed is not None:
                self._m_shed.inc()
            raise LoadShedError(
                f"prediction queue depth crossed the shed watermark "
                f"({self.shed_watermark}/{self.queue_capacity}); "
                "load shed to protect queued deadlines")
        request = _Request(vectors, future, deadline)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            with self._stats_lock:
                self._stats.rejected += 1
            if self._m_rejected is not None:
                self._m_rejected.inc()
            raise QueueFullError(
                f"prediction queue full ({self.queue_capacity} waiting); "
                "retry later or raise queue_capacity") from None
        with self._stats_lock:
            self._stats.requests += 1
        if self._closed.is_set():
            # close() can complete between the entry check and the
            # put: its drain already ran, the worker is gone, and this
            # request would sit in the queue forever. Drain again so
            # it fails typed instead of stranding its caller.
            self._drain_pending()
        return future

    def submit(self, vectors: np.ndarray,
               timeout: Optional[float] = None,
               deadline: Optional[float] = None) -> np.ndarray:
        """Blocking :meth:`submit_async`; raises the typed errors."""
        future = self.submit_async(vectors, timeout, deadline)
        if deadline is not None:
            timeout = max(0.0, deadline - time.monotonic())
        elif timeout is None:
            timeout = _DEFAULT_RESULT_WAIT_S
        try:
            return future.result(timeout)
        except FutureTimeoutError:
            future.cancel()
            with self._stats_lock:
                self._stats.timeouts += 1
            if self._m_timeouts is not None:
                self._m_timeouts.inc()
            raise RequestTimeoutError(
                f"prediction did not complete within "
                f"{(timeout or 0.0):.3f}s") from None

    def _note_expired(self) -> None:
        with self._stats_lock:
            self._stats.expired += 1
        if self._m_expired is not None:
            self._m_expired.inc()

    # -- introspection ----------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def stats(self) -> BatcherStats:
        with self._stats_lock:
            return BatcherStats(self._stats.requests, self._stats.batches,
                                self._stats.rows, self._stats.rejected,
                                self._stats.timeouts, self._stats.shed,
                                self._stats.expired, self._stats.drained)

    # -- worker -----------------------------------------------------------

    def _run(self) -> None:
        while True:
            try:
                # Bounded wait (RT001): re-check the closed flag every
                # tick so a lost shutdown sentinel cannot wedge us.
                item = self._queue.get(timeout=_IDLE_TICK_S)
            except queue.Empty:
                if self._closed.is_set():
                    return
                continue
            if item is _SHUTDOWN:
                return
            batch: List[_Request] = [item]
            rows = len(item.vectors)
            coalesce_until = time.monotonic() + self.max_wait_s
            shutdown = False
            while rows < self.max_batch_rows:
                remaining = coalesce_until - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(nxt)
                rows += len(nxt.vectors)
            self._evaluate(batch)
            if shutdown:
                return

    def _evaluate(self, batch: List[_Request]) -> None:
        now = time.monotonic()
        live: List[_Request] = []
        for request in batch:
            if request.future.cancelled():
                continue
            if request.deadline is not None and now > request.deadline:
                # Shed, never evaluated late: typed so callers can tell
                # "never ran" from "ran too long".
                self._note_expired()
                _try_set_exception(request.future, DeadlineExceeded(
                    "request deadline expired while waiting in the "
                    "batch queue; shed without evaluation"))
                continue
            live.append(request)
        if not live:
            return
        stacked = (live[0].vectors if len(live) == 1
                   else np.vstack([r.vectors for r in live]))
        try:
            self._injector.fire("batcher.evaluate")
            raw = np.asarray(self._predict_batch(stacked), dtype=np.float64)
            raw = self._injector.corrupt(
                "batcher.evaluate", raw,
                lambda values: np.full_like(values, np.nan))
        except Exception as exc:  # propagate to every waiter
            for request in live:
                _try_set_exception(request.future, exc)
            return
        with self._stats_lock:
            self._stats.batches += 1
            self._stats.rows += len(stacked)
        if self._m_batches is not None:
            self._m_batches.inc()
        if self._m_batch_rows is not None:
            self._m_batch_rows.observe(len(stacked))
        offset = 0
        for request in live:
            n = len(request.vectors)
            _try_set_result(request.future, raw[offset:offset + n])
            offset += n


def _try_set_result(future: Future, value) -> None:
    try:
        future.set_result(value)
    except Exception:  # cancelled or already resolved
        pass


def _try_set_exception(future: Future, exc: BaseException) -> None:
    try:
        future.set_exception(exc)
    except Exception:
        pass
