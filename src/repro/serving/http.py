"""Stdlib-only HTTP front end for the prediction service.

Three endpoints, mirroring the smallest deployable surface of a cost
prediction sidecar:

* ``POST /predict`` — JSON body ``{"sql": ..., "instance": ...,
  "model"?: ..., "version"?: ..., "timeout"?: ...}`` → the
  :class:`~repro.serving.service.PredictionResult` as JSON. A JSON
  *array* of such objects answers them as one micro-batch
  (``PredictionService.predict_many``) and returns an array,
* ``POST /observe`` — JSON body ``{"sql": ..., "instance": ...,
  "observed_seconds": ..., "model"?: ...}`` reports ground truth;
  feeds the model lifecycle (observation log, retrain, canary) when
  one is attached,
* ``GET /metrics`` — Prometheus text exposition,
* ``GET /healthz`` — liveness + registered models + routing/lifecycle
  state + cache stats.

Typed service errors map to meaningful status codes so clients can
distinguish overload (429/503/504, retryable) from bad requests
(400/404/413, not). Every error — including injected chaos faults and
internal bugs — is answered with a JSON envelope ``{"error": code,
"message": ...}``; a traceback never reaches the wire:

=============================================  ====
:class:`~repro.errors.LoadShedError`           429
:class:`~repro.errors.QueueFullError`          429
:class:`~repro.errors.DeadlineExceeded`        504
:class:`~repro.errors.RequestTimeoutError`     504
:class:`~repro.errors.ModelNotFoundError`      404
:class:`~repro.errors.InstanceNotFoundError`   404
:class:`~repro.errors.ServiceClosedError`      503
:class:`~repro.errors.InjectedFaultError`      503
:class:`~repro.errors.NonFinitePredictionError` 500
any other :class:`~repro.errors.ReproError`    400
anything else                                  500
=============================================  ====
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..errors import (
    DeadlineExceeded,
    InjectedFaultError,
    InstanceNotFoundError,
    LoadShedError,
    ModelNotFoundError,
    NonFinitePredictionError,
    QueueFullError,
    ReproError,
    RequestTimeoutError,
    ServiceClosedError,
)
from .service import PredictionService

__all__ = ["ServingServer", "error_response"]

_LOG = logging.getLogger(__name__)

_MAX_BODY_BYTES = 1 << 20  # 1 MiB of SQL is a client bug, not a query


def error_response(exc: Exception) -> Tuple[int, str]:
    """Map an exception to ``(http_status, machine-readable code)``."""
    if isinstance(exc, LoadShedError):
        return 429, "load_shed"
    if isinstance(exc, QueueFullError):
        return 429, "queue_full"
    if isinstance(exc, DeadlineExceeded):
        return 504, "deadline_exceeded"
    if isinstance(exc, RequestTimeoutError):
        return 504, "timeout"
    if isinstance(exc, ModelNotFoundError):
        return 404, "model_not_found"
    if isinstance(exc, InstanceNotFoundError):
        return 404, "instance_not_found"
    if isinstance(exc, ServiceClosedError):
        return 503, "service_closed"
    if isinstance(exc, InjectedFaultError):
        return 503, "injected_fault"
    if isinstance(exc, NonFinitePredictionError):
        # The degradation chain normally absorbs this; reaching HTTP
        # means every rung produced garbage — a server fault, not 4xx.
        return 500, "non_finite_prediction"
    if isinstance(exc, ReproError):
        return 400, "bad_request"
    return 500, "internal_error"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-t3/1.0"
    protocol_version = "HTTP/1.1"

    # set by ServingServer subclassing machinery
    service: PredictionService = None  # type: ignore[assignment]
    quiet: bool = True

    # -- helpers ----------------------------------------------------------

    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # The stdlib closes silently; announce it so clients do
            # not pipeline a request into a dying connection.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self._send_json(status, {"error": code, "message": message})

    def log_message(self, fmt, *args):  # noqa: N802
        if not self.quiet:
            super().log_message(fmt, *args)

    # -- endpoints --------------------------------------------------------

    def do_GET(self):  # noqa: N802
        try:
            if self.path == "/metrics":
                self._send_text(200, self.service.metrics_text())
            elif self.path == "/healthz":
                self._send_json(200, self.service.health())
            else:
                self._send_error_json(404, "not_found",
                                      f"no such endpoint: {self.path}")
        except Exception as exc:   # JSON envelope, never a traceback
            self._fail(exc)

    def do_POST(self):  # noqa: N802
        self._body_consumed = False
        try:
            if self.path == "/predict":
                self._handle_predict()
            elif self.path == "/observe":
                self._handle_observe()
            else:
                self._refuse(404, "not_found",
                             f"no such endpoint: {self.path}")
        except Exception as exc:   # JSON envelope, never a traceback
            self._fail(exc)

    def _fail(self, exc: Exception) -> None:
        # HTTP/1.1 keep-alive: if this request's body was never read,
        # its bytes are still on the socket and would be parsed as the
        # next request line. Close instead of desyncing the stream.
        if not getattr(self, "_body_consumed", True):
            self.close_connection = True
        status, code = error_response(exc)
        if status >= 500:
            _LOG.warning("request failed (%s): %s", code, exc)
        try:
            self._send_error_json(status, code, str(exc))
        except OSError:
            pass   # client hung up; nothing left to answer

    def _refuse(self, status: int, code: str, message: str) -> None:
        """Error response sent *before* reading the request body.

        The unread body bytes are still on the socket; a keep-alive
        connection would parse them as the next request line, so the
        connection must close with the response.
        """
        self.close_connection = True
        self._send_error_json(status, code, message)

    _BODY_UNREADABLE = object()

    def _read_json_body(self):
        """Read and parse the request body; the handler-level fault
        site fires first, before any parsing, as if the front end
        itself hiccuped (a 503 envelope).

        Returns the parsed JSON, or :data:`_BODY_UNREADABLE` after an
        error response has already been sent.
        """
        self.service.injector.fire("http.handler")
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        if length > _MAX_BODY_BYTES:
            self._refuse(
                413, "payload_too_large",
                f"request body is {length} bytes; "
                f"at most {_MAX_BODY_BYTES} accepted")
            return self._BODY_UNREADABLE
        if length <= 0:
            self._refuse(400, "bad_request",
                         "request body required (JSON)")
            return self._BODY_UNREADABLE
        raw_body = self.rfile.read(length)
        self._body_consumed = True
        try:
            return json.loads(raw_body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, "invalid_json", str(exc))
            return self._BODY_UNREADABLE

    def _handle_predict(self) -> None:
        request = self._read_json_body()
        if request is self._BODY_UNREADABLE:
            return
        batch = isinstance(request, list)
        items = request if batch else [request]
        for item in items:
            if not isinstance(item, dict) or \
                    not isinstance(item.get("sql"), str) or \
                    not isinstance(item.get("instance"), str):
                self._send_error_json(
                    400, "bad_request",
                    'body must be a JSON object (or array of objects) '
                    'with string "sql" and "instance" fields')
                return
        try:
            if batch:
                head = items[0] if items else {}
                results = self.service.predict_many(
                    [(item["sql"], item["instance"]) for item in items],
                    model=head.get("model"),
                    version=head.get("version"),
                    timeout=head.get("timeout"))
                self._send_json(200, [r.to_json() for r in results])
            else:
                result = self.service.predict(
                    items[0]["sql"], items[0]["instance"],
                    model=items[0].get("model"),
                    version=items[0].get("version"),
                    timeout=items[0].get("timeout"))
                self._send_json(200, result.to_json())
        except Exception as exc:
            status, code = error_response(exc)
            self._send_error_json(status, code, str(exc))

    def _handle_observe(self) -> None:
        request = self._read_json_body()
        if request is self._BODY_UNREADABLE:
            return
        if not isinstance(request, dict) or \
                not isinstance(request.get("sql"), str) or \
                not isinstance(request.get("instance"), str) or \
                not isinstance(request.get("observed_seconds"),
                               (int, float)) or \
                isinstance(request.get("observed_seconds"), bool):
            self._send_error_json(
                400, "bad_request",
                'body must be a JSON object with string "sql" and '
                '"instance" fields and a numeric "observed_seconds"')
            return
        try:
            ack = self.service.observe(
                request["sql"], request["instance"],
                request["observed_seconds"],
                model=request.get("model"))
            self._send_json(200, ack)
        except Exception as exc:
            status, code = error_response(exc)
            self._send_error_json(status, code, str(exc))


class ServingServer:
    """A threading HTTP server bound to one :class:`PredictionService`.

    ``port=0`` binds an ephemeral port; read :attr:`port` for the real
    one. :meth:`start` serves from a background thread (tests,
    embedding); :meth:`serve_forever` blocks (the CLI).
    """

    def __init__(self, service: PredictionService, host: str = "127.0.0.1",
                 port: int = 8080, quiet: bool = True):
        handler = type("BoundHandler", (_Handler,),
                       {"service": service, "quiet": quiet})
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServingServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="t3-serving-http",
                daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting requests and close the service."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.close()

    def __enter__(self) -> "ServingServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
