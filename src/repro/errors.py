"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool as _BrokenProcessPool


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """Raised for malformed schemas or references to unknown tables/columns."""


class PlanError(ReproError):
    """Raised when a logical or physical plan is structurally invalid."""


class ExpressionError(ReproError):
    """Raised when an expression references unknown columns or mixes types."""


class TrainingError(ReproError):
    """Raised when model training receives invalid data or parameters."""


class CompilationError(ReproError):
    """Raised when compiling a tree model to native code fails."""


class FeatureError(ReproError):
    """Raised when feature computation encounters an unknown operator stage."""


class CardinalityError(ReproError):
    """Raised when a cardinality model cannot evaluate a plan node."""


class WorkloadError(ReproError):
    """Raised by query generation when constraints cannot be satisfied."""


class ConfigurationError(ReproError):
    """Raised when a component receives an invalid parameter value."""


class CheckError(ReproError):
    """Raised when a static-analysis check cannot run (as opposed to a
    check that runs and reports findings)."""


class ServingError(ReproError):
    """Base class for errors raised by the online prediction service."""


class ModelNotFoundError(ServingError):
    """Raised when the model registry has no entry for a name/version."""


class QueueFullError(ServingError):
    """Raised when the prediction queue rejects a request (admission
    control): the service is overloaded and degrades by shedding load
    instead of growing an unbounded backlog."""


class LoadShedError(QueueFullError):
    """Raised when the load-shedding policy rejects a request because
    the queue depth crossed the shed watermark (the queue is not yet
    full, but accepting more work would push queued requests past
    their deadlines)."""


class RequestTimeoutError(ServingError):
    """Raised when a prediction request exceeds its per-request deadline."""


class DeadlineExceeded(RequestTimeoutError):
    """Raised when a request's deadline expired *before* evaluation:
    the request was shed from the queue instead of being evaluated
    late. Distinct from :class:`RequestTimeoutError` (the caller gave
    up waiting) so clients can tell "never ran" from "ran too long"."""


class NonFinitePredictionError(ServingError):
    """Raised when a serving backend produces NaN or infinite raw
    scores. An artifact failure, not a load decision: the degradation
    chain catches it, trips the breaker, and falls through to the next
    rung instead of answering with garbage."""


class ServiceClosedError(ServingError):
    """Raised when a request reaches a service or batcher that has
    been closed — including requests that were still queued when the
    shutdown drain ran (they fail fast instead of blocking forever)."""


class InstanceNotFoundError(ServingError, SchemaError):
    """Raised when the serving layer cannot resolve a database
    instance name (the serving analogue of an unknown model).

    Also a :class:`SchemaError`: resolving an unknown instance name is
    an unknown-schema reference, and pre-existing callers catch it as
    such; new code can be precise and map it to a 404."""


class InjectedFaultError(ReproError):
    """Raised by the fault-injection framework at an armed site.

    Never raised in production operation — only when a
    :class:`~repro.faults.FaultPlan` is installed (chaos tests,
    ``repro-t3 serve --chaos``). Components treat it like the real
    failure it simulates."""


class WorkerDeathError(_BrokenProcessPool, ReproError):
    """A simulated worker death at the ``parallel.worker`` fault site.

    Also a :class:`~concurrent.futures.process.BrokenProcessPool`: the
    executor's recovery ladder (fresh pool with backoff, then serial)
    catches that class, and an injected death must travel the exact
    path a real segfault/OOM-kill takes."""
