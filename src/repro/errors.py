"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """Raised for malformed schemas or references to unknown tables/columns."""


class PlanError(ReproError):
    """Raised when a logical or physical plan is structurally invalid."""


class ExpressionError(ReproError):
    """Raised when an expression references unknown columns or mixes types."""


class TrainingError(ReproError):
    """Raised when model training receives invalid data or parameters."""


class CompilationError(ReproError):
    """Raised when compiling a tree model to native code fails."""


class FeatureError(ReproError):
    """Raised when feature computation encounters an unknown operator stage."""


class CardinalityError(ReproError):
    """Raised when a cardinality model cannot evaluate a plan node."""


class WorkloadError(ReproError):
    """Raised by query generation when constraints cannot be satisfied."""


class ConfigurationError(ReproError):
    """Raised when a component receives an invalid parameter value."""


class CheckError(ReproError):
    """Raised when a static-analysis check cannot run (as opposed to a
    check that runs and reports findings)."""


class ServingError(ReproError):
    """Base class for errors raised by the online prediction service."""


class ModelNotFoundError(ServingError):
    """Raised when the model registry has no entry for a name/version."""


class QueueFullError(ServingError):
    """Raised when the prediction queue rejects a request (admission
    control): the service is overloaded and degrades by shedding load
    instead of growing an unbounded backlog."""


class RequestTimeoutError(ServingError):
    """Raised when a prediction request exceeds its per-request deadline."""
