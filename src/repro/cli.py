"""Command-line interface: ``repro-t3``.

Subcommands cover the library's end-to-end workflow:

* ``instances`` — list the 21-instance corpus,
* ``workload``  — generate and benchmark a workload, saved as a pickle,
* ``build-workload`` — pre-warm the experiment cache: build the full
  21-instance workload on a process pool (``--jobs`` / ``REPRO_JOBS``),
* ``train``     — train T3 on saved workloads, save the model as JSON,
* ``evaluate``  — q-error of a saved model on a saved workload,
* ``explain``   — show plan, pipelines, and feature vectors for a SQL
  query against a corpus instance,
* ``predict``   — predict the execution time of a SQL query,
* ``serve``     — run the online prediction service (HTTP),
* ``check``     — run the static-analysis suite (codegen verifier,
  feature-schema drift, plan invariants, ensemble analysis,
  concurrency checking, project lint, determinism taint, exception
  contracts, resource lifecycles, hot-path cost analysis).

Example session::

    repro-t3 workload --instances tpch_sf1,imdb -o train.pkl
    repro-t3 train -w train.pkl -o model.json
    repro-t3 predict -m model.json -i tpch_sf1 \\
        "SELECT count(*) FROM lineitem WHERE l_quantity <= 10"
    repro-t3 serve -m model.json --port 8080 &
    curl -X POST localhost:8080/predict -d \\
        '{"sql": "SELECT count(*) FROM lineitem", "instance": "tpch_sf1"}'
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .errors import ReproError
from .core.model import T3Config, T3Model
from .core.features import default_registry
from .datagen.instances import all_instance_names, get_instance
from .datagen.workload import WorkloadConfig
from .engine.cardinality import ExactCardinalityModel
from .engine.explain import explain, explain_pipelines
from .engine.optimizer import Optimizer
from .engine.pipelines import decompose_into_pipelines
from .engine.sqlparser import parse_sql
from .treecomp.codegen import DEFAULT_STRATEGY, STRATEGIES
from .trees.boosting import BoostingParams


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-t3",
        description="T3 performance prediction (SIGMOD'25 reproduction)")
    subcommands = parser.add_subparsers(dest="command", required=True)

    subcommands.add_parser("instances",
                           help="list the corpus database instances")

    workload = subcommands.add_parser(
        "workload", help="generate and benchmark a workload")
    workload.add_argument("--instances", required=True,
                          help="comma-separated instance names")
    workload.add_argument("--queries-per-structure", type=int, default=6)
    workload.add_argument("--no-fixed-benchmarks", action="store_true")
    workload.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default: REPRO_JOBS env "
                               "or all cores; 1 = serial)")
    workload.add_argument("-o", "--output", required=True)

    build_workload = subcommands.add_parser(
        "build-workload",
        help="pre-warm the experiment cache: build the full corpus "
             "workload on a process pool")
    build_workload.add_argument("--scale", default="default",
                                choices=("smoke", "default", "paper"),
                                help="experiment scale (queries per "
                                     "structure: 2 / 6 / 40)")
    build_workload.add_argument("--jobs", type=int, default=None,
                                help="worker processes (default: REPRO_JOBS "
                                     "env or all cores; 1 = serial)")
    build_workload.add_argument("--seed", type=int, default=None,
                                help="experiment seed (default: the "
                                     "library-wide DEFAULT_SEED)")
    build_workload.add_argument("--force", action="store_true",
                                help="rebuild even when already cached")

    train = subcommands.add_parser("train", help="train a T3 model")
    train.add_argument("-w", "--workload", required=True, nargs="+",
                       help="workload pickle(s) from the workload command")
    train.add_argument("-o", "--output", required=True)
    train.add_argument("--rounds", type=int, default=200)
    train.add_argument("--objective", default="mape",
                       choices=("mape", "l2", "l1"))
    train.add_argument("--no-compile", action="store_true")
    train.add_argument("--codegen", default=DEFAULT_STRATEGY,
                       choices=sorted(STRATEGIES),
                       help="codegen strategy for the compiled backend, "
                            "persisted with the model (default: "
                            f"{DEFAULT_STRATEGY})")

    evaluate = subcommands.add_parser(
        "evaluate", help="q-error of a model on a workload")
    evaluate.add_argument("-m", "--model", required=True)
    evaluate.add_argument("-w", "--workload", required=True, nargs="+")

    explain_cmd = subcommands.add_parser(
        "explain", help="plan / pipelines / features of a SQL query")
    explain_cmd.add_argument("-i", "--instance", required=True)
    explain_cmd.add_argument("sql")
    explain_cmd.add_argument("--features", action="store_true",
                             help="also print per-pipeline feature vectors")

    predict = subcommands.add_parser(
        "predict", help="predict the execution time of a SQL query")
    predict.add_argument("-m", "--model", required=True)
    predict.add_argument("-i", "--instance", required=True)
    predict.add_argument("sql")

    serve = subcommands.add_parser(
        "serve", help="run the online prediction service over HTTP")
    serve.add_argument("-m", "--model", required=True, nargs="+",
                       help="model JSON path(s); prefix with NAME= to "
                            "register under a name (default: 'default')")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port; 0 binds an ephemeral port")
    serve.add_argument("--port-file",
                       help="write the bound port to this file once "
                            "listening (for scripts and smoke tests)")
    serve.add_argument("--batch-rows", type=int, default=256,
                       help="max feature rows coalesced per native call")
    serve.add_argument("--batch-wait-ms", type=float, default=2.0,
                       help="micro-batch coalescing window")
    serve.add_argument("--queue-size", type=int, default=512,
                       help="admission-control bound on queued requests")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="plan/feature cache entries")
    serve.add_argument("--timeout", type=float, default=5.0,
                       help="default per-request deadline in seconds")
    serve.add_argument("--no-compile", action="store_true",
                       help="force the interpreted backend")
    serve.add_argument("--codegen", default=None,
                       choices=sorted(STRATEGIES),
                       help="override the codegen strategy persisted in "
                            "the loaded model(s) (default: honour each "
                            "artifact's own)")
    serve.add_argument("--chaos", metavar="PLAN",
                       help="deterministic fault plan: ';'-separated "
                            "site:action[:probability[:max_fires]] specs, "
                            "e.g. 'batcher.evaluate:raise:0.5;"
                            "cache.read:corrupt' (default: REPRO_FAULTS "
                            "env; sites: registry.compile, "
                            "batcher.evaluate, cache.read, "
                            "parallel.worker, http.handler, "
                            "lifecycle.log_append)")
    serve.add_argument("--chaos-seed", type=int, default=None,
                       help="seed for fault arming and breaker jitter "
                            "(default: REPRO_FAULTS_SEED env or the "
                            "repo seed); same plan + seed + request "
                            "sequence replays the same faults")
    serve.add_argument("--lifecycle", metavar="DIR",
                       help="enable the online model lifecycle: append "
                            "POST /observe ground truth to a crash-safe "
                            "observation log under DIR, retrain in the "
                            "background, shadow-evaluate, canary, and "
                            "promote or roll back automatically")
    serve.add_argument("--retrain-after", type=int, default=128,
                       help="observations between retrain attempts")
    serve.add_argument("--retrain-rounds", type=int, default=40,
                       help="boosting rounds for retrained candidates")
    serve.add_argument("--canary-fraction", type=float, default=0.2,
                       help="traffic fraction routed to a canary")
    serve.add_argument("--shadow-samples", type=int, default=48,
                       help="paired observations a shadow candidate "
                            "must score before judgement")
    serve.add_argument("--canary-samples", type=int, default=48,
                       help="paired observations a canary must survive "
                            "before promotion")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    check = subcommands.add_parser(
        "check", help="run the static-analysis suite over the repo")
    check.add_argument("--rule", action="append", dest="rules", default=[],
                       metavar="RULE",
                       help="run only this rule id (LK001) or analyzer "
                            "prefix (LK); repeatable")
    check.add_argument("--only", action="append", dest="only", default=[],
                       metavar="ANALYZER",
                       help="run only this analyzer, by name (determinism) "
                            "or rule prefix (DT); repeatable")
    check.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run up to N analyzers concurrently "
                            "(default: 1, serial)")
    check.add_argument("--format", default="text",
                       choices=("text", "json", "sarif"),
                       dest="fmt", help="findings output format")
    check.add_argument("--baseline", default=None,
                       help="suppression TOML (default: checks_baseline.toml "
                            "next to the current directory if present)")
    check.add_argument("--no-baseline", action="store_true",
                       help="ignore any baseline file")
    check.add_argument("--model", default=None,
                       help="saved model JSON to cross-check against the "
                            "generated C and the live feature schema")
    check.add_argument("--check-unused-features", action="store_true",
                       help="with --model: also warn (EA006) about schema "
                            "features no tree ever splits on")
    check.add_argument("--write-baseline", metavar="PATH",
                       help="write current findings as a suppression "
                            "baseline to PATH and exit 0")
    check.add_argument("--update-baseline", action="store_true",
                       help="rewrite the baseline in place: keep entries "
                            "that still match (and their reasons), add "
                            "stub entries for new findings, drop stale "
                            "ones; exit 0")
    check.add_argument("--list-rules", action="store_true",
                       help="print every rule id and exit")
    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


def _cmd_instances() -> int:
    print(f"{'name':16s} {'family':12s} {'tables':>6s} {'rows':>16s}")
    for name in all_instance_names():
        instance = get_instance(name)
        print(f"{name:16s} {instance.family:12s} "
              f"{len(instance.schema.tables):6d} "
              f"{instance.catalog.total_rows():16,}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from .parallel import build_corpus_workload_parallel, resolve_jobs

    names = [n.strip() for n in args.instances.split(",") if n.strip()]
    for name in names:
        get_instance(name)  # fail on unknown names before building
    config = WorkloadConfig(
        queries_per_structure=args.queries_per_structure,
        include_fixed_benchmarks=not args.no_fixed_benchmarks)
    jobs = resolve_jobs(args.jobs)
    queries = build_corpus_workload_parallel(names, config, jobs=jobs)
    for name in names:
        count = sum(1 for q in queries if q.instance_name == name)
        print(f"{name}: {count} queries", file=sys.stderr)
    with open(args.output, "wb") as handle:
        pickle.dump(queries, handle, protocol=pickle.HIGHEST_PROTOCOL)
    print(f"wrote {len(queries)} benchmarked queries to {args.output} "
          f"(jobs={jobs})")
    return 0


def _cmd_build_workload(args: argparse.Namespace) -> int:
    import time

    from .experiments.context import ExperimentContext, ExperimentScale
    from .datagen.workload import workload_statistics
    from .parallel import resolve_jobs
    from .rng import DEFAULT_SEED

    scale = {
        "smoke": ExperimentScale.smoke,
        "default": ExperimentScale.default,
        "paper": ExperimentScale.paper,
    }[args.scale]()
    seed = DEFAULT_SEED if args.seed is None else args.seed
    jobs = resolve_jobs(args.jobs)
    context = ExperimentContext(scale, seed=seed, jobs=jobs)
    if args.force:
        context.cache.invalidate(context.workload_cache_key())
    start = time.perf_counter()
    queries = context.workload()
    elapsed = time.perf_counter() - start
    stats = workload_statistics(queries)
    print(f"workload[{args.scale}]: {len(queries)} queries "
          f"({stats['mean_pipelines']:.1f} pipelines/query mean) "
          f"in {elapsed:.1f}s with jobs={jobs}", file=sys.stderr)
    print(f"cached under {context.cache.directory} "
          f"(key fingerprint {context.cache_fingerprint()})")
    return 0


def _load_workloads(paths: Sequence[str]) -> list:
    queries = []
    for path in paths:
        if not Path(path).exists():
            raise ReproError(f"workload file not found: {path}")
        with open(path, "rb") as handle:
            queries.extend(pickle.load(handle))
    if not queries:
        raise ReproError("loaded workloads contain no queries")
    return queries


def _cmd_train(args: argparse.Namespace) -> int:
    queries = _load_workloads(args.workload)
    config = T3Config(
        boosting=BoostingParams(n_rounds=args.rounds,
                                objective=args.objective,
                                validation_fraction=0.2),
        compile_to_native=not args.no_compile,
        codegen_strategy=args.codegen)
    print(f"training on {len(queries)} queries "
          f"({args.rounds} rounds, {args.objective}) ...", file=sys.stderr)
    model = T3Model.train(queries, config)
    model.save(args.output)
    summary = model.evaluate(queries)
    print(f"saved model to {args.output}; training q-error "
          f"p50={summary.p50:.2f} p90={summary.p90:.2f} "
          f"avg={summary.mean:.2f}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    model = T3Model.load(args.model)
    queries = _load_workloads(args.workload)
    summary = model.evaluate(queries)
    print(f"{len(queries)} queries: q-error p50={summary.p50:.2f} "
          f"p90={summary.p90:.2f} avg={summary.mean:.2f}")
    return 0


def _physical_plan(instance_name: str, sql: str):
    instance = get_instance(instance_name)
    logical = parse_sql(sql, instance.schema, instance.catalog)
    optimizer = Optimizer(instance.schema, instance.catalog)
    return instance, optimizer.optimize(logical, "cli_query")


def _cmd_explain(args: argparse.Namespace) -> int:
    instance, plan = _physical_plan(args.instance, args.sql)
    exact = ExactCardinalityModel(instance.catalog)
    print(explain(plan, exact))
    print()
    print(explain_pipelines(plan, exact))
    if args.features:
        registry = default_registry()
        for pipeline in decompose_into_pipelines(plan):
            print(f"\nPipeline {pipeline.index} features:")
            vector = registry.vector_for_pipeline(pipeline, exact)
            print(registry.describe_vector(vector))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    model = T3Model.load(args.model)
    instance, plan = _physical_plan(args.instance, args.sql)
    exact = ExactCardinalityModel(instance.catalog)
    pipeline_times = model.predict_pipeline_times(plan, exact)
    for index, seconds in enumerate(pipeline_times):
        print(f"pipeline {index}: {seconds * 1e3:10.3f} ms")
    print(f"predicted query time: {pipeline_times.sum() * 1e3:.3f} ms")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import (
        ModelRegistry,
        PredictionService,
        ServingConfig,
        ServingServer,
    )

    from .faults import FaultPlan, install_plan
    from .rng import DEFAULT_SEED

    chaos = args.chaos or os.environ.get("REPRO_FAULTS") or None
    seed = args.chaos_seed
    if seed is None:
        seed = int(os.environ.get("REPRO_FAULTS_SEED", DEFAULT_SEED))
    if chaos:
        # Installed before model loading so registry.compile can fire
        # during warmup, not just on the request path.
        plan = install_plan(FaultPlan.parse(chaos, seed=seed)).plan
        print(f"chaos plan armed (seed {seed}): "
              f"{'; '.join(plan.describe())}", file=sys.stderr)

    registry = ModelRegistry(compile_native=not args.no_compile,
                             codegen=args.codegen)
    for spec in args.model:
        name, _, path = spec.rpartition("=")
        if not Path(path).exists():
            raise ReproError(f"model file not found: {path}")
        entry = registry.load(path, name=name or None)
        note = f" ({entry.fallback_reason})" if entry.fallback_reason else ""
        print(f"loaded {entry.key} from {path} "
              f"[{entry.backend}{note}]", file=sys.stderr)
    config = ServingConfig(
        max_batch_rows=args.batch_rows,
        batch_wait_s=args.batch_wait_ms / 1000.0,
        queue_capacity=args.queue_size,
        plan_cache_size=args.cache_size,
        default_timeout_s=args.timeout,
        compile_native=not args.no_compile,
        codegen=args.codegen,
        fault_seed=seed)
    service = PredictionService(registry, config)
    manager = None
    if args.lifecycle:
        from .lifecycle import (
            LifecycleConfig,
            LifecycleManager,
            ObservationLog,
            RetrainConfig,
        )

        log = ObservationLog(args.lifecycle)
        manager = LifecycleManager(service, log, LifecycleConfig(
            retrain_after=args.retrain_after,
            shadow_samples=args.shadow_samples,
            canary_samples=args.canary_samples,
            canary_fraction=args.canary_fraction,
            retrain=RetrainConfig(rounds=args.retrain_rounds),
            background=True,
            seed=seed))
        print(f"lifecycle armed: observation log at {args.lifecycle} "
              f"({log.stats()['records']} records recovered), "
              f"active {manager.active_entry.key}", file=sys.stderr)
    server = ServingServer(service, host=args.host, port=args.port,
                           quiet=not args.verbose)
    if args.port_file:
        Path(args.port_file).write_text(f"{server.port}\n")
    print(f"serving on {server.url}  "
          "(POST /predict, POST /observe, GET /metrics, GET /healthz; "
          "Ctrl-C to stop)",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown()
        if manager is not None:
            manager.join()
            manager.log.close()
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .checks import RULES, run_checks
    from .checks.driver import DEFAULT_BASELINE_NAME
    from .checks.findings import update_baseline, write_baseline

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return 0
    regenerating = bool(args.write_baseline or args.update_baseline)
    baseline = None
    if not args.no_baseline and not regenerating:
        if args.baseline:
            if not Path(args.baseline).exists():
                raise ReproError(f"baseline file not found: {args.baseline}")
            baseline = args.baseline
        elif Path(DEFAULT_BASELINE_NAME).exists():
            baseline = DEFAULT_BASELINE_NAME
    report = run_checks(rules=args.rules or None, baseline=baseline,
                        model_path=args.model,
                        check_unused_features=args.check_unused_features,
                        only=args.only or None, jobs=args.jobs)
    if args.write_baseline:
        write_baseline(report.findings, args.write_baseline)
        print(f"wrote {len(report.findings)} suppression(s) "
              f"to {args.write_baseline}")
        return 0
    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE_NAME
        kept, added, dropped = update_baseline(report.findings, target)
        print(f"updated {target}: kept {kept}, added {added} "
              f"(with reason stubs), dropped {dropped}")
        return 0
    print(report.render(args.fmt))
    if args.fmt == "sarif":
        # SARIF is machine-consumed; route the human warnings around it.
        for warning in report.stale_warnings():
            print(warning, file=sys.stderr)
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "instances":
            return _cmd_instances()
        if args.command == "workload":
            return _cmd_workload(args)
        if args.command == "build-workload":
            return _cmd_build_workload(args)
        if args.command == "train":
            return _cmd_train(args)
        if args.command == "evaluate":
            return _cmd_evaluate(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "predict":
            return _cmd_predict(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "check":
            return _cmd_check(args)
        raise ReproError(f"unknown command {args.command!r}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
