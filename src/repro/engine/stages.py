"""Operator stages — the unit T3's features are attached to.

Section 3 of the paper distinguishes four stages (Figure 4):

* **Build** — tuples enter and are materialized (hash-table build,
  aggregation, sort input, ...). Always a pipeline breaker.
* **Probe** — tuples from the second (right) input probe materialized
  state and continue.
* **Scan** — the operator produces tuples (table scan, or scanning
  previously materialized state). Always a pipeline source.
* **Pass-through** — tuples enter and leave (filter, map, ...).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Tuple

from ..errors import PlanError


class Stage(Enum):
    BUILD = "Build"
    PROBE = "Probe"
    SCAN = "Scan"
    PASS_THROUGH = "PassThrough"


class OperatorType(Enum):
    """The 19 physical operators of the engine."""

    TABLE_SCAN = "TableScan"
    FILTER = "Filter"
    MAP = "Map"
    HASH_JOIN = "HashJoin"
    SEMI_JOIN = "SemiJoin"
    ANTI_JOIN = "AntiJoin"
    INDEX_NL_JOIN = "IndexNLJoin"
    BNL_JOIN = "BNLJoin"
    CROSS_PRODUCT = "CrossProduct"
    GROUP_BY = "GroupBy"
    SIMPLE_AGG = "SimpleAgg"
    SORT = "Sort"
    TOP_K = "TopK"
    LIMIT = "Limit"
    WINDOW = "Window"
    DISTINCT = "Distinct"
    MATERIALIZE = "Materialize"
    UNION = "Union"
    ASSERT_SINGLE = "AssertSingle"


#: Stage structure of every operator. Binary operators list BUILD before
#: PROBE; materializing unary operators list BUILD before SCAN.
OPERATOR_STAGES: Dict[OperatorType, Tuple[Stage, ...]] = {
    OperatorType.TABLE_SCAN: (Stage.SCAN,),
    OperatorType.FILTER: (Stage.PASS_THROUGH,),
    OperatorType.MAP: (Stage.PASS_THROUGH,),
    OperatorType.HASH_JOIN: (Stage.BUILD, Stage.PROBE),
    OperatorType.SEMI_JOIN: (Stage.BUILD, Stage.PROBE),
    OperatorType.ANTI_JOIN: (Stage.BUILD, Stage.PROBE),
    OperatorType.INDEX_NL_JOIN: (Stage.PASS_THROUGH,),
    OperatorType.BNL_JOIN: (Stage.BUILD, Stage.PROBE),
    OperatorType.CROSS_PRODUCT: (Stage.BUILD, Stage.PROBE),
    OperatorType.GROUP_BY: (Stage.BUILD, Stage.SCAN),
    OperatorType.SIMPLE_AGG: (Stage.BUILD, Stage.SCAN),
    OperatorType.SORT: (Stage.BUILD, Stage.SCAN),
    OperatorType.TOP_K: (Stage.BUILD, Stage.SCAN),
    OperatorType.LIMIT: (Stage.PASS_THROUGH,),
    OperatorType.WINDOW: (Stage.BUILD, Stage.SCAN),
    OperatorType.DISTINCT: (Stage.BUILD, Stage.SCAN),
    OperatorType.MATERIALIZE: (Stage.BUILD, Stage.SCAN),
    OperatorType.UNION: (Stage.BUILD, Stage.SCAN),
    OperatorType.ASSERT_SINGLE: (Stage.PASS_THROUGH,),
}

#: Operators with two input pipelines (left builds, right probes).
#: IndexNLJoin is *not* here: it probes a base-table index directly and
#: has a single input pipeline (pass-through stage).
BINARY_OPERATORS = frozenset({
    OperatorType.HASH_JOIN, OperatorType.SEMI_JOIN, OperatorType.ANTI_JOIN,
    OperatorType.BNL_JOIN, OperatorType.CROSS_PRODUCT, OperatorType.UNION,
})

#: Unary operators that fully materialize their input (pipeline breakers
#: that start a fresh pipeline with their SCAN stage).
MATERIALIZING_OPERATORS = frozenset({
    OperatorType.GROUP_BY, OperatorType.SIMPLE_AGG, OperatorType.SORT,
    OperatorType.TOP_K, OperatorType.WINDOW, OperatorType.DISTINCT,
    OperatorType.MATERIALIZE,
})


def operator_stages(op_type: OperatorType) -> Tuple[Stage, ...]:
    try:
        return OPERATOR_STAGES[op_type]
    except KeyError:
        raise PlanError(f"unknown operator type {op_type!r}") from None


def all_operator_stage_pairs() -> List[Tuple[OperatorType, Stage]]:
    """Every (operator, stage) combination, in stable definition order."""
    pairs: List[Tuple[OperatorType, Stage]] = []
    for op_type in OperatorType:
        for stage in OPERATOR_STAGES[op_type]:
            pairs.append((op_type, stage))
    return pairs
