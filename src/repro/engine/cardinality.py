"""Cardinality models: exact, estimated, and artificially distorted.

The paper deliberately decouples performance prediction from cardinality
estimation (Section 2.1): T3 is trained and evaluated with *exact*
cardinalities, and separately stress-tested with estimated (Figure 11)
and increasingly distorted (Figure 12) ones. All three providers share
one interface so plans can be featurized under any of them.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple


from ..errors import CardinalityError
from ..rng import derive_rng
from .catalog import Catalog
from .physical import (
    PAntiJoin,
    PAssertSingle,
    PCrossProduct,
    PDistinct,
    PFilter,
    PGroupBy,
    PIndexNLJoin,
    PLimit,
    PMap,
    PMaterialize,
    PSemiJoin,
    PSimpleAgg,
    PSort,
    PTableScan,
    PTopK,
    PUnion,
    PWindow,
    PhysicalOperator,
    _JoinBase,
)


def cardenas(n_distinct: float, n_rows: float) -> float:
    """Expected number of distinct values among ``n_rows`` draws.

    Cardenas' formula ``d * (1 - (1 - 1/d)^n)``, evaluated stably.
    """
    if n_distinct <= 0 or n_rows <= 0:
        return 0.0
    if n_distinct <= 1:
        return 1.0
    return n_distinct * (1.0 - math.exp(n_rows * math.log1p(-1.0 / n_distinct)))


class CardinalityModel:
    """Provides output cardinalities for physical operators (memoized)."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        # id(op) -> (op, cardinality). The operator is stored alongside
        # its value to pin it alive: without the strong reference, a
        # discarded candidate operator's id can be recycled by a later
        # allocation and the memo would serve the dead operator's
        # cardinality for the new one — a stale hit whose occurrence
        # depends on allocation history, i.e. non-deterministic plans.
        self._memo: Dict[int, Tuple[PhysicalOperator, float]] = {}

    # -- public API -----------------------------------------------------

    def output_cardinality(self, op: PhysicalOperator) -> float:
        key = id(op)
        hit = self._memo.get(key)
        if hit is None:
            value = max(0.0, self._compute(op))
            self._memo[key] = (op, value)
            return value
        return hit[1]

    def base_cardinality(self, op: PTableScan) -> float:
        """Rows scanned before any predicate — exact in every model."""
        return float(self.catalog.row_count(op.table))

    def predicate_selectivity(self, predicate) -> float:
        """Selectivity of one predicate under this model (public hook for
        feature extraction, which needs per-predicate evaluated
        fractions)."""
        return min(1.0, max(0.0, self._predicate_selectivity(predicate)))

    def reset(self) -> None:
        self._memo.clear()

    # -- hooks the concrete models implement ------------------------------

    def _predicate_selectivity(self, predicate) -> float:
        raise NotImplementedError

    def _conjunction_correlation(self, correlation_factor: float) -> float:
        raise NotImplementedError

    def _column_distinct(self, table: str, column: str) -> float:
        raise NotImplementedError

    def _join_fanout(self, fanout: float) -> float:
        raise NotImplementedError

    # -- shared plan walk ---------------------------------------------------

    def _conjunction_selectivity(self, predicates, correlation_factor: float) -> float:
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self._predicate_selectivity(predicate)
        if predicates:
            selectivity *= self._conjunction_correlation(correlation_factor)
        return min(1.0, max(0.0, selectivity))

    def _effective_distinct(self, table: str, column: str, side_card: float) -> float:
        if not self.catalog.has_column_stats(table, column):
            # Computed columns (aggregate results, window functions) have
            # no catalog statistics; assume sqrt(n) distinct values.
            return max(1.0, side_card ** 0.5)
        base = self._column_distinct(table, column)
        return max(1.0, min(base, side_card))

    def _join_selectivity(self, op: _JoinBase, build_card: float,
                          probe_card: float) -> float:
        nd_build = self._effective_distinct(*op.build_column, build_card)
        nd_probe = self._effective_distinct(*op.probe_column, probe_card)
        return self._join_fanout(op.fanout) / max(nd_build, nd_probe)

    def _group_count(self, op: PhysicalOperator, group_columns,
                     input_card: float) -> float:
        product = 1.0
        for table, column in group_columns:
            distinct = self._effective_distinct(table, column, input_card)
            distinct *= self._domain_restriction(op, table, column)
            product *= max(1.0, distinct)
            product = min(product, 1e18)
        return max(1.0, min(cardenas(product, input_card), input_card))

    def _domain_restriction(self, op: PhysicalOperator, table: str,
                            column: str) -> float:
        """Fraction of a column's domain surviving predicates below ``op``.

        Grouping on a filtered column produces at most the qualifying
        distinct values; estimators typically miss this, the exact model
        must not.
        """
        fraction = 1.0
        for node in op.walk():
            predicates = getattr(node, "predicates", None)
            if not predicates:
                continue
            for predicate in predicates:
                if predicate.table == table and predicate.column == column:
                    fraction *= self._distinct_fraction(predicate)
        return min(1.0, max(0.0, fraction))

    def _distinct_fraction(self, predicate) -> float:
        raise NotImplementedError

    def _compute(self, op: PhysicalOperator) -> float:
        if isinstance(op, PTableScan):
            selectivity = self._conjunction_selectivity(
                op.predicates, op.correlation_factor)
            return self.base_cardinality(op) * selectivity
        if isinstance(op, PFilter):
            child = self.output_cardinality(op.children[0])
            return child * self._conjunction_selectivity(
                op.predicates, op.correlation_factor)
        if isinstance(op, (PMap, PSort, PWindow, PMaterialize, PAssertSingle)):
            return self.output_cardinality(op.children[0])
        if isinstance(op, _JoinBase):
            build = self.output_cardinality(op.build_child)
            probe = self.output_cardinality(op.probe_child)
            selectivity = self._join_selectivity(op, build, probe)
            if isinstance(op, PSemiJoin):
                return probe * min(1.0, build * selectivity)
            if isinstance(op, PAntiJoin):
                return probe * max(0.0, 1.0 - min(1.0, build * selectivity))
            return build * probe * selectivity
        if isinstance(op, PCrossProduct):
            return (self.output_cardinality(op.build_child)
                    * self.output_cardinality(op.probe_child))
        if isinstance(op, PIndexNLJoin):
            outer = self.output_cardinality(op.children[0])
            inner = float(op.inner_rows_hint)
            nd_outer = self._effective_distinct(*op.outer_column, outer)
            nd_inner = self._effective_distinct(*op.inner_column, inner)
            selectivity = self._join_fanout(op.fanout) / max(nd_outer, nd_inner)
            return outer * inner * selectivity
        if isinstance(op, PGroupBy):
            child = self.output_cardinality(op.children[0])
            return self._group_count(op, op.group_columns, child)
        if isinstance(op, PDistinct):
            child = self.output_cardinality(op.children[0])
            return self._group_count(op, op.columns, child)
        if isinstance(op, PSimpleAgg):
            return 1.0
        if isinstance(op, PTopK):
            return min(self.output_cardinality(op.children[0]), float(op.k))
        if isinstance(op, PLimit):
            return min(self.output_cardinality(op.children[0]), float(op.k))
        if isinstance(op, PUnion):
            return (self.output_cardinality(op.children[0])
                    + self.output_cardinality(op.children[1]))
        raise CardinalityError(f"no cardinality rule for {type(op).__name__}")


class ExactCardinalityModel(CardinalityModel):
    """Ground-truth cardinalities from the generative data model.

    Uses true predicate selectivities (via column distributions), true
    predicate-correlation factors, true distinct counts, and true join
    fanouts — what ``explain analyze`` would report.
    """

    def _predicate_selectivity(self, predicate) -> float:
        return predicate.true_selectivity(self.catalog)

    def _conjunction_correlation(self, correlation_factor: float) -> float:
        return correlation_factor

    def _column_distinct(self, table: str, column: str) -> float:
        return float(self.catalog.column_stats(table, column).true_distinct)

    def _join_fanout(self, fanout: float) -> float:
        return fanout

    def _distinct_fraction(self, predicate) -> float:
        return predicate.true_distinct_fraction(self.catalog)


class EstimatedCardinalityModel(CardinalityModel):
    """Textbook optimizer estimates: uniformity, independence, default guesses."""

    def _predicate_selectivity(self, predicate) -> float:
        return predicate.estimated_selectivity(self.catalog)

    def _conjunction_correlation(self, correlation_factor: float) -> float:
        return 1.0  # independence assumption

    def _column_distinct(self, table: str, column: str) -> float:
        return float(self.catalog.column_stats(table, column).estimated_distinct)

    def _join_fanout(self, fanout: float) -> float:
        return 1.0  # estimators do not know true fanouts

    def _distinct_fraction(self, predicate) -> float:
        # Estimators approximate domain restriction with row selectivity.
        return predicate.estimated_selectivity(self.catalog)


class DistortedCardinalityModel(CardinalityModel):
    """Wraps a base model and distorts intermediate-result cardinalities.

    Every non-base cardinality is multiplied by a deterministic factor
    drawn log-uniformly from ``[1/distortion, distortion]`` (Figure 12's
    protocol: "manually modified the cardinalities by increasing
    factors"). Base-table row counts stay exact — real systems know them.
    """

    def __init__(self, base: CardinalityModel, distortion: float, seed: int = 0):
        if distortion < 1.0:
            raise CardinalityError("distortion factor must be >= 1")
        super().__init__(base.catalog)
        self.base = base
        self.distortion = float(distortion)
        self.seed = seed

    def predicate_selectivity(self, predicate) -> float:
        return self.base.predicate_selectivity(predicate)

    def _factor(self, op: PhysicalOperator) -> float:
        if self.distortion == 1.0:
            return 1.0
        rng = derive_rng(self.seed, "distort", op.node_id)
        exponent = rng.uniform(-1.0, 1.0)
        return float(self.distortion ** exponent)

    def _compute(self, op: PhysicalOperator) -> float:
        true_value = self.base.output_cardinality(op)
        if isinstance(op, PTableScan) and not op.predicates:
            return true_value
        if isinstance(op, (PSimpleAgg, PLimit, PTopK)):
            return true_value  # structurally bounded, not estimated
        return true_value * self._factor(op)

    # Unused hooks (we override _compute wholesale).
    def _predicate_selectivity(self, predicate) -> float:  # pragma: no cover
        raise NotImplementedError

    def _conjunction_correlation(self, f: float) -> float:  # pragma: no cover
        raise NotImplementedError

    def _column_distinct(self, t: str, c: str) -> float:  # pragma: no cover
        raise NotImplementedError

    def _join_fanout(self, fanout: float) -> float:  # pragma: no cover
        raise NotImplementedError
