"""Value distributions of columns — the generative truth of an instance.

Every column of a database instance is described by a distribution
object. These objects serve two roles:

* the *data generator* samples actual numpy arrays from them for the
  small-scale real executor, and
* the *exact cardinality model* evaluates predicate selectivities
  analytically against them (what `explain analyze` on real data would
  report, up to sampling noise).

The optimizer's *estimated* cardinalities deliberately do not see these
objects — they only see coarse catalog statistics (min/max/approximate
distinct counts) and assume uniformity, which is what creates realistic
estimation errors.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import SchemaError


class Distribution:
    """Interface for column value distributions over a numeric domain.

    String columns are dictionary-encoded: their distribution ranges over
    integer codes, and LIKE-style predicates are modeled as random subsets
    of codes.
    """

    #: Smallest representable value.
    min_value: float
    #: Largest representable value.
    max_value: float
    #: Number of distinct values.
    n_distinct: int

    def selectivity_le(self, value: float) -> float:
        """True fraction of rows with ``column <= value``."""
        raise NotImplementedError

    def selectivity_eq(self, value: float) -> float:
        """True fraction of rows with ``column = value``."""
        raise NotImplementedError

    def quantile(self, p: float) -> float:
        """Value ``v`` such that ``selectivity_le(v)`` is approximately ``p``."""
        raise NotImplementedError

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` concrete values (int64) for the real executor."""
        raise NotImplementedError

    def selectivity_between(self, low: float, high: float) -> float:
        """True fraction of rows with ``low <= column <= high``."""
        if high < low:
            return 0.0
        below_low = self.selectivity_le(low) - self.selectivity_eq(low)
        return max(0.0, self.selectivity_le(high) - below_low)

    def selectivity_in(self, values: Sequence[float]) -> float:
        """True fraction of rows with ``column IN (values)``."""
        return min(1.0, sum(self.selectivity_eq(v) for v in set(values)))


class UniformInt(Distribution):
    """Integers uniform on ``[min_value, max_value]``.

    The optimizer's uniformity assumption is *correct* for these columns,
    so predicates on them are estimated well — the query corpus mixes
    uniform and skewed columns to get a realistic error spectrum.
    """

    def __init__(self, min_value: int, max_value: int):
        if max_value < min_value:
            raise SchemaError("max_value must be >= min_value")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.n_distinct = int(max_value - min_value + 1)

    def selectivity_le(self, value: float) -> float:
        if value < self.min_value:
            return 0.0
        if value >= self.max_value:
            return 1.0
        return (math.floor(value) - self.min_value + 1) / self.n_distinct

    def selectivity_eq(self, value: float) -> float:
        if self.min_value <= value <= self.max_value and float(value).is_integer():
            return 1.0 / self.n_distinct
        return 0.0

    def quantile(self, p: float) -> float:
        p = min(max(p, 0.0), 1.0)
        return float(self.min_value + round(p * (self.n_distinct - 1)))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(int(self.min_value), int(self.max_value) + 1,
                            size=n, dtype=np.int64)


class ZipfInt(Distribution):
    """Skewed integers: value ``k`` (0-based rank) has weight ``1/(k+1)^s``.

    Values are ``min_value + rank``. The optimizer assumes uniformity,
    so selections and joins on these columns are *systematically*
    misestimated — the mechanism behind Figure 11's error growth.
    """

    def __init__(self, min_value: int, n_distinct: int, skew: float = 1.0):
        if n_distinct < 1:
            raise SchemaError("n_distinct must be >= 1")
        if skew < 0:
            raise SchemaError("skew must be non-negative")
        self.min_value = float(min_value)
        self.max_value = float(min_value + n_distinct - 1)
        self.n_distinct = int(n_distinct)
        self.skew = float(skew)
        ranks = np.arange(1, n_distinct + 1, dtype=np.float64)
        weights = ranks ** (-skew)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)

    def selectivity_le(self, value: float) -> float:
        rank = math.floor(value - self.min_value)
        if rank < 0:
            return 0.0
        if rank >= self.n_distinct - 1:
            return 1.0
        return float(self._cdf[rank])

    def selectivity_eq(self, value: float) -> float:
        rank = value - self.min_value
        if not float(rank).is_integer():
            return 0.0
        rank = int(rank)
        if 0 <= rank < self.n_distinct:
            return float(self._pmf[rank])
        return 0.0

    def quantile(self, p: float) -> float:
        p = min(max(p, 0.0), 1.0)
        rank = int(np.searchsorted(self._cdf, p))
        return float(self.min_value + min(rank, self.n_distinct - 1))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        ranks = rng.choice(self.n_distinct, size=n, p=self._pmf)
        return (ranks + int(self.min_value)).astype(np.int64)


class CategoricalCodes(Distribution):
    """Dictionary-encoded string column with explicit code frequencies."""

    def __init__(self, frequencies: Sequence[float]):
        freq = np.asarray(frequencies, dtype=np.float64)
        if freq.ndim != 1 or freq.size == 0 or np.any(freq < 0) or freq.sum() <= 0:
            raise SchemaError("frequencies must be a non-empty non-negative vector")
        self._pmf = freq / freq.sum()
        self._cdf = np.cumsum(self._pmf)
        self.min_value = 0.0
        self.max_value = float(freq.size - 1)
        self.n_distinct = int(freq.size)

    def selectivity_le(self, value: float) -> float:
        code = math.floor(value)
        if code < 0:
            return 0.0
        if code >= self.n_distinct - 1:
            return 1.0
        return float(self._cdf[code])

    def selectivity_eq(self, value: float) -> float:
        code = value
        if not float(code).is_integer():
            return 0.0
        code = int(code)
        if 0 <= code < self.n_distinct:
            return float(self._pmf[code])
        return 0.0

    def quantile(self, p: float) -> float:
        p = min(max(p, 0.0), 1.0)
        return float(min(int(np.searchsorted(self._cdf, p)), self.n_distinct - 1))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.choice(self.n_distinct, size=n, p=self._pmf).astype(np.int64)


def uniform_categorical(n_distinct: int) -> CategoricalCodes:
    """A categorical column with equally likely codes."""
    return CategoricalCodes(np.ones(n_distinct))


def zipf_categorical(n_distinct: int, skew: float = 1.0) -> CategoricalCodes:
    """A categorical column with Zipf-distributed code frequencies."""
    ranks = np.arange(1, n_distinct + 1, dtype=np.float64)
    return CategoricalCodes(ranks ** (-skew))
