"""A SQL front-end for the engine: text → logical plans.

The reproduction itself works from physical plans (like T3), but a
usable library needs a query surface. This module implements a compact
SQL subset sufficient for analytical workloads in the style of the
benchmark suites:

    SELECT <columns | aggregates | *>
    FROM   t1, t2, ...
    WHERE  <conjunction of filters and equi-join conditions>
    GROUP BY <columns>
    ORDER BY <columns> [DESC]
    LIMIT  <n>

Supported filter forms: ``col <op> literal``, ``col BETWEEN a AND b``,
``col IN (v, ...)``, ``col LIKE 'pattern'``, ``NOT <filter>``, and
``(<filter> OR <filter>)``. Join conditions are column equalities
between two tables; they are matched against the schema's declared join
edges (an undeclared equality becomes an ad-hoc edge with fan-out 1).

LIKE patterns run against dictionary-encoded string columns: the
matching code set is derived deterministically from the pattern (hash
seed) with a selectivity based on the pattern's specificity — the
standard substitution this repository uses for string data
(see DESIGN.md).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PlanError, SchemaError
from ..rng import derive_rng
from .catalog import Catalog
from .expressions import (
    Aggregate,
    AggregateFunction,
    BetweenPredicate,
    ComparisonOp,
    ComparisonPredicate,
    InListPredicate,
    LikePredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
)
from .logical import (
    LogicalGroupBy,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopK,
)
from .schema import DatabaseSchema, JoinEdge


class SQLError(PlanError):
    """Raised for syntax or binding errors in SQL input."""


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<number>-?\d+(?:\.\d+)?)
      | (?P<string>'(?:[^']|'')*')
      | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
      | (?P<op><=|>=|<>|!=|=|<|>)
      | (?P<punct>[(),*])
    )""", re.VERBOSE)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "limit", "and",
    "or", "not", "between", "in", "like", "desc", "asc", "as",
    "count", "sum", "min", "max", "avg",
}


@dataclass(frozen=True)
class Token:
    kind: str   # number | string | ident | keyword | op | punct | end
    text: str

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word


def tokenize(sql: str) -> List[Token]:
    """Split SQL text into tokens; raises :class:`SQLError` on garbage."""
    tokens: List[Token] = []
    position = 0
    length = len(sql)
    while position < length:
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            remainder = sql[position:].strip()
            if not remainder:
                break
            raise SQLError(f"cannot tokenize near {remainder[:20]!r}")
        position = match.end()
        if match.lastgroup == "ident":
            text = match.group("ident")
            lowered = text.lower()
            if lowered in _KEYWORDS:
                tokens.append(Token("keyword", lowered))
            else:
                tokens.append(Token("ident", text))
        elif match.lastgroup is not None:
            tokens.append(Token(match.lastgroup, match.group(match.lastgroup)))
    tokens.append(Token("end", ""))
    return tokens


# ---------------------------------------------------------------------------
# Parser (recursive descent into a small AST)
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    """``column``, ``agg(column)``, ``count(*)``, or ``*``."""

    aggregate: Optional[str]   # None for plain columns
    column: Optional[str]      # None for count(*) / '*'
    star: bool = False


@dataclass
class Condition:
    """One WHERE conjunct (possibly an OR / NOT tree)."""

    kind: str                      # cmp | between | in | like | join | or | not
    column: Optional[str] = None
    op: Optional[str] = None
    value: Optional[float] = None
    low: Optional[float] = None
    high: Optional[float] = None
    values: Optional[List[float]] = None
    pattern: Optional[str] = None
    right_column: Optional[str] = None
    parts: Optional[List["Condition"]] = None
    inner: Optional["Condition"] = None


@dataclass
class SelectStatement:
    items: List[SelectItem]
    tables: List[str]
    conditions: List[Condition]
    group_by: List[str]
    order_by: List[Tuple[str, bool]]   # (column, descending)
    limit: Optional[int]


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers --------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect_keyword(self, word: str) -> None:
        token = self.advance()
        if not token.is_keyword(word):
            raise SQLError(f"expected {word.upper()}, got {token.text!r}")

    def expect_punct(self, char: str) -> None:
        token = self.advance()
        if token.kind != "punct" or token.text != char:
            raise SQLError(f"expected {char!r}, got {token.text!r}")

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def accept_punct(self, char: str) -> bool:
        token = self.peek()
        if token.kind == "punct" and token.text == char:
            self.advance()
            return True
        return False

    # -- grammar ------------------------------------------------------------

    def parse(self) -> SelectStatement:
        self.expect_keyword("select")
        items = self._select_items()
        self.expect_keyword("from")
        tables = self._table_list()
        conditions: List[Condition] = []
        if self.accept_keyword("where"):
            conditions = self._conjunction()
        group_by: List[str] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = self._column_list()
        order_by: List[Tuple[str, bool]] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = self._order_list()
        limit: Optional[int] = None
        if self.accept_keyword("limit"):
            token = self.advance()
            if token.kind != "number":
                raise SQLError("LIMIT needs a number")
            limit = int(float(token.text))
        if self.peek().kind != "end":
            raise SQLError(f"unexpected trailing input {self.peek().text!r}")
        return SelectStatement(items, tables, conditions, group_by,
                               order_by, limit)

    def _select_items(self) -> List[SelectItem]:
        items = [self._select_item()]
        while self.accept_punct(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        token = self.peek()
        if token.kind == "punct" and token.text == "*":
            self.advance()
            return SelectItem(None, None, star=True)
        if token.kind == "keyword" and token.text in (
                "count", "sum", "min", "max", "avg"):
            function = self.advance().text
            self.expect_punct("(")
            if self.accept_punct("*"):
                self.expect_punct(")")
                return SelectItem(function, None)
            column = self._column_name()
            self.expect_punct(")")
            item = SelectItem(function, column)
            if self.accept_keyword("as"):
                self.advance()  # alias ignored
            return item
        column = self._column_name()
        if self.accept_keyword("as"):
            self.advance()
        return SelectItem(None, column)

    def _column_name(self) -> str:
        token = self.advance()
        if token.kind != "ident":
            raise SQLError(f"expected a column name, got {token.text!r}")
        return token.text

    def _table_list(self) -> List[str]:
        tables = [self._column_name()]
        while self.accept_punct(","):
            tables.append(self._column_name())
        return tables

    def _column_list(self) -> List[str]:
        columns = [self._column_name()]
        while self.accept_punct(","):
            columns.append(self._column_name())
        return columns

    def _order_list(self) -> List[Tuple[str, bool]]:
        result = [self._order_item()]
        while self.accept_punct(","):
            result.append(self._order_item())
        return result

    def _order_item(self) -> Tuple[str, bool]:
        column = self._column_name()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        elif self.accept_keyword("asc"):
            pass
        return column, descending

    # -- conditions ------------------------------------------------------------

    def _conjunction(self) -> List[Condition]:
        conditions = [self._condition()]
        while self.accept_keyword("and"):
            conditions.append(self._condition())
        return conditions

    def _condition(self) -> Condition:
        if self.accept_keyword("not"):
            return Condition("not", inner=self._condition())
        if self.accept_punct("("):
            first = self._condition()
            if self.accept_keyword("or"):
                parts = [first, self._condition()]
                while self.accept_keyword("or"):
                    parts.append(self._condition())
                self.expect_punct(")")
                return Condition("or", parts=parts)
            # Parenthesized single condition.
            self.expect_punct(")")
            return first
        column = self._column_name()
        token = self.advance()
        if token.kind == "op":
            return self._comparison_or_join(column, token.text)
        if token.is_keyword("between"):
            low = self._number()
            self.expect_keyword("and")
            high = self._number()
            return Condition("between", column=column, low=low, high=high)
        if token.is_keyword("in"):
            self.expect_punct("(")
            values = [self._number()]
            while self.accept_punct(","):
                values.append(self._number())
            self.expect_punct(")")
            return Condition("in", column=column, values=values)
        if token.is_keyword("like"):
            pattern = self.advance()
            if pattern.kind != "string":
                raise SQLError("LIKE needs a string literal")
            return Condition("like", column=column,
                             pattern=pattern.text[1:-1].replace("''", "'"))
        raise SQLError(f"unexpected {token.text!r} in condition")

    def _comparison_or_join(self, column: str, op: str) -> Condition:
        token = self.advance()
        if token.kind == "number":
            return Condition("cmp", column=column, op=op,
                             value=float(token.text))
        if token.kind == "string":
            return Condition("like", column=column,
                             pattern=token.text[1:-1].replace("''", "'"),
                             op=op)
        if token.kind == "ident":
            if op != "=":
                raise SQLError("only equality join conditions are supported")
            return Condition("join", column=column, right_column=token.text)
        raise SQLError(f"unexpected {token.text!r} after operator")

    def _number(self) -> float:
        token = self.advance()
        if token.kind != "number":
            raise SQLError(f"expected a number, got {token.text!r}")
        return float(token.text)


def parse_select(sql: str) -> SelectStatement:
    """Parse SQL text into the front-end AST (no schema binding yet)."""
    return _Parser(tokenize(sql)).parse()


# ---------------------------------------------------------------------------
# Binder: AST → logical plan against a schema/catalog
# ---------------------------------------------------------------------------

_COMPARISON_OPS = {
    "=": ComparisonOp.EQ, "<>": ComparisonOp.NE, "!=": ComparisonOp.NE,
    "<": ComparisonOp.LT, "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT, ">=": ComparisonOp.GE,
}

_AGGREGATES = {
    "count": AggregateFunction.COUNT, "sum": AggregateFunction.SUM,
    "min": AggregateFunction.MIN, "max": AggregateFunction.MAX,
    "avg": AggregateFunction.AVG,
}

#: LIKE selectivity by pattern shape: more literal characters → rarer.
_LIKE_BASE_SELECTIVITY = 0.25


class SQLBinder:
    """Binds parsed statements to a database instance's schema."""

    def __init__(self, schema: DatabaseSchema, catalog: Catalog):
        self.schema = schema
        self.catalog = catalog

    # -- public -----------------------------------------------------------

    def bind(self, statement: SelectStatement) -> LogicalNode:
        tables = self._check_tables(statement.tables)
        filters, joins = self._split_conditions(statement, tables)
        plan = self._join_tree(tables, filters, joins)
        plan = self._aggregate(plan, statement, tables)
        plan = self._order(plan, statement, tables)
        if (statement.group_by or not any(i.aggregate for i in statement.items)):
            plan = self._project(plan, statement, tables)
        return plan

    # -- name resolution --------------------------------------------------------

    def _check_tables(self, names: Sequence[str]) -> List[str]:
        seen = set()
        for name in names:
            self.schema.table(name)  # raises for unknown tables
            if name in seen:
                raise SQLError(
                    f"table {name!r} listed twice (aliases not supported)")
            seen.add(name)
        return list(names)

    def _resolve(self, name: str, tables: Sequence[str]) -> Tuple[str, str]:
        """Resolve a possibly-qualified column against the FROM tables."""
        if "." in name:
            table, _, column = name.partition(".")
            if table not in tables:
                raise SQLError(f"table {table!r} not in FROM clause")
            try:
                self.schema.table(table).column(column)
            except SchemaError as exc:
                raise SQLError(str(exc)) from exc
            return table, column
        candidates = [t for t in tables if self.schema.table(t).has_column(name)]
        if not candidates:
            raise SQLError(f"unknown column {name!r}")
        if len(candidates) > 1:
            raise SQLError(f"ambiguous column {name!r} "
                           f"(in {', '.join(candidates)})")
        return candidates[0], name

    # -- condition binding ---------------------------------------------------------

    def _split_conditions(self, statement: SelectStatement,
                          tables: Sequence[str]):
        filters: Dict[str, List[Predicate]] = {t: [] for t in tables}
        joins: List[JoinEdge] = []
        for condition in statement.conditions:
            if condition.kind == "join":
                left = self._resolve(condition.column, tables)
                right = self._resolve(condition.right_column, tables)
                if left[0] == right[0]:
                    raise SQLError("self-join conditions are not supported")
                declared = self.schema.edge_between(left[0], right[0])
                if (declared is not None
                        and {declared.left_column, declared.right_column}
                        == {left[1], right[1]}):
                    joins.append(declared)
                else:
                    joins.append(JoinEdge(left[0], left[1],
                                          right[0], right[1], fanout=1.0))
            else:
                predicate = self._bind_predicate(condition, tables)
                filters[predicate.table].append(predicate)
        return filters, joins

    def _bind_predicate(self, condition: Condition,
                        tables: Sequence[str]) -> Predicate:
        if condition.kind == "or":
            parts = [self._bind_predicate(p, tables)
                     for p in condition.parts]
            return OrPredicate(parts)
        if condition.kind == "not":
            return NotPredicate(self._bind_predicate(condition.inner, tables))
        table, column = self._resolve(condition.column, tables)
        if condition.kind == "cmp":
            return ComparisonPredicate(table, column,
                                       _COMPARISON_OPS[condition.op],
                                       condition.value)
        if condition.kind == "between":
            if condition.high < condition.low:
                raise SQLError("BETWEEN bounds are reversed")
            return BetweenPredicate(table, column, condition.low,
                                    condition.high)
        if condition.kind == "in":
            return InListPredicate(table, column, condition.values)
        if condition.kind == "like":
            return self._bind_like(table, column, condition)
        raise SQLError(f"unsupported condition kind {condition.kind!r}")

    def _bind_like(self, table: str, column: str,
                   condition: Condition) -> Predicate:
        column_type = self.schema.table(table).column(column).dtype
        if not column_type.is_string:
            raise SQLError(f"LIKE on non-string column {table}.{column}")
        stats = self.catalog.column_stats(table, column)
        pattern = condition.pattern or ""
        # Specificity heuristic: each literal character beyond the
        # wildcards halves the match fraction (floor at one code).
        literal_chars = len(pattern.replace("%", "").replace("_", ""))
        fraction = _LIKE_BASE_SELECTIVITY * (0.5 ** max(0, literal_chars - 1))
        n_match = max(1, min(stats.true_distinct,
                             int(round(stats.true_distinct * fraction))))
        rng = derive_rng(0x5A1, "sql-like", table, column, pattern)
        codes = rng.choice(stats.true_distinct, size=n_match, replace=False)
        predicate = LikePredicate(table, column, pattern,
                                  [int(c) for c in codes])
        if condition.op in ("<>", "!="):
            return NotPredicate(predicate)
        return predicate

    # -- plan construction -----------------------------------------------------------

    def _join_tree(self, tables: Sequence[str],
                   filters: Dict[str, List[Predicate]],
                   joins: List[JoinEdge]) -> LogicalNode:
        scans = {t: LogicalScan(t, filters[t]) for t in tables}
        if len(tables) == 1:
            return scans[tables[0]]
        remaining = list(joins)
        in_tree = {tables[0]}
        plan: LogicalNode = scans[tables[0]]
        n_tables = len(tables)
        while len(in_tree) < n_tables:
            progress = False
            for edge in list(remaining):
                if edge.left_table in in_tree and edge.right_table not in in_tree:
                    oriented, new_table = edge, edge.right_table
                elif edge.right_table in in_tree and edge.left_table not in in_tree:
                    oriented, new_table = edge.reversed(), edge.left_table
                else:
                    continue
                plan = LogicalJoin(plan, scans[new_table], oriented)
                in_tree.add(new_table)
                remaining.remove(edge)
                progress = True
            if not progress:
                missing = set(tables) - in_tree
                raise SQLError(
                    f"no join condition connects {sorted(missing)} "
                    f"to the rest of the query")
        return plan

    def _aggregate(self, plan: LogicalNode, statement: SelectStatement,
                   tables: Sequence[str]) -> LogicalNode:
        aggregate_items = [i for i in statement.items if i.aggregate]
        if not aggregate_items and not statement.group_by:
            return plan
        if not aggregate_items:
            raise SQLError("GROUP BY requires at least one aggregate")
        group_columns = [self._resolve(c, tables) for c in statement.group_by]
        aggregates = []
        for item in aggregate_items:
            function = _AGGREGATES[item.aggregate]
            if item.column is None:
                if function is not AggregateFunction.COUNT:
                    raise SQLError(f"{item.aggregate}(*) is not valid")
                aggregates.append(Aggregate(function))
            else:
                table, column = self._resolve(item.column, tables)
                aggregates.append(Aggregate(function, f"{table}.{column}"))
        # Plain columns in SELECT must be grouped.
        grouped = set(group_columns)
        for item in statement.items:
            if item.aggregate is None and not item.star and item.column:
                resolved = self._resolve(item.column, tables)
                if resolved not in grouped:
                    raise SQLError(
                        f"column {item.column!r} must appear in GROUP BY")
        return LogicalGroupBy(plan, group_columns, aggregates)

    def _order(self, plan: LogicalNode, statement: SelectStatement,
               tables: Sequence[str]) -> LogicalNode:
        if not statement.order_by:
            if statement.limit is not None:
                # LIMIT without ORDER BY: arbitrary rows; keep it simple.
                from .logical import LogicalLimit
                return LogicalLimit(plan, statement.limit)
            return plan
        keys: List[Tuple[str, str]] = []
        for name, _descending in statement.order_by:
            if isinstance(plan, LogicalGroupBy) and name.startswith("agg"):
                keys.append(("#computed", name))
            else:
                keys.append(self._resolve(name, tables))
        if statement.limit is not None:
            return LogicalTopK(plan, keys, statement.limit)
        return LogicalSort(plan, keys)

    def _project(self, plan: LogicalNode, statement: SelectStatement,
                 tables: Sequence[str]) -> LogicalNode:
        if any(item.star for item in statement.items):
            return plan
        if any(item.aggregate for item in statement.items):
            return plan  # aggregation already shaped the output
        columns = [self._resolve(item.column, tables)
                   for item in statement.items if item.column]
        if not columns:
            return plan
        return LogicalProject(plan, columns)


def parse_sql(sql: str, schema: DatabaseSchema,
              catalog: Catalog) -> LogicalNode:
    """One-shot helper: SQL text → bound logical plan."""
    return SQLBinder(schema, catalog).bind(parse_select(sql))
