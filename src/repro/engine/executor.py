"""Vectorized in-memory query executor.

This is the part of the substrate that *actually runs* queries: physical
plans are executed pipeline by pipeline over numpy column arrays, with
wall-clock timing per pipeline. It serves three purposes:

* the runnable examples operate on real data,
* integration tests validate the exact cardinality model and the
  analytic simulator against observed behaviour, and
* simulator cost constants were calibrated against its measurements.

The executor processes each pipeline as one vectorized batch — morsel
scheduling and parallelism are out of scope (the paper's model also
predicts single-query, non-concurrent execution).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PlanError
from .expressions import Aggregate, AggregateFunction, Predicate
from .physical import (
    PAssertSingle,
    PCrossProduct,
    PDistinct,
    PFilter,
    PGroupBy,
    PhysicalOperator,
    PhysicalPlan,
    PIndexNLJoin,
    PLimit,
    PMap,
    PSimpleAgg,
    PSort,
    PTableScan,
    PTopK,
    PWindow,
    _JoinBase,
)
from .pipelines import Pipeline, decompose_into_pipelines
from .schema import qualified
from .stages import OperatorType, Stage

#: A batch is a mapping from qualified column names to equal-length arrays.
Batch = Dict[str, np.ndarray]


def batch_rows(batch: Batch) -> int:
    if not batch:
        return 0
    return len(next(iter(batch.values())))


def _table_view(batch: Batch, table: str) -> Dict[str, np.ndarray]:
    """Unqualified view of one table's columns inside a batch."""
    prefix = table + "."
    return {name[len(prefix):]: data for name, data in batch.items()
            if name.startswith(prefix)}


def _take(batch: Batch, indices: np.ndarray) -> Batch:
    return {name: data[indices] for name, data in batch.items()}


def _mask(batch: Batch, mask: np.ndarray) -> Batch:
    return {name: data[mask] for name, data in batch.items()}


class TableStore:
    """Concrete data of one database instance: table → column → array."""

    def __init__(self):
        self._tables: Dict[str, Dict[str, np.ndarray]] = {}

    def put_table(self, table: str, columns: Dict[str, np.ndarray]) -> None:
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise PlanError(f"ragged columns for table {table!r}")
        self._tables[table] = dict(columns)

    def columns(self, table: str) -> Dict[str, np.ndarray]:
        try:
            return self._tables[table]
        except KeyError:
            raise PlanError(f"no data loaded for table {table!r}") from None

    def row_count(self, table: str) -> int:
        columns = self.columns(table)
        if not columns:
            return 0
        return len(next(iter(columns.values())))

    def has_table(self, table: str) -> bool:
        return table in self._tables

    @property
    def table_names(self) -> List[str]:
        return list(self._tables)


@dataclass
class ExecutionResult:
    """Outcome of executing one plan on real data."""

    plan: PhysicalPlan
    result: Batch
    pipeline_times: List[float]
    total_time: float
    #: Observed output rows per operator node id ("explain analyze").
    observed_cardinalities: Dict[int, int] = field(default_factory=dict)

    @property
    def n_result_rows(self) -> int:
        return batch_rows(self.result)


class VectorizedExecutor:
    """Executes physical plans pipeline-by-pipeline over a TableStore."""

    #: Refuse join/cross products whose output would exceed this many rows.
    max_intermediate_rows = 200_000_000

    def __init__(self, store: TableStore):
        self.store = store

    def execute(self, plan: PhysicalPlan) -> ExecutionResult:
        pipelines = decompose_into_pipelines(plan)
        state: Dict[int, object] = {}
        observed: Dict[int, int] = {}
        pipeline_times: List[float] = []
        final_batch: Batch = {}

        start_total = time.perf_counter()
        for pipeline in pipelines:
            start = time.perf_counter()
            final_batch = self._run_pipeline(pipeline, state, observed)
            pipeline_times.append(time.perf_counter() - start)
        total = time.perf_counter() - start_total
        return ExecutionResult(plan, final_batch, pipeline_times, total,
                               observed)

    # -- pipeline execution ------------------------------------------------

    def _run_pipeline(self, pipeline: Pipeline, state: Dict[int, object],
                      observed: Dict[int, int]) -> Batch:
        batch: Batch = {}
        for ref in pipeline.stages:
            op, stage = ref.operator, ref.stage
            if stage is Stage.SCAN:
                batch = self._scan(op, state)
            elif stage is Stage.PASS_THROUGH:
                batch = self._pass_through(op, batch)
            elif stage is Stage.PROBE:
                batch = self._probe(op, batch, state)
            elif stage is Stage.BUILD:
                self._build(op, batch, state)
                observed[op.node_id] = self._built_rows(op, state)
                batch = {}
                continue
            observed[op.node_id] = batch_rows(batch)
        return batch

    # -- scans -----------------------------------------------------------

    def _scan(self, op: PhysicalOperator, state: Dict[int, object]) -> Batch:
        if isinstance(op, PTableScan):
            columns = self.store.columns(op.table)
            batch: Batch = {}
            for table, column in op.output_columns:
                batch[qualified(table, column)] = columns[column]
            # Predicates may reference columns pruned from the output.
            view = {qualified(op.table, c): data
                    for c, data in columns.items()}
            keep: Optional[np.ndarray] = None
            for predicate in op.predicates:
                mask = self._evaluate_predicate(predicate, view)
                keep = mask if keep is None else keep & mask
            if keep is not None:
                batch = _mask(batch, keep)
            return batch
        # Scan of materialized state.
        stored = state.get(op.node_id)
        if stored is None:
            raise PlanError(f"state of {op.op_type} not built yet")
        if isinstance(stored, list):  # union buffers
            return _concat_batches(stored)
        if not isinstance(stored, dict):
            raise PlanError(f"unexpected state for {op.op_type}")
        return dict(stored)

    def _evaluate_predicate(self, predicate: Predicate,
                            qualified_view: Batch) -> np.ndarray:
        table_columns = {name.split(".", 1)[1]: data
                         for name, data in qualified_view.items()
                         if name.startswith(predicate.table + ".")}
        return predicate.evaluate(table_columns)

    # -- pass-through stages --------------------------------------------------

    def _pass_through(self, op: PhysicalOperator, batch: Batch) -> Batch:
        if isinstance(op, PFilter):
            keep: Optional[np.ndarray] = None
            for predicate in op.predicates:
                view = _table_view(batch, predicate.table)
                mask = predicate.evaluate(view)
                keep = mask if keep is None else keep & mask
            return _mask(batch, keep) if keep is not None else batch
        if isinstance(op, PMap):
            result = dict(batch)
            for computed in op.computed:
                view = {name: batch[name] for name in computed.input_columns}
                result[qualified("#computed", computed.name)] = (
                    computed.evaluate(view))
            return result
        if isinstance(op, PLimit):
            k = op.k
            return {name: data[:k] for name, data in batch.items()}
        if isinstance(op, PAssertSingle):
            if batch_rows(batch) > 1:
                raise PlanError("AssertSingle saw more than one row")
            return batch
        if isinstance(op, PIndexNLJoin):
            return self._index_join(op, batch)
        raise PlanError(f"cannot execute pass-through {op.op_type}")

    def _index_join(self, op: PIndexNLJoin, batch: Batch) -> Batch:
        inner_columns = self.store.columns(op.inner_table)
        inner_key = inner_columns[op.inner_column[1]]
        outer_key = batch[qualified(*op.outer_column)]
        order = np.argsort(inner_key, kind="stable")
        sorted_keys = inner_key[order]
        outer_idx, inner_idx = _join_indices(sorted_keys, order, outer_key)
        result = _take(batch, outer_idx)
        for table, column in op.output_columns:
            name = qualified(table, column)
            if name in result:
                continue
            if table == op.inner_table:
                result[name] = inner_columns[column][inner_idx]
        return result

    # -- probes --------------------------------------------------------------

    def _probe(self, op: PhysicalOperator, batch: Batch,
               state: Dict[int, object]) -> Batch:
        stored = state.get(op.node_id)
        if stored is None:
            raise PlanError(f"probe of {op.op_type} before build")
        if isinstance(op, PCrossProduct):
            build_batch: Batch = stored  # type: ignore[assignment]
            n_build = batch_rows(build_batch)
            n_probe = batch_rows(batch)
            if n_build * n_probe > self.max_intermediate_rows:
                raise PlanError("cross product too large to execute")
            result = {name: np.tile(data, n_probe)
                      for name, data in build_batch.items()}
            result.update({name: np.repeat(data, n_build)
                           for name, data in batch.items()})
            return result
        if isinstance(op, _JoinBase):
            sorted_keys, order, build_batch = stored  # type: ignore[misc]
            probe_key = batch[qualified(*op.probe_column)]
            if op.op_type is OperatorType.SEMI_JOIN:
                mask = _membership(sorted_keys, probe_key)
                return _mask(batch, mask)
            if op.op_type is OperatorType.ANTI_JOIN:
                mask = _membership(sorted_keys, probe_key)
                return _mask(batch, ~mask)
            probe_idx, build_idx = _join_indices(sorted_keys, order, probe_key)
            if len(probe_idx) > self.max_intermediate_rows:
                raise PlanError("join result too large to execute")
            result = _take(batch, probe_idx)
            for name, data in build_batch.items():
                if name not in result:
                    result[name] = data[build_idx]
            return result
        raise PlanError(f"cannot probe {op.op_type}")

    # -- builds ----------------------------------------------------------------

    def _build(self, op: PhysicalOperator, batch: Batch,
               state: Dict[int, object]) -> None:
        if isinstance(op, _JoinBase):
            key = batch[qualified(*op.build_column)]
            order = np.argsort(key, kind="stable")
            state[op.node_id] = (key[order], order, batch)
            return
        if isinstance(op, PCrossProduct):
            state[op.node_id] = batch
            return
        if isinstance(op, PGroupBy):
            state[op.node_id] = _group_by(batch, op.group_columns,
                                          op.aggregates)
            return
        if isinstance(op, PSimpleAgg):
            n = batch_rows(batch)
            result: Batch = {}
            for i, aggregate in enumerate(op.aggregates):
                view = {aggregate.column: batch[aggregate.column]} \
                    if aggregate.column else {}
                value = aggregate.evaluate(view, n)
                result[qualified("#computed", f"agg_{i}")] = np.array([value])
            state[op.node_id] = result
            return
        if isinstance(op, PSort):
            keys = [batch[qualified(t, c)] for t, c in op.keys]
            order = np.lexsort(keys[::-1]) if keys else np.arange(batch_rows(batch))
            state[op.node_id] = _take(batch, order)
            return
        if isinstance(op, PTopK):
            keys = [batch[qualified(t, c)] for t, c in op.keys]
            order = np.lexsort(keys[::-1]) if keys else np.arange(batch_rows(batch))
            state[op.node_id] = _take(batch, order[:op.k])
            return
        if isinstance(op, PWindow):
            state[op.node_id] = _window_rank(batch, op)
            return
        if isinstance(op, PDistinct):
            state[op.node_id] = _distinct(batch, op.columns)
            return
        if op.op_type is OperatorType.UNION:
            buffers = state.setdefault(op.node_id, [])
            buffers.append(batch)  # type: ignore[union-attr]
            return
        if op.op_type is OperatorType.MATERIALIZE:
            state[op.node_id] = dict(batch)
            return
        raise PlanError(f"cannot build {op.op_type}")

    def _built_rows(self, op: PhysicalOperator, state: Dict[int, object]) -> int:
        stored = state.get(op.node_id)
        if isinstance(stored, tuple):
            return len(stored[0])
        if isinstance(stored, list):
            return sum(batch_rows(b) for b in stored)
        if isinstance(stored, dict):
            return batch_rows(stored)
        return 0


# -- join / grouping kernels ----------------------------------------------


def _join_indices(sorted_keys: np.ndarray, order: np.ndarray,
                  probe_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Matching (probe_row, build_row) index pairs via binary search."""
    lo = np.searchsorted(sorted_keys, probe_keys, side="left")
    hi = np.searchsorted(sorted_keys, probe_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    probe_idx = np.repeat(np.arange(len(probe_keys)), counts)
    if total == 0:
        return probe_idx, np.empty(0, dtype=np.int64)
    starts = np.repeat(lo, counts)
    group_offsets = np.arange(total) - np.repeat(
        np.cumsum(counts) - counts, counts)
    build_idx = order[starts + group_offsets]
    return probe_idx, build_idx


def _membership(sorted_keys: np.ndarray, probe_keys: np.ndarray) -> np.ndarray:
    lo = np.searchsorted(sorted_keys, probe_keys, side="left")
    hi = np.searchsorted(sorted_keys, probe_keys, side="right")
    return hi > lo


def _group_by(batch: Batch, group_columns: Sequence[Tuple[str, str]],
              aggregates: Sequence[Aggregate]) -> Batch:
    n = batch_rows(batch)
    keys = [batch[qualified(t, c)] for t, c in group_columns]
    if n == 0:
        result = {qualified(t, c): np.empty(0, dtype=np.int64)
                  for t, c in group_columns}
        for i in range(len(aggregates)):
            result[qualified("#computed", f"agg_{i}")] = np.empty(0)
        return result
    order = np.lexsort(keys[::-1])
    sorted_keys = [k[order] for k in keys]
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for key in sorted_keys:
        boundary[1:] |= key[1:] != key[:-1]
    starts = np.nonzero(boundary)[0]
    result: Batch = {}
    for (table, column), key in zip(group_columns, sorted_keys):
        result[qualified(table, column)] = key[starts]
    counts = np.diff(np.append(starts, n)).astype(np.float64)
    for i, aggregate in enumerate(aggregates):
        name = qualified("#computed", f"agg_{i}")
        if aggregate.function is AggregateFunction.COUNT:
            result[name] = counts
            continue
        data = batch[aggregate.column][order].astype(np.float64)
        if aggregate.function is AggregateFunction.SUM:
            result[name] = np.add.reduceat(data, starts)
        elif aggregate.function is AggregateFunction.MIN:
            result[name] = np.minimum.reduceat(data, starts)
        elif aggregate.function is AggregateFunction.MAX:
            result[name] = np.maximum.reduceat(data, starts)
        else:  # AVG
            result[name] = np.add.reduceat(data, starts) / counts
    return result


def _distinct(batch: Batch, columns: Sequence[Tuple[str, str]]) -> Batch:
    n = batch_rows(batch)
    if n == 0:
        return dict(batch)
    keys = [batch[qualified(t, c)] for t, c in columns]
    order = np.lexsort(keys[::-1])
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for key in (k[order] for k in keys):
        boundary[1:] |= key[1:] != key[:-1]
    return _take(batch, order[boundary])


def _window_rank(batch: Batch, op: PWindow) -> Batch:
    n = batch_rows(batch)
    partition = [batch[qualified(t, c)] for t, c in op.partition_columns]
    ordering = [batch[qualified(t, c)] for t, c in op.order_columns]
    keys = (ordering + partition)  # lexsort: last key is primary
    if n == 0:
        result = dict(batch)
        result[qualified("#computed", op.function)] = np.empty(0, np.int64)
        return result
    order = np.lexsort(keys) if keys else np.arange(n)
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for key in (k[order] for k in partition):
        boundary[1:] |= key[1:] != key[:-1]
    segment_id = np.cumsum(boundary) - 1
    starts = np.nonzero(boundary)[0]
    rank = np.arange(n) - starts[segment_id] + 1
    result = _take(batch, order)
    result[qualified("#computed", op.function)] = rank
    return result


def _concat_batches(batches: List[Batch]) -> Batch:
    if not batches:
        return {}
    names = list(batches[0])
    result: Batch = {}
    for position, name in enumerate(names):
        parts = []
        for batch in batches:
            if name in batch:
                parts.append(batch[name])
            else:  # positional alignment for union of different schemas
                other = list(batch.values())
                parts.append(other[position])
        result[name] = np.concatenate(parts)
    return result
