"""Logical query plans.

The query generator and the fixed benchmark suites produce logical
plans; the optimizer lowers them to physical plans. Logical nodes are
deliberately close to the generator's primitives (Section 4.2): filter,
join, aggregate, sort, project — plus window, distinct, union and limit
to cover the benchmark workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import PlanError
from .expressions import Aggregate, ComputedColumn, Predicate
from .schema import JoinEdge


class LogicalNode:
    """Base class; children in ``inputs``."""

    inputs: List["LogicalNode"]

    def tables(self) -> List[str]:
        """All base table names below this node (with duplicates preserved)."""
        result: List[str] = []
        for child in self.inputs:
            result.extend(child.tables())
        return result

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.inputs:
            yield from child.walk()


@dataclass
class LogicalScan(LogicalNode):
    """Scan of a base table with conjunctive filter predicates.

    ``correlation_factor`` scales the *true* combined selectivity of the
    predicate conjunction relative to the independence product — it
    models real-world predicate correlation that estimators miss.
    """

    table: str
    predicates: List[Predicate] = field(default_factory=list)
    correlation_factor: float = 1.0
    columns: Optional[List[str]] = None  # None = all columns

    def __post_init__(self) -> None:
        self.inputs = []
        for predicate in self.predicates:
            if predicate.table != self.table:
                raise PlanError(
                    f"predicate on {predicate.table!r} attached to scan of "
                    f"{self.table!r}")

    def tables(self) -> List[str]:
        return [self.table]


@dataclass
class LogicalJoin(LogicalNode):
    """Inner/semi/anti join of two subtrees along a join edge."""

    left: LogicalNode
    right: LogicalNode
    edge: JoinEdge
    kind: str = "inner"  # inner | semi | anti

    def __post_init__(self) -> None:
        if self.kind not in ("inner", "semi", "anti"):
            raise PlanError(f"unknown join kind {self.kind!r}")
        self.inputs = [self.left, self.right]


@dataclass
class LogicalGroupBy(LogicalNode):
    """Hash aggregation. Empty ``group_columns`` = aggregation to one row."""

    input: LogicalNode
    group_columns: List[Tuple[str, str]]  # (table, column) pairs
    aggregates: List[Aggregate]

    def __post_init__(self) -> None:
        if not self.aggregates and not self.group_columns:
            raise PlanError("group-by needs keys or aggregates")
        self.inputs = [self.input]


@dataclass
class LogicalSort(LogicalNode):
    """Full sort on one or more key columns."""

    input: LogicalNode
    keys: List[Tuple[str, str]]

    def __post_init__(self) -> None:
        if not self.keys:
            raise PlanError("sort needs at least one key")
        self.inputs = [self.input]


@dataclass
class LogicalTopK(LogicalNode):
    """Sort + limit fused into a bounded heap."""

    input: LogicalNode
    keys: List[Tuple[str, str]]
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise PlanError("top-k needs k >= 1")
        if not self.keys:
            raise PlanError("top-k needs at least one key")
        self.inputs = [self.input]


@dataclass
class LogicalLimit(LogicalNode):
    input: LogicalNode
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise PlanError("limit needs k >= 1")
        self.inputs = [self.input]


@dataclass
class LogicalProject(LogicalNode):
    """Column subset plus computed expressions."""

    input: LogicalNode
    columns: List[Tuple[str, str]]
    computed: List[ComputedColumn] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.columns and not self.computed:
            raise PlanError("projection must keep at least one column")
        self.inputs = [self.input]


@dataclass
class LogicalWindow(LogicalNode):
    """Window function (rank-style) over partitions."""

    input: LogicalNode
    partition_columns: List[Tuple[str, str]]
    order_columns: List[Tuple[str, str]]
    function: str = "rank"

    def __post_init__(self) -> None:
        if not self.order_columns:
            raise PlanError("window function needs an ordering")
        self.inputs = [self.input]


@dataclass
class LogicalDistinct(LogicalNode):
    input: LogicalNode
    columns: List[Tuple[str, str]]

    def __post_init__(self) -> None:
        if not self.columns:
            raise PlanError("distinct needs at least one column")
        self.inputs = [self.input]


@dataclass
class LogicalUnion(LogicalNode):
    """Bag union (UNION ALL) of two compatible subtrees."""

    left: LogicalNode
    right: LogicalNode

    def __post_init__(self) -> None:
        self.inputs = [self.left, self.right]


def count_joins(plan: LogicalNode) -> int:
    """Number of join nodes in a logical plan (workload statistics)."""
    return sum(1 for node in plan.walk() if isinstance(node, LogicalJoin))
