"""Pipeline decomposition of physical plans (Section 2.2).

A *pipeline* is the path between two pipeline breakers: it scans some
input (a base table or previously materialized state), pushes tuples
through pass-through and probe stages, and ends by materializing —
into a hash table, an aggregate, a sort buffer, or the query result.

:func:`decompose_into_pipelines` produces pipelines in valid execution
order (all pipelines a pipeline depends on come first). Given a
cardinality model, :func:`compute_stage_flows` derives the tuple flow
through each stage — the quantities T3's features and the execution
simulator are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import PlanError
from .cardinality import CardinalityModel
from .physical import (
    PCrossProduct,
    PGroupBy,
    PhysicalOperator,
    PhysicalPlan,
    PSimpleAgg,
    PTableScan,
    PTopK,
    _JoinBase,
)
from .stages import (
    BINARY_OPERATORS,
    MATERIALIZING_OPERATORS,
    OperatorType,
    Stage,
)


@dataclass(frozen=True)
class StageRef:
    """One operator stage occurring in a pipeline."""

    operator: PhysicalOperator
    stage: Stage

    def label(self) -> str:
        """Paper-style stage name, e.g. ``HashJoin_Probe``."""
        return f"{self.operator.op_type.value}_{self.stage.value}"


@dataclass
class Pipeline:
    """An ordered sequence of stage references, source first."""

    index: int
    stages: List[StageRef]

    def __post_init__(self) -> None:
        if not self.stages:
            raise PlanError("a pipeline needs at least one stage")
        first = self.stages[0].stage
        if first not in (Stage.SCAN,):
            raise PlanError(f"pipeline must start with a scan, got {first}")

    @property
    def source(self) -> StageRef:
        return self.stages[0]

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    def label(self) -> str:
        return " -> ".join(ref.label() for ref in self.stages)


def decompose_into_pipelines(plan: PhysicalPlan) -> List[Pipeline]:
    """Split a physical plan into its pipelines, dependencies first."""
    completed: List[List[StageRef]] = []

    def visit(op: PhysicalOperator) -> List[StageRef]:
        """Return the open pipeline flowing out of ``op``."""
        op_type = op.op_type
        if op_type is OperatorType.TABLE_SCAN:
            return [StageRef(op, Stage.SCAN)]
        if op_type in BINARY_OPERATORS and op_type is not OperatorType.UNION:
            left_open = visit(op.children[0])
            left_open.append(StageRef(op, Stage.BUILD))
            completed.append(left_open)
            right_open = visit(op.children[1])
            right_open.append(StageRef(op, Stage.PROBE))
            return right_open
        if op_type is OperatorType.UNION:
            for child in op.children:
                child_open = visit(child)
                child_open.append(StageRef(op, Stage.BUILD))
                completed.append(child_open)
            return [StageRef(op, Stage.SCAN)]
        if op_type in MATERIALIZING_OPERATORS:
            child_open = visit(op.children[0])
            child_open.append(StageRef(op, Stage.BUILD))
            completed.append(child_open)
            return [StageRef(op, Stage.SCAN)]
        if op_type is OperatorType.INDEX_NL_JOIN or len(op.children) == 1:
            child_open = visit(op.children[0])
            child_open.append(StageRef(op, Stage.PASS_THROUGH))
            return child_open
        raise PlanError(f"cannot decompose operator {op_type}")

    final_open = visit(plan.root)
    completed.append(final_open)
    return [Pipeline(index, stages) for index, stages in enumerate(completed)]


@dataclass(frozen=True)
class StageFlow:
    """Tuple flow through one stage of one pipeline.

    Attributes
    ----------
    tuples_in:
        Tuples arriving at the stage from the pipeline's stream.
    tuples_out:
        Tuples the stage pushes onward (0 for terminal builds).
    state_cardinality:
        For probe stages: entries in the materialized state being probed.
    materialized_cardinality:
        For build stages: entries this stage materializes.
    stored_byte_width:
        Bytes per materialized tuple (builds) or scanned tuple (scans).
    """

    ref: StageRef
    tuples_in: float
    tuples_out: float
    state_cardinality: float = 0.0
    materialized_cardinality: float = 0.0
    stored_byte_width: int = 0


def pipeline_input_cardinality(pipeline: Pipeline,
                               model: CardinalityModel) -> float:
    """Tuples scanned at the start of the pipeline (the T3 multiplier)."""
    source = pipeline.source
    op = source.operator
    if isinstance(op, PTableScan):
        return model.base_cardinality(op)
    return model.output_cardinality(op)


def compute_stage_flows(pipeline: Pipeline,
                        model: CardinalityModel) -> List[StageFlow]:
    """Derive the tuple flow of every stage in a pipeline."""
    flows: List[StageFlow] = []
    current = 0.0
    for ref in pipeline.stages:
        op, stage = ref.operator, ref.stage
        if stage is Stage.SCAN:
            if isinstance(op, PTableScan):
                tuples_in = model.base_cardinality(op)
                width = op.scan_byte_width
            else:
                tuples_in = model.output_cardinality(op)
                width = getattr(op, "stored_byte_width", op.output_byte_width)
            tuples_out = model.output_cardinality(op)
            flows.append(StageFlow(ref, tuples_in, tuples_out,
                                   stored_byte_width=width))
            current = tuples_out
        elif stage is Stage.PASS_THROUGH:
            tuples_out = model.output_cardinality(op)
            flows.append(StageFlow(ref, current, tuples_out))
            current = tuples_out
        elif stage is Stage.PROBE:
            if isinstance(op, (PCrossProduct,)) or isinstance(op, _JoinBase):
                state = model.output_cardinality(op.build_child)
            else:
                raise PlanError(f"probe stage on non-join {op.op_type}")
            tuples_out = model.output_cardinality(op)
            flows.append(StageFlow(
                ref, current, tuples_out, state_cardinality=state,
                stored_byte_width=getattr(op, "stored_byte_width", 0)))
            current = tuples_out
        elif stage is Stage.BUILD:
            materialized = _materialized_count(op, current, model)
            flows.append(StageFlow(
                ref, current, 0.0, materialized_cardinality=materialized,
                stored_byte_width=getattr(op, "stored_byte_width",
                                          op.output_byte_width)))
            current = 0.0
        else:  # pragma: no cover - enum is exhaustive
            raise PlanError(f"unknown stage {stage}")
    return flows


def _materialized_count(op: PhysicalOperator, arriving: float,
                        model: CardinalityModel) -> float:
    """How many entries a build stage materializes."""
    if isinstance(op, (PGroupBy,)):
        return model.output_cardinality(op)
    if isinstance(op, PSimpleAgg):
        return 1.0
    if isinstance(op, PTopK):
        return min(arriving, float(op.k))
    if op.op_type is OperatorType.DISTINCT:
        return model.output_cardinality(op)
    # Join builds, sort, window, materialize, union: store what arrives.
    return arriving


def count_pipelines(plan: PhysicalPlan) -> int:
    return len(decompose_into_pipelines(plan))
