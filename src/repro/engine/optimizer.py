"""Rule-based optimizer: logical plans → physical plans.

Mirrors the Umbra behaviours the paper calls out:

* **predicate ordering** — scan predicates are evaluated most-selective
  first, which shapes the per-class expression percentages of T3's
  table-scan features,
* **small-table elimination** — joins against tiny tables (`nation`,
  `region`) are computed at optimization time and replaced by a
  BETWEEN + IN predicate pair on the surviving side (the paper's TPC-H
  Q5 example, Listing 3),
* **build-side selection** — hash joins build on the smaller (estimated)
  input and probe with the larger,
* **projection pushdown** — scans only read columns referenced upstream,
* **sort + limit fusion** into Top-K.

The optimizer never reorders joins; join ordering is studied separately
in :mod:`repro.joinorder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..errors import PlanError
from .cardinality import EstimatedCardinalityModel
from .catalog import Catalog
from .expressions import BetweenPredicate, InListPredicate, Predicate
from .logical import (
    LogicalDistinct,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopK,
    LogicalUnion,
    LogicalWindow,
)
from .physical import (
    ColumnRef,
    PAntiJoin,
    PFilter,
    PGroupBy,
    PHashJoin,
    PIndexNLJoin,
    PLimit,
    PMap,
    PhysicalOperator,
    PhysicalPlan,
    PSemiJoin,
    PSimpleAgg,
    PSort,
    PTableScan,
    PTopK,
    PWindow,
    PDistinct,
    PUnion,
)
from .schema import DatabaseSchema

#: Pseudo-table name for computed / aggregate output columns.
COMPUTED = "#computed"

#: Byte width of computed columns (aggregates, expressions).
COMPUTED_WIDTH = 8


@dataclass(frozen=True)
class OptimizerConfig:
    """Tuning knobs of the optimizer."""

    small_table_threshold: int = 2000
    enable_small_table_elimination: bool = True
    enable_index_nl_join: bool = True
    index_join_outer_fraction: float = 1e-3


class Optimizer:
    """Lowers logical plans over one database instance to physical plans."""

    def __init__(self, schema: DatabaseSchema, catalog: Catalog,
                 config: Optional[OptimizerConfig] = None):
        self.schema = schema
        self.catalog = catalog
        self.config = config or OptimizerConfig()
        self._estimator = EstimatedCardinalityModel(catalog)

    # -- public API ------------------------------------------------------

    def optimize(self, plan: LogicalNode, query_name: str = "") -> PhysicalPlan:
        """Produce a physical plan for ``plan``."""
        required = _collect_required_columns(plan)
        self._estimator.reset()
        root = self._lower(plan, required)
        return PhysicalPlan(root, self.schema.name, query_name)

    # -- helpers -----------------------------------------------------------

    def _column_width(self, table: str, column: str) -> int:
        if table == COMPUTED:
            return COMPUTED_WIDTH
        return self.schema.table(table).column(column).byte_width

    def _width_of(self, columns: Sequence[ColumnRef]) -> int:
        return sum(self._column_width(t, c) for t, c in columns)

    def _estimated(self, op: PhysicalOperator) -> float:
        return self._estimator.output_cardinality(op)

    # -- lowering ----------------------------------------------------------

    def _lower(self, node: LogicalNode,
               required: Dict[str, Set[str]]) -> PhysicalOperator:
        if isinstance(node, LogicalScan):
            return self._lower_scan(node, required)
        if isinstance(node, LogicalJoin):
            return self._lower_join(node, required)
        if isinstance(node, LogicalGroupBy):
            return self._lower_group_by(node, required)
        if isinstance(node, LogicalSort):
            child = self._lower(node.input, required)
            return PSort(child, list(node.keys))
        if isinstance(node, LogicalTopK):
            child = self._lower(node.input, required)
            return PTopK(child, list(node.keys), node.k)
        if isinstance(node, LogicalLimit):
            child = self._lower(node.input, required)
            if isinstance(child, PSort):
                return PTopK(child.children[0], child.keys, node.k)
            return PLimit(child, node.k)
        if isinstance(node, LogicalProject):
            return self._lower_project(node, required)
        if isinstance(node, LogicalWindow):
            child = self._lower(node.input, required)
            out_columns = child.output_columns + [(COMPUTED, node.function)]
            return PWindow(child, list(node.partition_columns),
                           list(node.order_columns), node.function,
                           out_columns, self._width_of(out_columns))
        if isinstance(node, LogicalDistinct):
            child = self._lower(node.input, required)
            return PDistinct(child, list(node.columns))
        if isinstance(node, LogicalUnion):
            left = self._lower(node.left, required)
            right = self._lower(node.right, required)
            return PUnion(left, right)
        raise PlanError(f"cannot lower logical node {type(node).__name__}")

    def _lower_scan(self, node: LogicalScan,
                    required: Dict[str, Set[str]]) -> PTableScan:
        table = self.schema.table(node.table)
        needed = required.get(node.table) or set(table.column_names)
        columns = [(node.table, c) for c in table.column_names if c in needed]
        if not columns:
            columns = [(node.table, table.column_names[0])]
        # Evaluate the most selective predicates first (Umbra-style).
        predicates = sorted(
            node.predicates,
            key=lambda p: p.estimated_selectivity(self.catalog))
        width = self._width_of(columns)
        return PTableScan(node.table, predicates, node.correlation_factor,
                          columns, width, scan_byte_width=width)

    def _lower_join(self, node: LogicalJoin,
                    required: Dict[str, Set[str]]) -> PhysicalOperator:
        edge = node.edge
        config = self.config
        # Small-table elimination: inner joins against tiny base tables
        # become IN predicates on the surviving side (Umbra's
        # nation/region optimization, Section 3 of the paper).
        if (config.enable_small_table_elimination and node.kind == "inner"):
            for small_side, keep_side, small_col, keep_col in (
                    (node.left, node.right,
                     (edge.left_table, edge.left_column),
                     (edge.right_table, edge.right_column)),
                    (node.right, node.left,
                     (edge.right_table, edge.right_column),
                     (edge.left_table, edge.left_column))):
                eliminated = self._try_eliminate_small_table(
                    small_side, keep_side, small_col, keep_col, required)
                if eliminated is not None:
                    return eliminated

        left = self._lower(node.left, required)
        right = self._lower(node.right, required)

        left_col: ColumnRef = (edge.left_table, edge.left_column)
        right_col: ColumnRef = (edge.right_table, edge.right_column)
        left_card = self._estimated(left)
        right_card = self._estimated(right)

        if node.kind == "inner":
            # Index nested-loop join: tiny outer probing a huge base table.
            if (config.enable_index_nl_join and isinstance(right, PTableScan)
                    and not right.predicates
                    and self.schema.table(right.table).primary_key
                    == right_col[1]
                    and left_card < right_card * config.index_join_outer_fraction):
                out_columns = left.output_columns + right.output_columns
                return PIndexNLJoin(
                    left, right.table, self.catalog.row_count(right.table),
                    left_col, right_col, edge.fanout,
                    out_columns, self._width_of(out_columns))
            # Hash join: build on the smaller estimated side.
            if left_card <= right_card:
                build, probe = left, right
                build_col, probe_col = left_col, right_col
            else:
                build, probe = right, left
                build_col, probe_col = right_col, left_col
            out_columns = build.output_columns + probe.output_columns
            return PHashJoin(build, probe, build_col, probe_col, edge.fanout,
                             out_columns, self._width_of(out_columns),
                             stored_byte_width=build.output_byte_width)

        # Semi/anti joins: left side is the filter set, right side survives.
        cls = PSemiJoin if node.kind == "semi" else PAntiJoin
        out_columns = list(right.output_columns)
        build_width = self._column_width(*left_col)
        return cls(left, right, left_col, right_col, edge.fanout,
                   out_columns, self._width_of(out_columns),
                   stored_byte_width=build_width)

    def _try_eliminate_small_table(
            self, small_side: LogicalNode, keep_side: LogicalNode,
            small_col: ColumnRef, keep_col: ColumnRef,
            required: Dict[str, Set[str]]) -> Optional[PhysicalOperator]:
        """Replace a join with a tiny filtered table by IN predicates."""
        if not isinstance(small_side, LogicalScan):
            return None
        if keep_col[0] not in keep_side.tables():
            # The surviving side no longer contains the join column's
            # table (e.g. it was itself eliminated) — keep the join.
            return None
        table = small_side.table
        rows = self.catalog.row_count(table)
        if rows > self.config.small_table_threshold:
            return None
        # Columns of the small table must not be needed upstream (beyond
        # the join key and the scan's own filter columns).
        needed = set(required.get(table, set()))
        needed.discard(small_col[1])
        for predicate in small_side.predicates:
            needed -= _predicate_columns(predicate)
        if needed:
            return None
        # Qualifying keys of the small table under its filters.
        exact_keys = self._qualifying_keys(small_side, small_col)
        if exact_keys is None:
            return None
        lowered = self._lower(keep_side, required)
        keep_table, keep_column = keep_col
        predicates: List[Predicate] = []
        if len(exact_keys) > 1:
            predicates.append(BetweenPredicate(
                keep_table, keep_column, min(exact_keys), max(exact_keys)))
        predicates.append(InListPredicate(keep_table, keep_column, exact_keys))
        if isinstance(lowered, PTableScan):
            return PTableScan(
                lowered.table, lowered.predicates + predicates,
                lowered.correlation_factor, lowered.output_columns,
                lowered.output_byte_width, lowered.scan_byte_width)
        return PFilter(lowered, predicates)

    def _qualifying_keys(self, scan: LogicalScan,
                         key_col: ColumnRef) -> Optional[List[float]]:
        """Key values of a tiny table surviving its filters (computed at
        optimization time, like Umbra's early execution)."""
        stats = self.catalog.column_stats(key_col[0], key_col[1])
        n_keys = stats.true_distinct
        if n_keys > self.config.small_table_threshold:
            return None
        selectivity = 1.0
        for predicate in scan.predicates:
            selectivity *= predicate.true_selectivity(self.catalog)
        selectivity *= scan.correlation_factor
        n_qualifying = max(1, int(round(n_keys * min(1.0, selectivity))))
        dist = stats.distribution
        # Deterministic representative keys: spread across the domain.
        keys = sorted({dist.quantile((i + 0.5) / n_qualifying)
                       for i in range(n_qualifying)})
        return [float(k) for k in keys]

    def _lower_group_by(self, node: LogicalGroupBy,
                        required: Dict[str, Set[str]]) -> PhysicalOperator:
        child = self._lower(node.input, required)
        agg_columns: List[ColumnRef] = [
            (COMPUTED, f"agg_{i}") for i in range(len(node.aggregates))]
        if not node.group_columns:
            out_columns = agg_columns or [(COMPUTED, "agg_0")]
            return PSimpleAgg(child, node.aggregates, out_columns,
                              self._width_of(out_columns))
        out_columns = list(node.group_columns) + agg_columns
        return PGroupBy(child, node.group_columns, node.aggregates,
                        out_columns, self._width_of(out_columns))

    def _lower_project(self, node: LogicalProject,
                       required: Dict[str, Set[str]]) -> PhysicalOperator:
        child = self._lower(node.input, required)
        if not node.computed:
            # Pure column pruning is free in a push-based engine; the
            # pruning already happened via required-column analysis.
            return child
        out_columns = (list(node.columns)
                       + [(COMPUTED, c.name) for c in node.computed])
        return PMap(child, node.computed, out_columns,
                    self._width_of(out_columns))


def _predicate_columns(predicate) -> Set[str]:
    """Column names referenced by a predicate (including OR branches)."""
    columns = {predicate.column}
    for part in getattr(predicate, "parts", ()):
        columns |= _predicate_columns(part)
    inner = getattr(predicate, "inner", None)
    if inner is not None:
        columns |= _predicate_columns(inner)
    return columns


def _collect_required_columns(plan: LogicalNode) -> Dict[str, Set[str]]:
    """Per base table, the set of columns referenced anywhere in the query."""
    required: Dict[str, Set[str]] = {}

    def add(table: str, column: str) -> None:
        if table and table != COMPUTED:
            required.setdefault(table, set()).add(column)

    def add_qualified(name: Optional[str]) -> None:
        if name and "." in name:
            table, _, column = name.partition(".")
            add(table, column)

    for node in plan.walk():
        if isinstance(node, LogicalScan):
            for predicate in node.predicates:
                add(predicate.table, predicate.column)
        elif isinstance(node, LogicalJoin):
            add(node.edge.left_table, node.edge.left_column)
            add(node.edge.right_table, node.edge.right_column)
        elif isinstance(node, LogicalGroupBy):
            for table, column in node.group_columns:
                add(table, column)
            for aggregate in node.aggregates:
                add_qualified(aggregate.column)
        elif isinstance(node, (LogicalSort, LogicalTopK)):
            for table, column in node.keys:
                add(table, column)
        elif isinstance(node, LogicalProject):
            for table, column in node.columns:
                add(table, column)
            for computed in node.computed:
                for name in computed.input_columns:
                    add_qualified(name)
        elif isinstance(node, LogicalWindow):
            for table, column in (list(node.partition_columns)
                                  + list(node.order_columns)):
                add(table, column)
        elif isinstance(node, LogicalDistinct):
            for table, column in node.columns:
                add(table, column)
    return required
