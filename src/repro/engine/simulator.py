"""Analytic execution-cost simulator — the substrate's ground truth.

The paper measures real Umbra executions; offline we need a runtime
oracle with the same *learning problem shape*: per-pipeline times that
are nonlinear functions of tuple flow (cache-sensitive hash tables,
``n log n`` sorts, byte-proportional materialization, per-class
predicate costs) plus realistic run-to-run measurement noise.

The simulator always evaluates the **exact** cardinality model — it
plays the role of the real machine, which processes the actual tuples.
Prediction models only ever see the feature side.

Costs are expressed per tuple in seconds and were calibrated against the
vectorized executor (:mod:`repro.engine.executor`) at small scale
(see ``tests/test_simulator_vs_executor.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import PlanError
from ..rng import DEFAULT_SEED, derive_rng
from .cardinality import CardinalityModel, ExactCardinalityModel
from .catalog import Catalog
from .physical import (
    PAssertSingle,
    PFilter,
    PGroupBy,
    PhysicalPlan,
    PIndexNLJoin,
    PLimit,
    PMap,
    PSimpleAgg,
    PSort,
    PTableScan,
    PTopK,
    PWindow,
    _JoinBase,
)
from .pipelines import (
    Pipeline,
    StageFlow,
    compute_stage_flows,
    decompose_into_pipelines,
)
from .stages import OperatorType, Stage


@dataclass(frozen=True)
class CacheHierarchy:
    """Piecewise access-cost multipliers by working-set size.

    Between level boundaries the penalty is interpolated log-linearly;
    this is the nonlinearity that makes hash-heavy pipelines hard for
    naive linear cost models and easy for decision trees.
    """

    l1_bytes: float = 32 * 1024
    l2_bytes: float = 1024 * 1024
    l3_bytes: float = 32 * 1024 * 1024
    l1_penalty: float = 1.0
    l2_penalty: float = 1.6
    l3_penalty: float = 2.8
    dram_penalty: float = 6.0

    def penalty(self, working_set_bytes: float) -> float:
        points = [(self.l1_bytes, self.l1_penalty),
                  (self.l2_bytes, self.l2_penalty),
                  (self.l3_bytes, self.l3_penalty)]
        if working_set_bytes <= points[0][0]:
            return points[0][1]
        previous_size, previous_penalty = points[0]
        for size, penalty in points[1:] + [(self.l3_bytes * 8, self.dram_penalty)]:
            if working_set_bytes <= size:
                position = (math.log(working_set_bytes / previous_size)
                            / math.log(size / previous_size))
                return previous_penalty + position * (penalty - previous_penalty)
            previous_size, previous_penalty = size, penalty
        return self.dram_penalty


@dataclass(frozen=True)
class SimulatorConfig:
    """Per-tuple cost constants (seconds) of the simulated machine."""

    #: Overall machine speed multiplier (1.0 = the calibration machine).
    speed_factor: float = 1.0
    #: Fixed startup cost per pipeline (thread wakeup, state allocation).
    pipeline_startup: float = 2e-6
    #: Fixed cost per operator stage (code generation amortization).
    #: Folding all per-query overhead into pipelines keeps the paper's
    #: invariant that the query time is exactly the sum of its pipeline
    #: times.
    stage_overhead: float = 0.7e-6

    scan_tuple: float = 0.5e-9
    scan_byte: float = 0.06e-9
    predicate_eval: float = 0.6e-9
    map_operation: float = 0.5e-9
    emit_tuple: float = 0.4e-9

    hash_insert: float = 3.0e-9
    hash_insert_byte: float = 0.05e-9
    hash_probe: float = 2.2e-9
    agg_update: float = 1.2e-9
    agg_function: float = 0.5e-9
    sort_compare: float = 1.1e-9
    window_function: float = 1.6e-9
    index_lookup: float = 7.0e-9
    nested_loop_pair: float = 0.35e-9
    materialize_byte: float = 0.08e-9

    #: Lognormal sigma of per-run multiplicative measurement noise,
    #: calibrated so ~90 % of repeated runs deviate by < 13 % (Table 3).
    noise_sigma: float = 0.045
    #: Additive per-run jitter upper bound (scheduler wakeups etc.).
    jitter: float = 2e-6

    cache: CacheHierarchy = field(default_factory=CacheHierarchy)


@dataclass
class SimulatedExecution:
    """Result of simulating one query execution.

    ``pipeline_run_times`` has shape ``(n_runs, n_pipelines)``: the noisy
    per-pipeline measurements of every repetition, mirroring what
    ``explain analyze`` timings on a real system would provide.
    """

    plan: PhysicalPlan
    pipeline_times: List[float]
    pipelines: List[Pipeline]
    total_time: float
    run_times: List[float]
    pipeline_run_times: np.ndarray

    @property
    def median_run_time(self) -> float:
        return float(np.median(self.run_times))

    def median_pipeline_times(self, n_runs: Optional[int] = None) -> np.ndarray:
        """Per-pipeline medians over the first ``n_runs`` repetitions."""
        runs = self.pipeline_run_times
        if n_runs is not None:
            runs = runs[:n_runs]
        return np.median(runs, axis=0)


class ExecutionSimulator:
    """Produces ground-truth running times for physical plans."""

    def __init__(self, catalog: Catalog,
                 config: Optional[SimulatorConfig] = None,
                 seed: int = DEFAULT_SEED):
        self.catalog = catalog
        self.config = config or SimulatorConfig()
        self.seed = seed
        self._exact = ExactCardinalityModel(catalog)

    # -- noise-free expected times ----------------------------------------

    def pipeline_time(self, pipeline: Pipeline,
                      model: Optional[CardinalityModel] = None) -> float:
        """Expected (noise-free) execution time of one pipeline."""
        model = model or self._exact
        flows = compute_stage_flows(pipeline, model)
        total = self.config.pipeline_startup
        for flow in flows:
            total += self._stage_time(flow) + self.config.stage_overhead
        return total / self.config.speed_factor

    def query_time(self, plan: PhysicalPlan,
                   model: Optional[CardinalityModel] = None) -> float:
        """Expected (noise-free) execution time: the sum of its pipelines.

        ``model`` overrides the cardinality source (default: the exact
        model over this simulator's catalog) — used e.g. to execute
        forced join orders under a join-graph oracle.
        """
        pipelines = decompose_into_pipelines(plan)
        return sum(self.pipeline_time(p, model) for p in pipelines)

    # -- noisy measurements --------------------------------------------------

    def execute(self, plan: PhysicalPlan, n_runs: int = 10,
                run_seed: int = 0) -> SimulatedExecution:
        """Simulate ``n_runs`` measured executions of ``plan``.

        Mirrors the paper's benchmarking protocol (Section 4.3): each
        query is run repeatedly and the median is used for training.
        """
        if n_runs < 1:
            raise PlanError("need at least one run")
        pipelines = decompose_into_pipelines(plan)
        pipeline_times = np.array([self.pipeline_time(p) for p in pipelines])
        expected = float(pipeline_times.sum())
        rng = derive_rng(self.seed, "runs", plan.database, plan.query_name,
                         run_seed)
        # Each run has a shared machine-state factor plus independent
        # per-pipeline noise (cache state, allocator behaviour, ...).
        sigma = self.config.noise_sigma
        run_factor = np.exp(rng.normal(0.0, sigma * 0.7, size=(n_runs, 1)))
        pipe_factor = np.exp(rng.normal(0.0, sigma * 0.7,
                                        size=(n_runs, len(pipelines))))
        pipeline_run_times = pipeline_times[None, :] * run_factor * pipe_factor
        jitter = rng.uniform(0.0, self.config.jitter, size=n_runs)
        run_times = pipeline_run_times.sum(axis=1) + jitter
        return SimulatedExecution(plan, pipeline_times.tolist(), pipelines,
                                  expected, run_times.tolist(),
                                  pipeline_run_times)

    # -- per-stage cost model ---------------------------------------------

    def _stage_time(self, flow: StageFlow) -> float:
        op = flow.ref.operator
        stage = flow.ref.stage
        cfg = self.config
        n_in = flow.tuples_in
        n_out = flow.tuples_out

        if stage is Stage.SCAN:
            if isinstance(op, PTableScan):
                time = n_in * (cfg.scan_tuple + cfg.scan_byte * op.scan_byte_width)
                time += self._predicate_time(op.predicates, n_in)
                time += n_out * cfg.emit_tuple
                return time
            # Scanning materialized state.
            return n_in * (cfg.scan_tuple
                           + cfg.scan_byte * flow.stored_byte_width) \
                + n_out * cfg.emit_tuple

        if stage is Stage.PASS_THROUGH:
            if isinstance(op, PFilter):
                return (self._predicate_time(op.predicates, n_in)
                        + n_out * cfg.emit_tuple)
            if isinstance(op, PMap):
                return n_in * cfg.map_operation * op.n_operations \
                    + n_out * cfg.emit_tuple
            if isinstance(op, PIndexNLJoin):
                index_bytes = (op.inner_rows_hint
                               * self._index_entry_width(op))
                penalty = cfg.cache.penalty(max(index_bytes, 1.0))
                return n_in * cfg.index_lookup * penalty \
                    + n_out * cfg.emit_tuple
            if isinstance(op, (PLimit, PAssertSingle)):
                return n_in * cfg.emit_tuple
            raise PlanError(f"no cost rule for pass-through {op.op_type}")

        if stage is Stage.BUILD:
            return self._build_time(flow)

        if stage is Stage.PROBE:
            state_bytes = max(flow.state_cardinality * flow.stored_byte_width, 1.0)
            if op.op_type in (OperatorType.CROSS_PRODUCT, OperatorType.BNL_JOIN):
                pairs = n_in * flow.state_cardinality
                return pairs * cfg.nested_loop_pair + n_out * cfg.emit_tuple
            penalty = cfg.cache.penalty(state_bytes)
            return n_in * cfg.hash_probe * penalty + n_out * cfg.emit_tuple

        raise PlanError(f"unknown stage {stage}")  # pragma: no cover

    def _build_time(self, flow: StageFlow) -> float:
        op = flow.ref.operator
        cfg = self.config
        n_in = flow.tuples_in
        materialized = flow.materialized_cardinality
        width = flow.stored_byte_width
        state_bytes = max(materialized * width, 1.0)
        penalty = cfg.cache.penalty(state_bytes)

        if isinstance(op, _JoinBase) or op.op_type in (
                OperatorType.CROSS_PRODUCT, OperatorType.UNION,
                OperatorType.MATERIALIZE):
            per_tuple = cfg.hash_insert * penalty + cfg.hash_insert_byte * width
            if op.op_type in (OperatorType.UNION, OperatorType.MATERIALIZE):
                per_tuple = cfg.materialize_byte * width + cfg.emit_tuple
            return n_in * per_tuple

        if isinstance(op, PGroupBy):
            per_tuple = (cfg.agg_update * penalty
                         + cfg.agg_function * len(op.aggregates))
            return n_in * per_tuple + materialized * cfg.materialize_byte * width

        if isinstance(op, PSimpleAgg):
            return n_in * cfg.agg_function * max(1, len(op.aggregates))

        if isinstance(op, (PSort, PWindow)):
            comparisons = math.log2(max(n_in, 2.0))
            keys = len(op.keys) if isinstance(op, PSort) else max(
                1, len(op.order_columns))
            time = n_in * cfg.sort_compare * comparisons * min(keys, 3) \
                * max(1.0, penalty * 0.5)
            time += n_in * cfg.materialize_byte * width
            if isinstance(op, PWindow):
                time += n_in * cfg.window_function
            return time

        if isinstance(op, PTopK):
            heap_size = min(n_in, float(op.k))
            comparisons = math.log2(max(heap_size, 2.0))
            return n_in * cfg.sort_compare * comparisons

        if op.op_type is OperatorType.DISTINCT:
            return n_in * (cfg.agg_update * penalty) \
                + materialized * cfg.materialize_byte * width

        raise PlanError(f"no cost rule for build of {op.op_type}")

    def _predicate_time(self, predicates: Sequence, n_scanned: float) -> float:
        """Cost of short-circuit conjunction evaluation during a scan."""
        total = 0.0
        surviving_fraction = 1.0
        for predicate in predicates:
            weight = predicate.evaluation_cost_weight()
            total += (n_scanned * surviving_fraction
                      * self.config.predicate_eval * weight)
            surviving_fraction *= predicate.true_selectivity(self.catalog)
        return total

    def _index_entry_width(self, op: PIndexNLJoin) -> float:
        return 16.0  # key + row pointer per index entry


def measure_query(simulator: ExecutionSimulator, plan: PhysicalPlan,
                  n_runs: int = 10, run_seed: int = 0) -> SimulatedExecution:
    """Convenience wrapper matching the paper's benchmark protocol."""
    return simulator.execute(plan, n_runs=n_runs, run_seed=run_seed)
