"""Physical query plans: 19 operator types with explicit stages.

Physical plans are what T3 consumes (Section 2.1: "T3 relies on
physical query plans for detailed information about queries"). Every
node carries the column set and byte widths of the tuples it produces
and — for materializing operators — stores, so the feature extractor
can read sizes directly off the plan.

Cardinalities are *not* stored on nodes: they are provided by a
:class:`~repro.engine.cardinality.CardinalityModel`, so the same plan
can be featurized with exact, estimated, or distorted cardinalities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import PlanError
from .expressions import Aggregate, ComputedColumn, Predicate
from .stages import OperatorType, Stage, operator_stages

ColumnRef = Tuple[str, str]  # (table, column)


class PhysicalOperator:
    """Base class of all physical operators."""

    op_type: OperatorType

    def __init__(self, children: Sequence["PhysicalOperator"],
                 output_columns: Sequence[ColumnRef],
                 output_byte_width: int):
        expected = 2 if self.arity == 2 else (0 if self.arity == 0 else 1)
        if len(children) != expected:
            raise PlanError(
                f"{self.op_type.value} expects {expected} children, "
                f"got {len(children)}")
        self.children: List[PhysicalOperator] = list(children)
        self.output_columns: List[ColumnRef] = list(output_columns)
        self.output_byte_width = int(output_byte_width)
        self.node_id: Optional[int] = None  # assigned by PhysicalPlan

    #: 0 for leaves, 1 for unary, 2 for binary operators.
    arity: int = 1

    @property
    def stages(self) -> Tuple[Stage, ...]:
        return operator_stages(self.op_type)

    def walk(self) -> Iterator["PhysicalOperator"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(id={self.node_id})"


class PTableScan(PhysicalOperator):
    """Scan of a base table with pushed-down predicate conjunction.

    ``scan_byte_width`` is the width of the columns actually read (after
    projection pushdown); predicates are evaluated in list order, which
    determines the per-class evaluation percentages (Section 3,
    "Table Scan Operators").
    """

    op_type = OperatorType.TABLE_SCAN
    arity = 0

    def __init__(self, table: str, predicates: Sequence[Predicate],
                 correlation_factor: float,
                 output_columns: Sequence[ColumnRef], output_byte_width: int,
                 scan_byte_width: int):
        super().__init__([], output_columns, output_byte_width)
        self.table = table
        self.predicates = list(predicates)
        self.correlation_factor = float(correlation_factor)
        self.scan_byte_width = int(scan_byte_width)


class PFilter(PhysicalOperator):
    """Predicates that could not be pushed into a scan."""

    op_type = OperatorType.FILTER

    def __init__(self, child: PhysicalOperator, predicates: Sequence[Predicate],
                 correlation_factor: float = 1.0):
        if not predicates:
            raise PlanError("filter needs at least one predicate")
        super().__init__([child], child.output_columns, child.output_byte_width)
        self.predicates = list(predicates)
        self.correlation_factor = float(correlation_factor)


class PMap(PhysicalOperator):
    """Computed projection expressions."""

    op_type = OperatorType.MAP

    def __init__(self, child: PhysicalOperator,
                 computed: Sequence[ComputedColumn],
                 output_columns: Sequence[ColumnRef], output_byte_width: int):
        super().__init__([child], output_columns, output_byte_width)
        if not computed:
            raise PlanError("map needs at least one computed column")
        self.computed = list(computed)

    @property
    def n_operations(self) -> int:
        return sum(c.n_operations for c in self.computed)


class _JoinBase(PhysicalOperator):
    """Shared fields of build/probe joins: children[0] builds, children[1] probes."""

    arity = 2

    def __init__(self, build: PhysicalOperator, probe: PhysicalOperator,
                 build_column: ColumnRef, probe_column: ColumnRef,
                 fanout: float,
                 output_columns: Sequence[ColumnRef], output_byte_width: int,
                 stored_byte_width: int):
        super().__init__([build, probe], output_columns, output_byte_width)
        self.build_column = build_column
        self.probe_column = probe_column
        self.fanout = float(fanout)
        self.stored_byte_width = int(stored_byte_width)

    @property
    def build_child(self) -> PhysicalOperator:
        return self.children[0]

    @property
    def probe_child(self) -> PhysicalOperator:
        return self.children[1]


class PHashJoin(_JoinBase):
    op_type = OperatorType.HASH_JOIN


class PSemiJoin(_JoinBase):
    op_type = OperatorType.SEMI_JOIN


class PAntiJoin(_JoinBase):
    op_type = OperatorType.ANTI_JOIN


class PBNLJoin(_JoinBase):
    op_type = OperatorType.BNL_JOIN


class PCrossProduct(PhysicalOperator):
    op_type = OperatorType.CROSS_PRODUCT
    arity = 2

    def __init__(self, build: PhysicalOperator, probe: PhysicalOperator,
                 output_columns: Sequence[ColumnRef], output_byte_width: int):
        super().__init__([build, probe], output_columns, output_byte_width)
        self.stored_byte_width = build.output_byte_width

    @property
    def build_child(self) -> PhysicalOperator:
        return self.children[0]

    @property
    def probe_child(self) -> PhysicalOperator:
        return self.children[1]


class PIndexNLJoin(PhysicalOperator):
    """Index nested-loop join: outer tuples probe an index on a base table."""

    op_type = OperatorType.INDEX_NL_JOIN

    def __init__(self, outer: PhysicalOperator, inner_table: str,
                 inner_rows_hint: int,
                 outer_column: ColumnRef, inner_column: ColumnRef,
                 fanout: float,
                 output_columns: Sequence[ColumnRef], output_byte_width: int):
        super().__init__([outer], output_columns, output_byte_width)
        self.inner_table = inner_table
        self.inner_rows_hint = int(inner_rows_hint)
        self.outer_column = outer_column
        self.inner_column = inner_column
        self.fanout = float(fanout)


class PGroupBy(PhysicalOperator):
    op_type = OperatorType.GROUP_BY

    def __init__(self, child: PhysicalOperator, group_columns: Sequence[ColumnRef],
                 aggregates: Sequence[Aggregate],
                 output_columns: Sequence[ColumnRef], output_byte_width: int):
        super().__init__([child], output_columns, output_byte_width)
        if not group_columns:
            raise PlanError("group-by needs keys (use SimpleAgg otherwise)")
        self.group_columns = list(group_columns)
        self.aggregates = list(aggregates)
        self.stored_byte_width = output_byte_width


class PSimpleAgg(PhysicalOperator):
    """Aggregation without group keys: always one output row."""

    op_type = OperatorType.SIMPLE_AGG

    def __init__(self, child: PhysicalOperator, aggregates: Sequence[Aggregate],
                 output_columns: Sequence[ColumnRef], output_byte_width: int):
        super().__init__([child], output_columns, output_byte_width)
        if not aggregates:
            raise PlanError("simple aggregation needs aggregates")
        self.aggregates = list(aggregates)
        self.stored_byte_width = output_byte_width


class PSort(PhysicalOperator):
    op_type = OperatorType.SORT

    def __init__(self, child: PhysicalOperator, keys: Sequence[ColumnRef]):
        super().__init__([child], child.output_columns, child.output_byte_width)
        if not keys:
            raise PlanError("sort needs at least one key")
        self.keys = list(keys)
        self.stored_byte_width = child.output_byte_width


class PTopK(PhysicalOperator):
    op_type = OperatorType.TOP_K

    def __init__(self, child: PhysicalOperator, keys: Sequence[ColumnRef], k: int):
        super().__init__([child], child.output_columns, child.output_byte_width)
        if k < 1:
            raise PlanError("top-k needs k >= 1")
        self.keys = list(keys)
        self.k = int(k)
        self.stored_byte_width = child.output_byte_width


class PLimit(PhysicalOperator):
    op_type = OperatorType.LIMIT

    def __init__(self, child: PhysicalOperator, k: int):
        super().__init__([child], child.output_columns, child.output_byte_width)
        if k < 1:
            raise PlanError("limit needs k >= 1")
        self.k = int(k)


class PWindow(PhysicalOperator):
    op_type = OperatorType.WINDOW

    def __init__(self, child: PhysicalOperator,
                 partition_columns: Sequence[ColumnRef],
                 order_columns: Sequence[ColumnRef], function: str,
                 output_columns: Sequence[ColumnRef], output_byte_width: int):
        super().__init__([child], output_columns, output_byte_width)
        self.partition_columns = list(partition_columns)
        self.order_columns = list(order_columns)
        self.function = function
        self.stored_byte_width = child.output_byte_width


class PDistinct(PhysicalOperator):
    op_type = OperatorType.DISTINCT

    def __init__(self, child: PhysicalOperator, columns: Sequence[ColumnRef]):
        super().__init__([child], child.output_columns, child.output_byte_width)
        if not columns:
            raise PlanError("distinct needs at least one column")
        self.columns = list(columns)
        self.stored_byte_width = child.output_byte_width


class PMaterialize(PhysicalOperator):
    """Explicit temp materialization (result buffering, CTEs)."""

    op_type = OperatorType.MATERIALIZE

    def __init__(self, child: PhysicalOperator):
        super().__init__([child], child.output_columns, child.output_byte_width)
        self.stored_byte_width = child.output_byte_width


class PUnion(PhysicalOperator):
    """Bag union: both inputs are buffered, then scanned out."""

    op_type = OperatorType.UNION
    arity = 2

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        super().__init__([left, right], left.output_columns,
                         left.output_byte_width)
        self.stored_byte_width = left.output_byte_width


class PAssertSingle(PhysicalOperator):
    """Runtime check that the input has exactly one row (scalar subqueries)."""

    op_type = OperatorType.ASSERT_SINGLE

    def __init__(self, child: PhysicalOperator):
        super().__init__([child], child.output_columns, child.output_byte_width)


@dataclass
class PhysicalPlan:
    """A rooted physical plan plus identifying metadata."""

    root: PhysicalOperator
    database: str
    query_name: str = ""

    def __post_init__(self) -> None:
        for node_id, node in enumerate(self.root.walk()):
            node.node_id = node_id

    def operators(self) -> List[PhysicalOperator]:
        return list(self.root.walk())

    @property
    def n_operators(self) -> int:
        return sum(1 for _ in self.root.walk())

    def base_tables(self) -> List[str]:
        tables = [op.table for op in self.root.walk()
                  if isinstance(op, PTableScan)]
        tables += [op.inner_table for op in self.root.walk()
                   if isinstance(op, PIndexNLJoin)]
        return tables
