"""Catalog: per-instance statistics, true and as seen by the optimizer.

The catalog holds, per column, the generative :class:`Distribution`
(the truth, used by the exact cardinality model and the data generator)
*and* the coarse statistics an optimizer would have collected
(min / max / approximate distinct count). Estimated distinct counts are
the true counts multiplied by a deterministic per-column lognormal error
factor, mimicking sampling-based ANALYZE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

import numpy as np

from ..errors import SchemaError
from ..rng import derive_rng
from .distributions import Distribution
from .schema import DatabaseSchema, qualified


@dataclass
class ColumnStats:
    """Statistics of one column.

    ``distribution`` is the generative truth. ``estimated_distinct`` is
    what the optimizer believes (true distinct count perturbed by a
    sampling-style error factor).
    """

    distribution: Distribution
    estimated_distinct: float

    @property
    def min_value(self) -> float:
        return self.distribution.min_value

    @property
    def max_value(self) -> float:
        return self.distribution.max_value

    @property
    def true_distinct(self) -> int:
        return self.distribution.n_distinct


@dataclass
class TableStats:
    """Statistics of one table. Row counts are exact (real systems know them)."""

    row_count: int

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise SchemaError("row_count must be non-negative")


class Catalog:
    """Statistics container for one database instance."""

    #: Lognormal sigma of the distinct-count estimation error.
    DISTINCT_ERROR_SIGMA = 0.25

    def __init__(self, schema: DatabaseSchema, seed: int = 0):
        self.schema = schema
        self.seed = seed
        self._tables: Dict[str, TableStats] = {}
        self._columns: Dict[str, ColumnStats] = {}

    # -- registration ----------------------------------------------------

    def set_table_stats(self, table: str, row_count: int) -> None:
        self.schema.table(table)  # validates existence
        self._tables[table] = TableStats(row_count)

    def set_column_distribution(self, table: str, column: str,
                                distribution: Distribution) -> None:
        self.schema.table(table).column(column)  # validates existence
        error_rng = derive_rng(self.seed, "distinct-error", table, column)
        factor = float(np.exp(error_rng.normal(0.0, self.DISTINCT_ERROR_SIGMA)))
        estimated = max(1.0, distribution.n_distinct * factor)
        self._columns[qualified(table, column)] = ColumnStats(
            distribution=distribution, estimated_distinct=estimated)

    # -- lookup ----------------------------------------------------------

    def table_stats(self, table: str) -> TableStats:
        try:
            return self._tables[table]
        except KeyError:
            raise SchemaError(f"no statistics for table {table!r}") from None

    def row_count(self, table: str) -> int:
        return self.table_stats(table).row_count

    def column_stats(self, table: str, column: str) -> ColumnStats:
        try:
            return self._columns[qualified(table, column)]
        except KeyError:
            raise SchemaError(
                f"no statistics for column {table}.{column}") from None

    def has_column_stats(self, table: str, column: str) -> bool:
        return qualified(table, column) in self._columns

    def tables_with_stats(self) -> Iterable[str]:
        return self._tables.keys()

    def validate_complete(self) -> None:
        """Raise if any table or column lacks statistics."""
        for name, table in self.schema.tables.items():
            if name not in self._tables:
                raise SchemaError(f"missing table stats for {name!r}")
            for column in table.columns:
                if qualified(name, column.name) not in self._columns:
                    raise SchemaError(
                        f"missing column stats for {name}.{column.name}")

    def total_rows(self) -> int:
        return sum(stats.row_count for stats in self._tables.values())
