"""SQL data types and their physical properties."""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..errors import SchemaError


class DataType(Enum):
    """Column data types supported by the engine.

    The byte widths match a typical columnar in-memory layout and feed
    the *size* features of T3 (bytes per materialized tuple).
    """

    BOOL = "bool"
    INT = "int"
    BIGINT = "bigint"
    FLOAT = "float"
    DECIMAL = "decimal"
    DATE = "date"
    CHAR = "char"
    VARCHAR = "varchar"

    @property
    def byte_width(self) -> int:
        """Bytes one value of this type occupies in a materialized tuple."""
        return _BYTE_WIDTHS[self]

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.BIGINT, DataType.FLOAT,
                        DataType.DECIMAL, DataType.DATE)

    @property
    def is_string(self) -> bool:
        return self in (DataType.CHAR, DataType.VARCHAR)

    @property
    def numpy_dtype(self) -> np.dtype:
        """Dtype used by the vectorized executor to store this column."""
        return _NUMPY_DTYPES[self]

    @classmethod
    def parse(cls, name: str) -> "DataType":
        """Parse a SQL-ish type name (``integer``, ``numeric``, ``text``, ...)."""
        key = name.strip().lower().split("(")[0]
        try:
            return _SQL_ALIASES[key]
        except KeyError:
            raise SchemaError(f"unknown SQL type {name!r}") from None


_BYTE_WIDTHS = {
    DataType.BOOL: 1,
    DataType.INT: 4,
    DataType.BIGINT: 8,
    DataType.FLOAT: 8,
    DataType.DECIMAL: 8,
    DataType.DATE: 4,
    DataType.CHAR: 8,
    DataType.VARCHAR: 16,  # pointer + length in a columnar layout
}

_NUMPY_DTYPES = {
    DataType.BOOL: np.dtype(np.bool_),
    DataType.INT: np.dtype(np.int64),
    DataType.BIGINT: np.dtype(np.int64),
    DataType.FLOAT: np.dtype(np.float64),
    DataType.DECIMAL: np.dtype(np.float64),
    DataType.DATE: np.dtype(np.int64),      # days since epoch
    DataType.CHAR: np.dtype(np.int64),      # dictionary-encoded code
    DataType.VARCHAR: np.dtype(np.int64),   # dictionary-encoded code
}

_SQL_ALIASES = {
    "bool": DataType.BOOL,
    "boolean": DataType.BOOL,
    "int": DataType.INT,
    "integer": DataType.INT,
    "smallint": DataType.INT,
    "bigint": DataType.BIGINT,
    "serial": DataType.INT,
    "float": DataType.FLOAT,
    "real": DataType.FLOAT,
    "double": DataType.FLOAT,
    "decimal": DataType.DECIMAL,
    "numeric": DataType.DECIMAL,
    "money": DataType.DECIMAL,
    "date": DataType.DATE,
    "timestamp": DataType.DATE,
    "time": DataType.DATE,
    "char": DataType.CHAR,
    "character": DataType.CHAR,
    "varchar": DataType.VARCHAR,
    "text": DataType.VARCHAR,
    "string": DataType.VARCHAR,
}
