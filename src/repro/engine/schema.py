"""Relational schemas: columns, tables, databases, join edges.

A :class:`DatabaseSchema` is the static shape of a database *instance*:
tables, typed columns, declared primary/foreign keys, and the join edges
the query generator may use. Statistics live separately in
:mod:`repro.engine.catalog` so that the "truth" (generative data model)
and what the optimizer believes can diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import SchemaError
from .types import DataType


@dataclass(frozen=True)
class Column:
    """A typed column of a table."""

    name: str
    dtype: DataType

    @property
    def byte_width(self) -> int:
        return self.dtype.byte_width


class TableSchema:
    """A named table with ordered, uniquely named columns."""

    def __init__(self, name: str, columns: Iterable[Column],
                 primary_key: Optional[str] = None):
        self.name = name
        self.columns: List[Column] = list(columns)
        if not self.columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")
        self._by_name: Dict[str, Column] = {c.name: c for c in self.columns}
        if primary_key is not None and primary_key not in self._by_name:
            raise SchemaError(
                f"primary key {primary_key!r} is not a column of {name!r}")
        self.primary_key = primary_key

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    @property
    def row_byte_width(self) -> int:
        """Bytes of one full-width tuple of this table."""
        return sum(c.byte_width for c in self.columns)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TableSchema({self.name!r}, {len(self.columns)} columns)"


@dataclass(frozen=True)
class JoinEdge:
    """A declared joinable column pair between two tables.

    ``fanout`` describes the *true* average number of matching rows on
    the many side per row of the one side (1.0 for a clean key/foreign
    key edge); the estimated cardinality model never sees it.
    """

    left_table: str
    left_column: str
    right_table: str
    right_column: str
    fanout: float = 1.0

    def reversed(self) -> "JoinEdge":
        return JoinEdge(self.right_table, self.right_column,
                        self.left_table, self.left_column, self.fanout)

    def touches(self, table: str) -> bool:
        return table in (self.left_table, self.right_table)


class DatabaseSchema:
    """A database instance's schema: tables plus declared join edges."""

    def __init__(self, name: str, tables: Iterable[TableSchema],
                 join_edges: Iterable[JoinEdge] = ()):
        self.name = name
        self.tables: Dict[str, TableSchema] = {}
        for table in tables:
            if table.name in self.tables:
                raise SchemaError(f"duplicate table {table.name!r}")
            self.tables[table.name] = table
        self.join_edges: List[JoinEdge] = []
        for edge in join_edges:
            self._check_edge(edge)
            self.join_edges.append(edge)

    def _check_edge(self, edge: JoinEdge) -> None:
        for table_name, column_name in ((edge.left_table, edge.left_column),
                                        (edge.right_table, edge.right_column)):
            table = self.table(table_name)
            table.column(column_name)

    def table(self, name: str) -> TableSchema:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(
                f"database {self.name!r} has no table {name!r}") from None

    @property
    def table_names(self) -> List[str]:
        return list(self.tables)

    def edges_for(self, table: str) -> List[JoinEdge]:
        """All join edges touching ``table`` (as stored, not normalized)."""
        return [e for e in self.join_edges if e.touches(table)]

    def edge_between(self, left: str, right: str) -> Optional[JoinEdge]:
        """The first declared edge connecting two tables, oriented left→right."""
        for edge in self.join_edges:
            if edge.left_table == left and edge.right_table == right:
                return edge
            if edge.left_table == right and edge.right_table == left:
                return edge.reversed()
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return (f"DatabaseSchema({self.name!r}, {len(self.tables)} tables, "
                f"{len(self.join_edges)} join edges)")


def qualified(table: str, column: str) -> str:
    """Canonical ``table.column`` spelling used across plans and features."""
    return f"{table}.{column}"


def split_qualified(name: str) -> Tuple[str, str]:
    """Inverse of :func:`qualified`."""
    table, sep, column = name.partition(".")
    if not sep:
        raise SchemaError(f"{name!r} is not a qualified column name")
    return table, column
