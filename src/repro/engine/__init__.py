"""Umbra-equivalent relational query engine substrate.

T3 predicts execution times of Umbra [36], a compiling push-based
relational database system. Umbra is not available, so this package
provides the substrate T3 needs:

* a typed schema/catalog layer with table and column statistics
  (:mod:`repro.engine.schema`, :mod:`repro.engine.catalog`),
* scalar expressions with true and estimated selectivities
  (:mod:`repro.engine.expressions`),
* logical plans and a rule-based optimizer producing physical plans
  (:mod:`repro.engine.logical`, :mod:`repro.engine.optimizer`),
* 19 physical operators with Umbra-style operator *stages*
  (:mod:`repro.engine.physical`, :mod:`repro.engine.stages`),
* pipeline decomposition of physical plans — the plan representation T3
  is built on (:mod:`repro.engine.pipelines`),
* exact / estimated / artificially-distorted cardinality models
  (:mod:`repro.engine.cardinality`),
* a vectorized in-memory executor that actually runs plans on numpy
  tables (:mod:`repro.engine.executor`), and
* an analytic cost simulator calibrated against the executor that
  produces ground-truth running times at any scale
  (:mod:`repro.engine.simulator`).
"""

from .types import DataType
from .schema import Column, TableSchema, DatabaseSchema
from .catalog import ColumnStats, TableStats, Catalog
from .stages import Stage
from .pipelines import Pipeline, StageRef, decompose_into_pipelines
from .cardinality import (
    CardinalityModel,
    ExactCardinalityModel,
    EstimatedCardinalityModel,
    DistortedCardinalityModel,
)
from .simulator import ExecutionSimulator, SimulatorConfig
from .optimizer import Optimizer, OptimizerConfig

__all__ = [
    "DataType",
    "Column",
    "TableSchema",
    "DatabaseSchema",
    "ColumnStats",
    "TableStats",
    "Catalog",
    "Stage",
    "Pipeline",
    "StageRef",
    "decompose_into_pipelines",
    "CardinalityModel",
    "ExactCardinalityModel",
    "EstimatedCardinalityModel",
    "DistortedCardinalityModel",
    "ExecutionSimulator",
    "SimulatorConfig",
    "Optimizer",
    "OptimizerConfig",
]
