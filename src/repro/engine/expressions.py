"""Scalar expressions: filter predicates, arithmetic, and aggregates.

Predicates know three things:

* how to **evaluate** themselves on concrete column arrays (for the real
  executor),
* their **true selectivity** against the catalog's generative
  distributions (for the exact cardinality model), and
* their **estimated selectivity** under textbook uniformity /
  independence / default-guess rules (for the estimated model).

Every predicate also reports an :class:`ExpressionKind`, which drives
the table-scan expression features of T3 (Section 3: comparison, like,
between, in, and "other").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ExpressionError
from .catalog import Catalog


class ExpressionKind(Enum):
    """Predicate classes with dedicated table-scan features (Section 3)."""

    COMPARISON = "comparison"
    BETWEEN = "between"
    IN_LIST = "in"
    LIKE = "like"
    OTHER = "other"


class ComparisonOp(Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


#: Default selectivity guess for LIKE predicates (textbook constant).
DEFAULT_LIKE_SELECTIVITY = 0.05

#: Relative per-tuple evaluation cost of each predicate class, used by
#: the execution simulator. IN lists and LIKE matching are more
#: expensive than plain comparisons.
EVALUATION_COST_WEIGHT: Dict[ExpressionKind, float] = {
    ExpressionKind.COMPARISON: 1.0,
    ExpressionKind.BETWEEN: 1.4,
    ExpressionKind.IN_LIST: 2.2,
    ExpressionKind.LIKE: 6.0,
    ExpressionKind.OTHER: 2.0,
}


class Predicate:
    """Base class for boolean row predicates over a single table."""

    table: str
    column: str
    kind: ExpressionKind

    def true_selectivity(self, catalog: Catalog) -> float:
        raise NotImplementedError

    def estimated_selectivity(self, catalog: Catalog) -> float:
        raise NotImplementedError

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        """Boolean mask over the rows in ``columns`` (executor path)."""
        raise NotImplementedError

    def true_distinct_fraction(self, catalog: Catalog) -> float:
        """Fraction of the column's *distinct values* that satisfy this
        predicate (used to propagate domain restrictions into group
        counts). Defaults to the row selectivity."""
        return self.true_selectivity(catalog)

    def evaluation_cost_weight(self) -> float:
        return EVALUATION_COST_WEIGHT[self.kind]

    def _column_array(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        try:
            return columns[self.column]
        except KeyError:
            raise ExpressionError(
                f"column {self.column!r} not present in batch") from None


@dataclass
class ComparisonPredicate(Predicate):
    """``column <op> literal``."""

    table: str
    column: str
    op: ComparisonOp
    value: float

    def __post_init__(self) -> None:
        self.kind = ExpressionKind.COMPARISON

    def true_selectivity(self, catalog: Catalog) -> float:
        dist = catalog.column_stats(self.table, self.column).distribution
        le = dist.selectivity_le(self.value)
        eq = dist.selectivity_eq(self.value)
        if self.op is ComparisonOp.EQ:
            return eq
        if self.op is ComparisonOp.NE:
            return 1.0 - eq
        if self.op is ComparisonOp.LE:
            return le
        if self.op is ComparisonOp.LT:
            return le - eq
        if self.op is ComparisonOp.GE:
            return 1.0 - (le - eq)
        return 1.0 - le  # GT

    def estimated_selectivity(self, catalog: Catalog) -> float:
        stats = catalog.column_stats(self.table, self.column)
        if self.op is ComparisonOp.EQ:
            return min(1.0, 1.0 / stats.estimated_distinct)
        if self.op is ComparisonOp.NE:
            return max(0.0, 1.0 - 1.0 / stats.estimated_distinct)
        span = stats.max_value - stats.min_value
        if span <= 0:
            return 0.5
        fraction = (self.value - stats.min_value) / span
        fraction = min(max(fraction, 0.0), 1.0)
        if self.op in (ComparisonOp.LE, ComparisonOp.LT):
            return fraction
        return 1.0 - fraction  # GE / GT

    def true_distinct_fraction(self, catalog: Catalog) -> float:
        stats = catalog.column_stats(self.table, self.column)
        n_distinct = stats.true_distinct
        if self.op is ComparisonOp.EQ:
            return 1.0 / n_distinct
        if self.op is ComparisonOp.NE:
            return 1.0 - 1.0 / n_distinct
        # Integer-coded domains: distinct values are evenly spaced, so the
        # qualifying fraction follows the value range, not the row mass.
        below = (math.floor(self.value) - stats.min_value + 1) / n_distinct
        below = min(max(below, 0.0), 1.0)
        if self.op in (ComparisonOp.LE, ComparisonOp.LT):
            return below
        return 1.0 - below  # GE / GT

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        data = self._column_array(columns)
        ops = {
            ComparisonOp.EQ: np.equal, ComparisonOp.NE: np.not_equal,
            ComparisonOp.LT: np.less, ComparisonOp.LE: np.less_equal,
            ComparisonOp.GT: np.greater, ComparisonOp.GE: np.greater_equal,
        }
        return ops[self.op](data, self.value)


@dataclass
class BetweenPredicate(Predicate):
    """``column BETWEEN low AND high``."""

    table: str
    column: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ExpressionError("BETWEEN bounds are reversed")
        self.kind = ExpressionKind.BETWEEN

    def true_selectivity(self, catalog: Catalog) -> float:
        dist = catalog.column_stats(self.table, self.column).distribution
        return dist.selectivity_between(self.low, self.high)

    def estimated_selectivity(self, catalog: Catalog) -> float:
        stats = catalog.column_stats(self.table, self.column)
        span = stats.max_value - stats.min_value
        if span <= 0:
            return 0.5
        low = max(self.low, stats.min_value)
        high = min(self.high, stats.max_value)
        return max(0.0, min(1.0, (high - low) / span))

    def true_distinct_fraction(self, catalog: Catalog) -> float:
        stats = catalog.column_stats(self.table, self.column)
        n_distinct = stats.true_distinct
        low = max(self.low, stats.min_value)
        high = min(self.high, stats.max_value)
        if high < low:
            return 0.0
        return min(1.0, (math.floor(high) - math.ceil(low) + 1) / n_distinct)

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        data = self._column_array(columns)
        return (data >= self.low) & (data <= self.high)


@dataclass
class InListPredicate(Predicate):
    """``column IN (v1, v2, ...)``."""

    table: str
    column: str
    values: Sequence[float]

    def __post_init__(self) -> None:
        if not self.values:
            raise ExpressionError("IN list must not be empty")
        self.kind = ExpressionKind.IN_LIST
        self.values = tuple(sorted(set(self.values)))

    def true_selectivity(self, catalog: Catalog) -> float:
        dist = catalog.column_stats(self.table, self.column).distribution
        return dist.selectivity_in(self.values)

    def estimated_selectivity(self, catalog: Catalog) -> float:
        stats = catalog.column_stats(self.table, self.column)
        return min(1.0, len(self.values) / stats.estimated_distinct)

    def true_distinct_fraction(self, catalog: Catalog) -> float:
        stats = catalog.column_stats(self.table, self.column)
        return min(1.0, len(self.values) / stats.true_distinct)

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        data = self._column_array(columns)
        return np.isin(data, np.asarray(self.values))


@dataclass
class LikePredicate(Predicate):
    """Pattern match on a dictionary-encoded string column.

    ``pattern`` is descriptive only; the match set is an explicit tuple
    of dictionary codes, so the true selectivity is the summed frequency
    of matching codes while the estimate falls back to the classic
    default-guess constant.
    """

    table: str
    column: str
    pattern: str
    matching_codes: Sequence[int]

    def __post_init__(self) -> None:
        self.kind = ExpressionKind.LIKE
        self.matching_codes = tuple(sorted(set(int(c) for c in self.matching_codes)))

    def true_selectivity(self, catalog: Catalog) -> float:
        dist = catalog.column_stats(self.table, self.column).distribution
        return dist.selectivity_in(self.matching_codes)

    def estimated_selectivity(self, catalog: Catalog) -> float:
        return DEFAULT_LIKE_SELECTIVITY

    def true_distinct_fraction(self, catalog: Catalog) -> float:
        stats = catalog.column_stats(self.table, self.column)
        return min(1.0, len(self.matching_codes) / stats.true_distinct)

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        data = self._column_array(columns)
        if not self.matching_codes:
            return np.zeros(len(data), dtype=bool)
        return np.isin(data, np.asarray(self.matching_codes))


@dataclass
class OrPredicate(Predicate):
    """Disjunction of predicates on the same table (feature class "other")."""

    parts: List[Predicate]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ExpressionError("OR needs at least two branches")
        tables = {p.table for p in self.parts}
        if len(tables) != 1:
            raise ExpressionError("OR branches must reference one table")
        self.table = self.parts[0].table
        self.column = self.parts[0].column
        self.kind = ExpressionKind.OTHER

    def true_selectivity(self, catalog: Catalog) -> float:
        miss = 1.0
        for part in self.parts:
            miss *= 1.0 - part.true_selectivity(catalog)
        return 1.0 - miss

    def estimated_selectivity(self, catalog: Catalog) -> float:
        miss = 1.0
        for part in self.parts:
            miss *= 1.0 - part.estimated_selectivity(catalog)
        return 1.0 - miss

    def true_distinct_fraction(self, catalog: Catalog) -> float:
        miss = 1.0
        for part in self.parts:
            miss *= 1.0 - part.true_distinct_fraction(catalog)
        return 1.0 - miss

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        mask = self.parts[0].evaluate(columns)
        for part in self.parts[1:]:
            mask = mask | part.evaluate(columns)
        return mask

    def evaluation_cost_weight(self) -> float:
        return sum(p.evaluation_cost_weight() for p in self.parts)


@dataclass
class NotPredicate(Predicate):
    """Negation (feature class "other")."""

    inner: Predicate

    def __post_init__(self) -> None:
        self.table = self.inner.table
        self.column = self.inner.column
        self.kind = ExpressionKind.OTHER

    def true_selectivity(self, catalog: Catalog) -> float:
        return 1.0 - self.inner.true_selectivity(catalog)

    def estimated_selectivity(self, catalog: Catalog) -> float:
        return 1.0 - self.inner.estimated_selectivity(catalog)

    def true_distinct_fraction(self, catalog: Catalog) -> float:
        return 1.0 - self.inner.true_distinct_fraction(catalog)

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        return ~self.inner.evaluate(columns)

    def evaluation_cost_weight(self) -> float:
        return self.inner.evaluation_cost_weight()


# -- non-boolean expressions (projection / aggregation inputs) -------------


class AggregateFunction(Enum):
    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class Aggregate:
    """One aggregate: ``function(column)`` (column ignored for COUNT(*))."""

    function: AggregateFunction
    column: Optional[str] = None

    def evaluate(self, columns: Dict[str, np.ndarray], n_rows: int) -> float:
        if self.function is AggregateFunction.COUNT:
            return float(n_rows)
        if self.column is None:
            raise ExpressionError(f"{self.function.value} needs a column")
        data = columns[self.column]
        if len(data) == 0:
            return math.nan
        if self.function is AggregateFunction.SUM:
            return float(np.sum(data))
        if self.function is AggregateFunction.MIN:
            return float(np.min(data))
        if self.function is AggregateFunction.MAX:
            return float(np.max(data))
        return float(np.mean(data))  # AVG


@dataclass(frozen=True)
class ComputedColumn:
    """A projected arithmetic expression: weighted sum of input columns.

    This covers the cost-relevant shape of projection expressions
    (``l_extendedprice * (1 - l_discount)`` and friends) without a full
    expression interpreter: ``n_operations`` drives simulated cost, the
    affine combination drives real execution.
    """

    name: str
    input_columns: Sequence[str]
    n_operations: int = 1

    def evaluate(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        if not self.input_columns:
            raise ExpressionError("computed column needs at least one input")
        result = columns[self.input_columns[0]].astype(np.float64)
        for column in self.input_columns[1:]:
            result = result + columns[column]
        return result
