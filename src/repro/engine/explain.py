"""Human-readable rendering of physical plans and pipelines.

``explain`` mirrors a database's EXPLAIN output; ``explain_pipelines``
shows the pipeline decomposition with tuple flows — the view T3's
features are computed from (compare Figure 2 of the paper).
"""

from __future__ import annotations

from typing import List, Optional

from .cardinality import CardinalityModel
from .physical import (
    PFilter,
    PGroupBy,
    PhysicalOperator,
    PhysicalPlan,
    PIndexNLJoin,
    PSort,
    PTableScan,
    PTopK,
    _JoinBase,
)
from .pipelines import compute_stage_flows, decompose_into_pipelines


def _describe(op: PhysicalOperator) -> str:
    name = op.op_type.value
    if isinstance(op, PTableScan):
        detail = op.table
        if op.predicates:
            detail += f" [{len(op.predicates)} predicates]"
        return f"{name}({detail})"
    if isinstance(op, _JoinBase):
        build_table, build_column = op.build_column
        probe_table, probe_column = op.probe_column
        return (f"{name}({build_table}.{build_column} = "
                f"{probe_table}.{probe_column})")
    if isinstance(op, PIndexNLJoin):
        return f"{name}(index on {op.inner_table}.{op.inner_column[1]})"
    if isinstance(op, PGroupBy):
        keys = ", ".join(f"{t}.{c}" for t, c in op.group_columns)
        return f"{name}({keys}; {len(op.aggregates)} aggregates)"
    if isinstance(op, PSort):
        return f"{name}({', '.join(f'{t}.{c}' for t, c in op.keys)})"
    if isinstance(op, PTopK):
        return f"{name}(k={op.k})"
    if isinstance(op, PFilter):
        return f"{name}([{len(op.predicates)} predicates])"
    return name


def explain(plan: PhysicalPlan,
            model: Optional[CardinalityModel] = None) -> str:
    """Indented operator tree with output cardinalities."""
    lines: List[str] = [f"Plan for {plan.query_name or '<query>'} "
                        f"on {plan.database}"]

    def visit(op: PhysicalOperator, depth: int) -> None:
        card = f"  card={model.output_cardinality(op):,.0f}" if model else ""
        lines.append("  " * depth + f"- {_describe(op)}{card}")
        for child in op.children:
            visit(child, depth + 1)

    visit(plan.root, 0)
    return "\n".join(lines)


def explain_pipelines(plan: PhysicalPlan,
                      model: Optional[CardinalityModel] = None) -> str:
    """Pipeline decomposition with per-stage tuple flow."""
    pipelines = decompose_into_pipelines(plan)
    lines: List[str] = [f"{len(pipelines)} pipelines "
                        f"for {plan.query_name or '<query>'}"]
    for pipeline in pipelines:
        lines.append(f"Pipeline {pipeline.index}:")
        if model is None:
            for ref in pipeline.stages:
                lines.append(f"    {ref.label()}")
            continue
        for flow in compute_stage_flows(pipeline, model):
            extra = ""
            if flow.state_cardinality:
                extra = f" state={flow.state_cardinality:,.0f}"
            if flow.materialized_cardinality:
                extra = f" materializes={flow.materialized_cardinality:,.0f}"
            lines.append(
                f"    {flow.ref.label():28s} in={flow.tuples_in:>14,.0f} "
                f"out={flow.tuples_out:>14,.0f}{extra}")
    return "\n".join(lines)
