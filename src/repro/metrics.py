"""Evaluation metrics for performance prediction.

The paper evaluates with the *q-error* (Moerkotte et al. [35]), which
penalizes over- and underestimation symmetrically:

    q_error(a, b) = max(a / b, b / a)

and aggregates over many queries with the median (p50), the 90th
percentile (p90), and the arithmetic mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .errors import ReproError

#: Floor applied to predictions/truths before computing q-errors so that
#: zero-time queries (which exist: the optimizer can answer some queries
#: without starting the engine) do not produce infinite errors.
TIME_FLOOR_SECONDS = 1e-9


def q_error(predicted: float, actual: float, floor: float = TIME_FLOOR_SECONDS) -> float:
    """Q-error of one prediction: ``max(a/b, b/a)`` after flooring both values.

    Always >= 1.0; equals 1.0 iff the floored values match exactly.
    """
    if predicted < 0 or actual < 0:
        raise ReproError(f"q_error expects non-negative values, got {predicted}, {actual}")
    a = max(predicted, floor)
    b = max(actual, floor)
    return max(a / b, b / a)


def q_errors(predicted: Sequence[float], actual: Sequence[float],
             floor: float = TIME_FLOOR_SECONDS) -> np.ndarray:
    """Vectorized q-error for parallel sequences of predictions and truths."""
    p = np.maximum(np.asarray(predicted, dtype=np.float64), floor)
    a = np.maximum(np.asarray(actual, dtype=np.float64), floor)
    if p.shape != a.shape:
        raise ReproError(f"shape mismatch: {p.shape} vs {a.shape}")
    if np.any(p < 0) or np.any(a < 0):
        raise ReproError("q_errors expects non-negative values")
    return np.maximum(p / a, a / p)


@dataclass(frozen=True)
class QErrorSummary:
    """The three aggregate statistics the paper reports for every experiment."""

    p50: float
    p90: float
    mean: float
    count: int

    def row(self) -> str:
        """One formatted table row: ``p50  p90  avg  (n)``."""
        return f"{self.p50:7.2f} {self.p90:7.2f} {self.mean:7.2f}  (n={self.count})"


def summarize_q_errors(errors: Iterable[float]) -> QErrorSummary:
    """Aggregate a collection of q-errors into p50/p90/mean statistics."""
    arr = np.asarray(list(errors), dtype=np.float64)
    if arr.size == 0:
        raise ReproError("cannot summarize an empty q-error collection")
    return QErrorSummary(
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        mean=float(arr.mean()),
        count=int(arr.size),
    )


def summarize_predictions(predicted: Sequence[float], actual: Sequence[float],
                          floor: float = TIME_FLOOR_SECONDS) -> QErrorSummary:
    """Convenience wrapper: q-errors of (predicted, actual) pairs, summarized."""
    return summarize_q_errors(q_errors(predicted, actual, floor=floor))


def consistent_run_deviation(run_times: Sequence[float], keep_fraction: float = 2 / 3) -> float:
    """Worst q-error among the most consistent fraction of repeated runs.

    This is the paper's Table 3 statistic: out of 10 measured runs, the
    2/3 (i.e. 7) closest to the median are kept, and the one furthest from
    the median is reported as that query's deviation.
    """
    times = np.asarray(run_times, dtype=np.float64)
    if times.size == 0:
        raise ReproError("need at least one run time")
    median = float(np.median(times))
    keep = max(1, int(round(times.size * keep_fraction)))
    deviations = q_errors(times, np.full(times.shape, median))
    kept = np.sort(deviations)[:keep]
    return float(kept[-1])
