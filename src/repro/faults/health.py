"""Service health state machine: healthy → degraded → draining.

``/healthz`` should answer three different questions with one word:
is the service answering from its fast path (*healthy*), is it
answering but leaning on fallbacks or shedding load (*degraded*), or
is it on its way down (*draining*, terminal)? The tracker aggregates
degradation signals from the whole stack:

* **events** — fallback evaluations and shed requests are counted and
  keep the service degraded for a configurable linger window after the
  last one (a single blip should be visible to a scraper polling every
  few seconds, but not forever),
* **conditions** — registered probe callables (e.g. "is any circuit
  breaker not closed?") that hold the state at degraded for as long as
  they return true,
* **draining** — set once at shutdown; never leaves.

The clock is injectable so tests can walk the linger window without
sleeping.
"""

from __future__ import annotations

import threading
import time
from enum import Enum
from typing import Callable, Dict, List

__all__ = ["HealthState", "HealthTracker"]


class HealthState(Enum):
    """Coarse service condition, ordered by severity."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DRAINING = "draining"

    @property
    def code(self) -> int:
        """Numeric form for gauges: 0 healthy, 1 degraded, 2 draining."""
        return {"healthy": 0, "degraded": 1, "draining": 2}[self.value]


class HealthTracker:
    """Aggregates degradation signals into one :class:`HealthState`."""

    def __init__(self, degraded_linger_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        self.degraded_linger_s = float(degraded_linger_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._draining = False
        self._last_event = -float("inf")
        self._fallbacks: Dict[str, int] = {}
        self._sheds = 0
        self._probes: Dict[str, Callable[[], bool]] = {}

    # -- signals -----------------------------------------------------------

    def note_fallback(self, target: str) -> None:
        """A request was answered by a degraded backend (``target``)."""
        with self._lock:
            self._fallbacks[target] = self._fallbacks.get(target, 0) + 1
            self._last_event = self._clock()

    def note_shed(self) -> None:
        """A request was shed (deadline expired, watermark, queue full)."""
        with self._lock:
            self._sheds += 1
            self._last_event = self._clock()

    def add_probe(self, name: str, probe: Callable[[], bool]) -> None:
        """Register a condition that forces *degraded* while true."""
        with self._lock:
            self._probes[name] = probe

    def mark_draining(self) -> None:
        """Enter the terminal draining state (service shutdown)."""
        with self._lock:
            self._draining = True

    # -- reading -----------------------------------------------------------

    @property
    def state(self) -> HealthState:
        with self._lock:
            if self._draining:
                return HealthState.DRAINING
            lingering = (self._clock() - self._last_event
                         < self.degraded_linger_s)
            probes = list(self._probes.values())
        if lingering or any(probe() for probe in probes):
            return HealthState.DEGRADED
        return HealthState.HEALTHY

    @property
    def fallback_count(self) -> int:
        with self._lock:
            return sum(self._fallbacks.values())

    @property
    def shed_count(self) -> int:
        with self._lock:
            return self._sheds

    def degraded_probes(self) -> List[str]:
        """Names of probes currently reporting degradation."""
        with self._lock:
            probes = list(self._probes.items())
        return [name for name, probe in probes if probe()]

    def describe(self) -> Dict[str, object]:
        """Payload fragment for ``/healthz``."""
        state = self.state
        with self._lock:
            fallbacks = dict(self._fallbacks)
            sheds = self._sheds
        return {
            "state": state.value,
            "fallbacks": fallbacks,
            "fallback_total": sum(fallbacks.values()),
            "shed_total": sheds,
            "degraded_reasons": self.degraded_probes(),
        }
