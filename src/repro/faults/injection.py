"""Deterministic, seedable fault injection.

A :class:`FaultPlan` names *where* faults happen (injection sites), *what*
happens there (raise / delay / corrupt), and *how often* (probability,
fire cap). A :class:`FaultInjector` executes the plan: components call
:meth:`FaultInjector.fire` at their named site and the injector decides
— deterministically — whether this invocation faults.

Determinism is the point. Every decision is drawn from
:func:`repro.rng.derive_seed` over ``(plan seed, site, spec index,
invocation count)``, so a chaos run replays bit-identically: the same
plan and the same request sequence produce the same faults, the same
fallbacks, and the same telemetry. The injector with no plan installed
is a cheap no-op (one attribute read per site), so production code
keeps its sites permanently compiled in.

Sites are a closed set (:data:`KNOWN_SITES`); naming a site the code
never calls is a configuration error, not a silent no-op.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..errors import ConfigurationError, InjectedFaultError
from ..rng import DEFAULT_SEED, derive_rng

__all__ = [
    "KNOWN_SITES",
    "FaultPlan",
    "FaultInjector",
    "FaultSpec",
    "clear_faults",
    "get_injector",
    "install_plan",
]

_V = TypeVar("_V")

#: Every injection site compiled into the library, with the behaviour a
#: fault there simulates.
KNOWN_SITES: Dict[str, str] = {
    "registry.compile": "native compilation of a registered model fails",
    "batcher.evaluate": "the native batch evaluation raises or returns "
                        "corrupt (non-finite) predictions",
    "cache.read": "a plan/feature cache read raises or returns a "
                  "corrupt entry",
    "parallel.worker": "a process-pool worker dies mid-task",
    "http.handler": "the HTTP handler fails before dispatching",
    "lifecycle.log_append": "the observation-log writer dies mid-append, "
                            "leaving a torn record tail",
}

_ACTIONS = ("raise", "delay", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: what happens at one site."""

    site: str
    action: str                   # "raise" | "delay" | "corrupt"
    probability: float = 1.0      # per-invocation arming probability
    max_fires: Optional[int] = None   # stop firing after this many
    delay_s: float = 0.05         # sleep length for "delay"

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(sorted(KNOWN_SITES))}")
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; "
                f"use one of {', '.join(_ACTIONS)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], "
                f"got {self.probability}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ConfigurationError(
                f"max_fires must be >= 0, got {self.max_fires}")
        if self.delay_s < 0:
            raise ConfigurationError(
                f"delay_s must be >= 0, got {self.delay_s}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultSpec` entries.

    The compact text form (CLI ``--chaos``, ``REPRO_FAULTS`` env) is a
    ``;``-separated list of ``site:action[:probability[:max_fires]]``::

        batcher.evaluate:raise:0.5;cache.read:corrupt;http.handler:delay
    """

    specs: Tuple[FaultSpec, ...]
    seed: int = DEFAULT_SEED

    @classmethod
    def parse(cls, text: str, seed: int = DEFAULT_SEED) -> "FaultPlan":
        specs: List[FaultSpec] = []
        for part in text.split(";"):
            part = part.strip()
            if not part:
                continue
            fields = part.split(":")
            if len(fields) < 2:
                raise ConfigurationError(
                    f"malformed fault spec {part!r}; expected "
                    "site:action[:probability[:max_fires]]")
            site, action = fields[0].strip(), fields[1].strip()
            try:
                probability = float(fields[2]) if len(fields) > 2 else 1.0
                max_fires = int(fields[3]) if len(fields) > 3 else None
            except ValueError as exc:
                raise ConfigurationError(
                    f"malformed fault spec {part!r}: {exc}") from None
            specs.append(FaultSpec(site=site, action=action,
                                   probability=probability,
                                   max_fires=max_fires))
        if not specs:
            raise ConfigurationError(
                f"fault plan {text!r} names no sites")
        return cls(specs=tuple(specs), seed=seed)

    def describe(self) -> List[str]:
        out = []
        for spec in self.specs:
            cap = "" if spec.max_fires is None else f" x{spec.max_fires}"
            out.append(f"{spec.site}:{spec.action}"
                       f"@{spec.probability:g}{cap}")
        return out


class FaultInjector:
    """Executes a :class:`FaultPlan` at named sites, deterministically.

    One injector is process-global (:func:`get_injector`) so sites deep
    in the stack need no plumbing; tests may build private instances
    and hand them to components directly.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self._lock = threading.Lock()
        self._plan: Optional[FaultPlan] = None
        self._calls: Dict[int, int] = {}       # spec index -> invocations
        self._spec_fires: Dict[int, int] = {}  # spec index -> times fired
        self._fires: Dict[str, int] = {}       # site -> times fired
        if plan is not None:
            self.install(plan)

    # -- plan management ---------------------------------------------------

    def install(self, plan: Optional[FaultPlan]) -> None:
        """Install (or with ``None`` remove) the active plan; resets
        all invocation counters so runs replay from a clean slate."""
        with self._lock:
            self._plan = plan
            self._calls = {}
            self._spec_fires = {}
            self._fires = {}

    def clear(self) -> None:
        self.install(None)

    @property
    def active(self) -> bool:
        return self._plan is not None

    @property
    def plan(self) -> Optional[FaultPlan]:
        return self._plan

    def fire_counts(self) -> Dict[str, int]:
        """site -> number of faults fired so far (for telemetry/tests)."""
        with self._lock:
            return dict(self._fires)

    # -- decision core -----------------------------------------------------

    def _decide(self, site: str, actions: Sequence[str]
                ) -> Optional[FaultSpec]:
        """The armed spec for this invocation of ``site``, if any.

        Deterministic: each spec keeps an invocation counter, and the
        arming draw is seeded by (plan seed, site, spec index, count).
        """
        plan = self._plan
        if plan is None:
            return None
        with self._lock:
            if self._plan is not plan:   # cleared/replaced concurrently
                return None
            for index, spec in enumerate(plan.specs):
                if spec.site != site or spec.action not in actions:
                    continue
                count = self._calls.get(index, 0)
                self._calls[index] = count + 1
                if spec.max_fires is not None and \
                        self._spec_fires.get(index, 0) >= spec.max_fires:
                    continue
                if spec.probability < 1.0:
                    draw = derive_rng(plan.seed, site, index, count).random()
                    if draw >= spec.probability:
                        continue
                self._spec_fires[index] = self._spec_fires.get(index, 0) + 1
                self._fires[site] = self._fires.get(site, 0) + 1
                return spec
        return None

    # -- site entry points -------------------------------------------------

    def fire(self, site: str) -> None:
        """Execute raise/delay faults armed at ``site`` (no-op otherwise)."""
        if self._plan is None:
            return
        spec = self._decide(site, ("raise", "delay"))
        if spec is None:
            return
        if spec.action == "delay":
            time.sleep(spec.delay_s)
            return
        raise InjectedFaultError(
            f"injected fault at {site}: {KNOWN_SITES[site]}")

    def corrupt(self, site: str, value: _V,
                corruptor: Callable[[_V], _V]) -> _V:
        """Return ``corruptor(value)`` when a corrupt fault is armed at
        ``site``, else ``value`` unchanged."""
        if self._plan is None:
            return value
        if self._decide(site, ("corrupt",)) is None:
            return value
        return corruptor(value)


_GLOBAL = FaultInjector()


def get_injector() -> FaultInjector:
    """The process-global injector every site defaults to."""
    return _GLOBAL


def install_plan(plan: Optional[FaultPlan]) -> FaultInjector:
    """Install ``plan`` on the global injector and return it."""
    _GLOBAL.install(plan)
    return _GLOBAL


def clear_faults() -> None:
    """Remove any globally installed plan (test teardown)."""
    _GLOBAL.clear()
