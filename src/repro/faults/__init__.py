"""Fault tolerance: deterministic chaos and graceful degradation.

T3's value proposition — compiled-tree inference cheap enough for the
query-optimization hot path — only survives production if the serving
stack keeps answering when parts of it misbehave. This package owns
the machinery the serving layer and the parallel pipeline share:

* :mod:`~repro.faults.injection` — a seedable fault-injection
  framework (:class:`FaultPlan` / :class:`FaultInjector`) with named
  sites compiled into the library; chaos runs replay bit-identically,
* :mod:`~repro.faults.breaker` — a closed/open/half-open circuit
  breaker with failure-rate tripping and deterministic exponential
  backoff,
* :mod:`~repro.faults.health` — the healthy/degraded/draining service
  state machine behind ``/healthz``.

Quick chaos session::

    from repro.faults import FaultPlan, install_plan

    install_plan(FaultPlan.parse("batcher.evaluate:raise:0.5", seed=7))
    # ... every second native batch call now fails; the service
    # answers from the interpreted/analytic fallback chain instead.
"""

from .breaker import BreakerState, CircuitBreaker
from .health import HealthState, HealthTracker
from .injection import (
    KNOWN_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    clear_faults,
    get_injector,
    install_plan,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "HealthState",
    "HealthTracker",
    "KNOWN_SITES",
    "clear_faults",
    "get_injector",
    "install_plan",
]
