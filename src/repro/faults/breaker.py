"""Per-artifact circuit breaker: closed → open → half-open → closed.

The serving degradation chain needs a memory: once a compiled artifact
starts failing, hammering it on every request just pays the failure
latency over and over. The breaker watches a sliding window of
outcomes; when the failure rate crosses the threshold it *opens* —
callers skip the protected path outright — and after an exponentially
growing backoff it goes *half-open*, letting a few probe requests
through. Probes all succeeding re-closes it; any probe failing
re-opens it with a longer backoff.

The backoff jitter is deterministic (:func:`repro.rng.derive_seed` over
the breaker name and trip count), so chaos tests replay the exact
open→half-open→closed timeline under a fixed seed. The clock is
injectable for the same reason.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from enum import Enum
from typing import Callable, Deque, Dict

from ..errors import ConfigurationError
from ..rng import DEFAULT_SEED, derive_rng

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(Enum):
    """Where the breaker is in its trip cycle."""

    CLOSED = "closed"          # normal operation, outcomes observed
    OPEN = "open"              # protected path skipped until backoff ends
    HALF_OPEN = "half_open"    # limited probes allowed through


class CircuitBreaker:
    """Failure-rate circuit breaker with deterministic backoff.

    Thread-safe; every transition decision happens under one lock.
    ``allow()`` answers "may this call use the protected path?";
    callers then report ``record_success()`` / ``record_failure()``.
    """

    def __init__(self, name: str,
                 window: int = 20,
                 min_samples: int = 5,
                 failure_threshold: float = 0.5,
                 backoff_base_s: float = 0.5,
                 backoff_cap_s: float = 30.0,
                 half_open_probes: int = 2,
                 seed: int = DEFAULT_SEED,
                 clock: Callable[[], float] = time.monotonic):
        if window < 1:
            raise ConfigurationError("breaker window must be >= 1")
        if min_samples < 1:
            raise ConfigurationError("breaker min_samples must be >= 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ConfigurationError(
                "breaker failure_threshold must be in (0, 1]")
        if half_open_probes < 1:
            raise ConfigurationError("breaker half_open_probes must be >= 1")
        self.name = name
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.failure_threshold = float(failure_threshold)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.half_open_probes = int(half_open_probes)
        self.seed = seed
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=self.window)
        self._trips = 0                  # lifetime open transitions
        self._open_until = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0

    # -- decisions ---------------------------------------------------------

    def allow(self) -> bool:
        """May the caller attempt the protected path right now?"""
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                if self._clock() < self._open_until:
                    return False
                self._enter_half_open()
            # HALF_OPEN: admit a bounded number of concurrent probes.
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._state = BreakerState.CLOSED
                    self._outcomes.clear()
                return
            self._outcomes.append(True)

    def record_aborted(self) -> None:
        """Release a probe slot without counting an outcome.

        For attempts that ``allow()`` admitted but that never reached
        the protected artifact — shed on overload, expired deadline,
        shutdown. The half-open probe slot must be returned (or two
        aborted probes would wedge the breaker in HALF_OPEN with
        ``allow()`` forever False), but a non-attempt says nothing
        about the artifact, so neither the failure window nor the
        probe tally moves.
        """
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)

    def record_failure(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._trip()
                return
            if self._state is BreakerState.OPEN:
                return
            self._outcomes.append(False)
            if len(self._outcomes) < self.min_samples:
                return
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= self.failure_threshold:
                self._trip()

    # -- transitions (lock held) -------------------------------------------

    def _trip(self) -> None:
        self._trips += 1
        backoff = min(self.backoff_cap_s,
                      self.backoff_base_s * (2.0 ** (self._trips - 1)))
        # Deterministic jitter in [1.0, 1.25): spreads re-probe times
        # across breakers without sacrificing replayability.
        jitter = 1.0 + 0.25 * derive_rng(
            self.seed, "breaker", self.name, self._trips).random()
        self._state = BreakerState.OPEN
        self._open_until = self._clock() + backoff * jitter
        self._outcomes.clear()
        self._probes_in_flight = 0
        self._probe_successes = 0

    def _enter_half_open(self) -> None:
        self._state = BreakerState.HALF_OPEN
        self._probes_in_flight = 0
        self._probe_successes = 0

    # -- introspection -----------------------------------------------------

    @property
    def state(self) -> BreakerState:
        with self._lock:
            if self._state is BreakerState.OPEN and \
                    self._clock() >= self._open_until:
                return BreakerState.HALF_OPEN   # would transition on allow()
            return self._state

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    def snapshot(self) -> Dict[str, object]:
        """State for health payloads and tests."""
        with self._lock:
            remaining = max(0.0, self._open_until - self._clock()) \
                if self._state is BreakerState.OPEN else 0.0
            return {
                "name": self.name,
                "state": self._state.value,
                "trips": self._trips,
                "window_failures": sum(
                    1 for ok in self._outcomes if not ok),
                "window_samples": len(self._outcomes),
                "open_remaining_s": round(remaining, 6),
            }

    def reset(self) -> None:
        """Force-close (administrative override / tests)."""
        with self._lock:
            self._state = BreakerState.CLOSED
            self._outcomes.clear()
            self._probes_in_flight = 0
            self._probe_successes = 0
            self._open_until = 0.0
