"""Online model lifecycle: the serving→training loop, closed.

The paper trains once and serves forever; production models drift.
This package adds the machinery a deployed T3 needs to stay accurate:

* :mod:`~repro.lifecycle.obslog` — a crash-safe append-only log of
  ``(features, predicted, observed)`` records, CRC-framed and fsync'd,
  with torn-tail recovery proven under the ``lifecycle.log_append``
  fault site.
* :mod:`~repro.lifecycle.retrain` — incremental consumption of log
  segments through the parallel pipeline into candidate models, with
  digest lineage back to the model they replace.
* :mod:`~repro.lifecycle.manager` — the observe → retrain → shadow →
  canary state machine, wired into the registry's atomic pointer
  swaps and the circuit-breaker/health machinery for automatic
  rollback.
* :mod:`~repro.lifecycle.drift` — seeded drift scenarios (statistics
  shifts, machine-speed shifts) that make the whole loop exercisable
  deterministically in tests and chaos runs.
"""

from .drift import DriftScenario, generate_drift_sqls, shift_instance
from .manager import LifecycleConfig, LifecycleManager, LifecyclePhase
from .obslog import ObservationLog, ObservationRecord, read_segment_records
from .retrain import RetrainConfig, RetrainJob, observation_matrices

__all__ = [
    "DriftScenario",
    "LifecycleConfig",
    "LifecycleManager",
    "LifecyclePhase",
    "ObservationLog",
    "ObservationRecord",
    "RetrainConfig",
    "RetrainJob",
    "generate_drift_sqls",
    "observation_matrices",
    "read_segment_records",
    "shift_instance",
]
