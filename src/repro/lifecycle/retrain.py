"""Background retraining from the observation log.

A :class:`RetrainJob` turns logged ``(features, predicted, observed)``
records into a candidate :class:`~repro.core.model.T3Model`. It keeps a
per-segment cursor and pulls only *new* records each time
(:func:`~repro.parallel.incremental.consume_segments` fans sealed
segments out over the process pool), so a long-running server pays for
each observation's decode exactly once no matter how many retrains the
lifecycle goes through.

Targets are rebuilt exactly the way offline training builds them
(:mod:`repro.core.targets` / :mod:`repro.core.ablation`), with one
production twist: the log carries each query's *observed total* — real
systems measure queries, not pipeline stages — so per-pipeline observed
times are the total apportioned by the active model's own predicted
pipeline proportions. The candidate inherits the base model's config,
reseeded per retrain round through :func:`~repro.rng.derive_seed` so
retrain N of a replayed run trains bit-identical trees, and records the
base model's digest as its lineage.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from ..core.ablation import TargetMode, transform_absolute
from ..core.model import T3Config, T3Model
from ..core.targets import transform_target, tuple_time_target
from ..errors import TrainingError
from ..parallel import consume_segments
from ..rng import derive_seed
from ..trees.boosting import train_boosted_trees
from .obslog import ObservationLog, ObservationRecord, read_segment_records

__all__ = ["RetrainConfig", "RetrainJob", "observation_matrices"]


@dataclass(frozen=True)
class RetrainConfig:
    """Tunables of the incremental retrainer."""

    #: Boosting rounds for candidates (fewer than the offline 200 —
    #: candidates train on live traffic volumes, not a benchmark corpus).
    rounds: int = 40
    #: Records required before a candidate may be trained.
    min_records: int = 32
    #: Process-pool width for decoding sealed segments.
    jobs: int = 1


def observation_matrices(records: List[ObservationRecord],
                         mode: TargetMode):
    """(X, y) in ``mode``'s target space from logged observations.

    Per-pipeline observed times are the observed query total split by
    the predicting model's own pipeline proportions (uniform when the
    prediction was degenerate), then transformed exactly as offline
    training transforms simulator truth.
    """
    if not records:
        raise TrainingError("no observations to train on")
    X = np.vstack([record.vectors for record in records])
    if mode is TargetMode.PER_QUERY:
        y = transform_absolute(
            np.asarray([record.observed_seconds for record in records]))
        return X, y
    blocks: List[np.ndarray] = []
    for record in records:
        predicted = np.asarray(record.pipeline_seconds, dtype=np.float64)
        n = len(record.vectors)
        if len(predicted) != n or predicted.sum() <= 0.0 or \
                not np.all(np.isfinite(predicted)):
            fractions = np.full(n, 1.0 / n)
        else:
            fractions = predicted / predicted.sum()
        observed = fractions * record.observed_seconds
        if mode is TargetMode.PER_TUPLE:
            cards = (record.cards if record.cards is not None
                     else np.ones(n))
            blocks.append(transform_target(
                tuple_time_target(observed, cards)))
        else:   # PER_PIPELINE
            blocks.append(transform_absolute(observed))
    return X, np.concatenate(blocks)


class RetrainJob:
    """Incrementally consume an :class:`ObservationLog`, train candidates.

    Thread-safe; the lifecycle manager may drive it from a background
    thread while serving threads keep appending.
    """

    def __init__(self, log: ObservationLog, base: T3Model,
                 config: Optional[RetrainConfig] = None):
        self.log = log
        self.base = base
        self.config = config or RetrainConfig()
        self._lock = threading.Lock()
        self._cursor: Dict[str, int] = {}
        self._records: List[ObservationRecord] = []
        self.retrains = 0

    @property
    def records_consumed(self) -> int:
        with self._lock:
            return len(self._records)

    def consume(self) -> int:
        """Pull every not-yet-seen committed record; returns how many."""
        with self._lock:
            segments = self.log.segments()
            counts = self.log.segment_records()
            fresh, self._cursor = consume_segments(
                read_segment_records, segments, counts, self._cursor,
                jobs=self.config.jobs)
            self._records.extend(fresh)
            return len(fresh)

    def train_candidate(self, base: Optional[T3Model] = None) -> T3Model:
        """Train a candidate from everything consumed so far.

        ``base`` (default: the job's base model) supplies config and
        lineage — after a promotion the manager passes the newly active
        model so lineage chains stay truthful. Uncompiled on purpose:
        the registry's warmup owns compilation, off the request path.
        """
        base = base or self.base
        with self._lock:
            records = list(self._records)
            retrain_index = self.retrains
        if len(records) < self.config.min_records:
            raise TrainingError(
                f"only {len(records)} observations consumed; "
                f"need {self.config.min_records} to retrain")
        X, y = observation_matrices(records,
                                    base.config.target_mode)
        seed = derive_seed(base.config.seed, "lifecycle-retrain",
                           retrain_index)
        boosting = replace(base.config.boosting,
                           n_rounds=self.config.rounds, seed=seed)
        booster = train_boosted_trees(X, y, boosting)
        config = T3Config(
            boosting=boosting,
            cardinalities=base.config.cardinalities,
            target_mode=base.config.target_mode,
            compile_to_native=False,
            codegen_strategy=base.config.codegen_strategy,
            seed=seed)
        candidate = T3Model(booster, config, base.registry,
                            lineage=base.model_digest())
        with self._lock:
            self.retrains = retrain_index + 1
        return candidate
