"""Crash-safe, append-only observation log.

Serving appends one :class:`ObservationRecord` per piece of ground
truth a client reports — the features the prediction was made from,
what the model said, and what actually happened. The retrain job reads
the log back incrementally; together they close the serving→training
loop, so the format has to survive the writer dying at any byte.

The discipline mirrors :class:`~repro.experiments.cache.DiskCache`:
every record is framed (magic, length, CRC32) and fsync'd before the
append is acknowledged, and a record is *committed* only when its full
frame is on disk with a matching checksum. Recovery at open scans each
segment, keeps the longest prefix of complete records, quarantines the
torn tail bytes to a ``*.torn-*`` file for diagnosis, and truncates —
exactly like DiskCache quarantines corrupt pickles instead of serving
them. Segments rotate at a size bound so recovery and incremental
consumption stay cheap.

The ``lifecycle.log_append`` fault site fires *mid-frame* — after the
header and the first half of the payload are flushed, before the rest —
so chaos plans (and the crash tests, which ``os._exit`` there) tear a
record exactly the way a dying writer would. An in-process fault is
self-healing: the append truncates back to the last committed offset
and re-raises, so the log object stays usable and no reader ever sees
a half-written record.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import struct
import threading
import uuid
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, IO, List, Optional, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from ..faults import FaultInjector, get_injector

__all__ = [
    "ObservationLog",
    "ObservationRecord",
    "read_segment_records",
]

#: Frame magic: identifies the start of a committed record.
_MAGIC = b"T3LG"
#: Frame header: magic + payload length (u32) + payload CRC32 (u32).
_HEADER = struct.Struct("<4sII")
#: Upper bound on one serialized record; larger lengths in a header mean
#: the header itself is garbage (torn tail), not a huge record.
MAX_RECORD_BYTES = 16 << 20

_SEGMENT_PREFIX = "obs-"
_SEGMENT_SUFFIX = ".seg"


@dataclass(frozen=True)
class ObservationRecord:
    """One served prediction paired with its observed ground truth."""

    instance: str
    #: Per-pipeline feature vectors the prediction was computed from
    #: (``(n_pipelines, n_features)`` float64; one summed row for
    #: per-query models).
    vectors: np.ndarray
    #: Pipeline input cardinalities (``None`` for per-query models).
    cards: Optional[np.ndarray]
    predicted_seconds: float
    #: The active model's per-pipeline predictions; the retrainer uses
    #: their proportions to distribute the observed total over
    #: pipelines (real systems observe query totals, not stage times).
    pipeline_seconds: Tuple[float, ...]
    observed_seconds: float
    #: ``name@version`` of the model that produced the prediction.
    model_key: str
    #: Assigned by :meth:`ObservationLog.append`; -1 until logged.
    sequence: int = -1

    def validate(self) -> None:
        vectors = self.vectors
        if not isinstance(vectors, np.ndarray) or vectors.ndim != 2:
            raise ConfigurationError(
                "observation vectors must be a 2-D feature matrix")
        if not np.all(np.isfinite(vectors)):
            raise ConfigurationError(
                "observation vectors must be finite")
        if self.cards is not None and len(self.cards) != len(vectors):
            raise ConfigurationError(
                "observation cards must align with vectors")
        if not (np.isfinite(self.observed_seconds)
                and self.observed_seconds >= 0.0):
            raise ConfigurationError(
                "observed_seconds must be finite and non-negative, got "
                f"{self.observed_seconds!r}")

    def to_payload(self) -> Dict[str, object]:
        return {
            "instance": self.instance,
            "vectors": np.ascontiguousarray(self.vectors, dtype=np.float64),
            "cards": (None if self.cards is None
                      else np.ascontiguousarray(self.cards,
                                                dtype=np.float64)),
            "predicted_seconds": float(self.predicted_seconds),
            "pipeline_seconds": tuple(float(t)
                                      for t in self.pipeline_seconds),
            "observed_seconds": float(self.observed_seconds),
            "model_key": self.model_key,
            "sequence": int(self.sequence),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ObservationRecord":
        return cls(**payload)  # type: ignore[arg-type]


def _scan_segment(data: bytes) -> Tuple[int, int]:
    """(complete records, committed byte offset) of one segment image.

    Anything past the returned offset — a torn frame, a corrupt CRC, or
    trailing garbage — is *not* committed.
    """
    offset, records = 0, 0
    size = len(data)
    while True:
        if size - offset < _HEADER.size:
            return records, offset
        magic, length, crc = _HEADER.unpack_from(data, offset)
        if magic != _MAGIC or length > MAX_RECORD_BYTES:
            return records, offset
        end = offset + _HEADER.size + length
        if end > size:
            return records, offset
        payload = data[offset + _HEADER.size:end]
        if zlib.crc32(payload) != crc:
            return records, offset
        records += 1
        offset = end


def read_segment_records(path: Union[str, Path]) -> List[ObservationRecord]:
    """Decode every committed record of one segment file.

    Read-only and torn-tolerant: a torn tail simply ends the scan (the
    owning :class:`ObservationLog` quarantines it at open). Module-level
    so :func:`~repro.parallel.process_map` can fan segment decoding out
    over worker processes.
    """
    data = Path(path).read_bytes()
    _, committed = _scan_segment(data)
    records: List[ObservationRecord] = []
    offset = 0
    while offset < committed:
        _, length, _ = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        payload = pickle.loads(data[start:start + length])
        records.append(ObservationRecord.from_payload(payload))
        offset = start + length
    return records


class ObservationLog:
    """Segmented append-only log with torn-tail recovery.

    Thread-safe: appends serialize on one lock. Readers never share the
    writer's file handle — they read committed segment files.
    """

    def __init__(self, directory: Union[str, Path],
                 max_segment_bytes: int = 1 << 20,
                 sync: bool = True,
                 injector: Optional[FaultInjector] = None):
        if max_segment_bytes < _HEADER.size + 1:
            raise ConfigurationError(
                "max_segment_bytes is smaller than one record frame")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = int(max_segment_bytes)
        self.sync = bool(sync)
        self._injector = injector or get_injector()
        self._lock = threading.Lock()
        self._handle: Optional[IO[bytes]] = None
        self._records: Dict[str, int] = {}   # segment name -> records
        self._offset = 0                     # committed bytes, tail segment
        self._sequence = 0
        self._closed = False
        self.torn_tails_quarantined = 0
        self.rotations = 0
        self._recover()

    # -- recovery ----------------------------------------------------------

    def _segment_paths(self) -> List[Path]:
        return sorted(self.directory.glob(
            f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"

    def _recover(self) -> None:
        """Scan every segment, quarantine torn tails, open the last for
        append (or start a fresh one)."""
        paths = self._segment_paths()
        for path in paths:
            data = path.read_bytes()
            records, committed = _scan_segment(data)
            if committed < len(data):
                target = path.with_name(
                    f"{path.name}.torn-{uuid.uuid4().hex[:8]}")
                target.write_bytes(data[committed:])
                with path.open("r+b") as handle:
                    handle.truncate(committed)
                self.torn_tails_quarantined += 1
            self._records[path.name] = records
            self._sequence += records
        if paths:
            tail = paths[-1]
            self._offset = tail.stat().st_size
            self._handle = tail.open("r+b")
            self._handle.seek(self._offset)
            self._tail = tail
        else:
            self._start_segment(0)

    def _start_segment(self, index: int) -> None:
        path = self._segment_path(index)
        self._handle = path.open("a+b")
        self._offset = 0
        self._records[path.name] = 0
        self._tail = path

    # -- appending ---------------------------------------------------------

    def append(self, record: ObservationRecord) -> int:
        """Durably append one record; returns its sequence number.

        Either the whole frame is committed (flushed, fsync'd when
        ``sync``) or the segment is restored to its previous committed
        length — an append can fail, but it cannot half-write.
        """
        record.validate()
        with self._lock:
            if self._closed:
                raise ConfigurationError("observation log is closed")
            payload = pickle.dumps(
                dataclasses.replace(record,
                                    sequence=self._sequence).to_payload(),
                protocol=pickle.HIGHEST_PROTOCOL)
            frame = _HEADER.pack(_MAGIC, len(payload),
                                 zlib.crc32(payload)) + payload
            if self._offset and \
                    self._offset + len(frame) > self.max_segment_bytes:
                self._rotate_locked()
            handle = self._handle
            committed = self._offset
            split = len(frame) // 2
            try:
                handle.write(frame[:split])
                # Flush the torn prefix so a crash at the fault site
                # leaves it on disk — the exact tear recovery must heal.
                handle.flush()
                self._injector.fire("lifecycle.log_append")
                handle.write(frame[split:])
                handle.flush()
                if self.sync:
                    os.fsync(handle.fileno())
            except BaseException:
                self._repair_locked(committed)
                raise
            self._offset = committed + len(frame)
            self._records[self._tail.name] += 1
            sequence = self._sequence
            self._sequence += 1
            return sequence

    def _repair_locked(self, committed: int) -> None:
        """Truncate the tail segment back to its last committed byte."""
        try:
            self._handle.flush()
        except OSError:
            pass
        self._handle.seek(committed)
        self._handle.truncate(committed)
        self._offset = committed

    def _rotate_locked(self) -> None:
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())
        self._handle.close()
        self.rotations += 1
        self._start_segment(len(self._segment_paths()))

    def rotate(self) -> Path:
        """Seal the tail segment and start a new one (returns the new)."""
        with self._lock:
            if self._closed:
                raise ConfigurationError("observation log is closed")
            self._rotate_locked()
            return self._tail

    # -- reading -----------------------------------------------------------

    def segments(self) -> List[Path]:
        """Segment files, oldest first (the last one is still growing)."""
        with self._lock:
            return self._segment_paths()

    def segment_records(self) -> Dict[str, int]:
        """Committed record count per segment name — the retrainer's
        incremental-consume cursor is diffed against this."""
        with self._lock:
            return dict(self._records)

    def read_all(self) -> List[ObservationRecord]:
        with self._lock:
            self._handle.flush()
            paths = self._segment_paths()
        records: List[ObservationRecord] = []
        for path in paths:
            records.extend(read_segment_records(path))
        return records

    # -- lifecycle ---------------------------------------------------------

    @property
    def sequence(self) -> int:
        """Sequence number the next append will receive."""
        with self._lock:
            return self._sequence

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "records": self._sequence,
                "segments": len(self._records),
                "rotations": self.rotations,
                "torn_tails_quarantined": self.torn_tails_quarantined,
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._handle.flush()
            if self.sync:
                os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "ObservationLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
