"""Deterministic drift scenarios: the ground truth shifts mid-stream.

A :class:`DriftScenario` wraps one instance with two regimes — *before*
and *after* — and plays the oracle a production system would face: the
service predicts, the scenario "executes" the query on the regime that
is currently real, and the pair becomes an observation. Everything is
derived from a seed (query mix, predicate selectivities, shifted
statistics), so a lifecycle test or chaos run replays bit-identically.

Two independent drift levers, matching how real deployments go stale:

* ``speed_factor`` — the machine the model was calibrated on is not
  the machine serving traffic (hardware change, co-tenancy). Features
  are unchanged; every observed time scales. This is pure *target*
  drift, the cleanest retrain-worthy regime.
* ``row_scale`` — instance statistics shift (data grew). The shifted
  catalog changes plans, features, and times together; callers must
  invalidate cached plans
  (:meth:`~repro.serving.service.PredictionService.invalidate_instance`)
  when flipping this on, exactly as a stats refresh would in
  production.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from ..engine.catalog import Catalog
from ..engine.optimizer import Optimizer
from ..engine.simulator import ExecutionSimulator, SimulatorConfig
from ..engine.sqlparser import parse_sql
from ..errors import ConfigurationError, InstanceNotFoundError
from ..datagen.instances import Instance
from ..rng import DEFAULT_SEED, derive_rng

__all__ = ["DriftScenario", "generate_drift_sqls", "shift_instance"]


def shift_instance(instance: Instance, row_scale: float,
                   seed: int = DEFAULT_SEED) -> Instance:
    """``instance`` after its data grew (or shrank) by ``row_scale``.

    Same name, family, and schema — the point is that a resolver can
    swap it in transparently — but a fresh :class:`Catalog` with every
    table's row count scaled. Column distributions carry over: value
    ranges do not change when a table grows, only how many rows hold
    them. Distinct-count estimation error is re-drawn from ``seed``,
    as a real stats refresh would re-sample.
    """
    if row_scale <= 0.0:
        raise ConfigurationError(
            f"row_scale must be positive, got {row_scale}")
    catalog = Catalog(instance.schema, seed=seed)
    for table in instance.catalog.tables_with_stats():
        rows = instance.catalog.row_count(table)
        catalog.set_table_stats(table, max(1, round(rows * row_scale)))
        for column in instance.schema.table(table).columns:
            if instance.catalog.has_column_stats(table, column.name):
                catalog.set_column_distribution(
                    table, column.name,
                    instance.catalog.column_stats(
                        table, column.name).distribution)
    catalog.validate_complete()
    return Instance(instance.name, instance.family,
                    instance.schema, catalog)


def generate_drift_sqls(instance: Instance, n_queries: int = 16,
                        seed: int = DEFAULT_SEED) -> List[str]:
    """A deterministic query mix for ``instance``.

    Range filters over numeric columns (seeded selectivities) plus one
    join per declared edge, in a seeded interleaving. Only columns
    whose name is unique across the instance are used, because the
    generated SQL references columns unqualified.
    """
    if n_queries < 1:
        raise ConfigurationError(
            f"n_queries must be >= 1, got {n_queries}")
    catalog = instance.catalog
    seen: dict = {}
    for table in instance.schema.tables.values():
        for column in table.columns:
            seen[column.name] = seen.get(column.name, 0) + 1
    filters: List[tuple] = []
    for table in instance.schema.tables.values():
        for column in table.columns:
            if not column.dtype.is_numeric or seen[column.name] > 1:
                continue
            if catalog.has_column_stats(table.name, column.name):
                filters.append((table.name, column.name))
    if not filters:
        raise ConfigurationError(
            f"instance {instance.name!r} has no uniquely-named numeric "
            "columns to filter on")
    rng = derive_rng(seed, "drift-sqls", instance.name)
    sqls: List[str] = []
    edges = [edge for edge in instance.schema.join_edges
             if seen.get(edge.left_column, 0) == 1
             and seen.get(edge.right_column, 0) == 1]
    for index in range(n_queries):
        if edges and index % 3 == 2:   # every third query joins
            edge = edges[int(rng.integers(len(edges)))]
            sqls.append(
                f"SELECT count(*) FROM {edge.left_table}, "
                f"{edge.right_table} WHERE {edge.left_column} = "
                f"{edge.right_column}")
            continue
        table, column = filters[int(rng.integers(len(filters)))]
        stats = catalog.column_stats(table, column)
        frac = 0.1 + 0.8 * float(rng.random())
        value = stats.min_value + frac * (stats.max_value
                                          - stats.min_value)
        sqls.append(f"SELECT count(*) FROM {table} "
                    f"WHERE {column} <= {value:.4f}")
    return sqls


class DriftScenario:
    """A seeded request stream whose ground truth shifts on command.

    Acts as both the instance resolver the service plans against and
    the execution oracle that supplies observed times. Before
    :meth:`shift` both come from the base regime; after it, from the
    shifted one. Observed times are the simulator's noise-free
    ``query_time`` — determinism is the contract here, and the
    simulator's noise model is itself seeded per-call, which would
    couple the scenario to call order.
    """

    def __init__(self, instance: Instance,
                 row_scale: float = 1.0,
                 speed_factor: float = 4.0,
                 n_queries: int = 16,
                 seed: int = DEFAULT_SEED,
                 sqls: Optional[List[str]] = None):
        if speed_factor <= 0.0:
            raise ConfigurationError(
                f"speed_factor must be positive, got {speed_factor}")
        self.base = instance
        self.seed = seed
        self.shifted = (instance if row_scale == 1.0
                        else shift_instance(instance, row_scale,
                                            seed=seed))
        self.sqls = list(sqls) if sqls is not None else \
            generate_drift_sqls(instance, n_queries=n_queries, seed=seed)
        if not self.sqls:
            raise ConfigurationError("drift scenario needs queries")
        self._base_sim = ExecutionSimulator(instance.catalog,
                                            seed=seed)
        self._shifted_sim = ExecutionSimulator(
            self.shifted.catalog,
            SimulatorConfig(speed_factor=speed_factor), seed=seed)
        self._base_optimizer = Optimizer(instance.schema,
                                         instance.catalog)
        self._shifted_optimizer = Optimizer(self.shifted.schema,
                                            self.shifted.catalog)
        self._lock = threading.Lock()
        self._shifted_active = False
        self._served = 0

    # -- regime ------------------------------------------------------------

    @property
    def shifted_active(self) -> bool:
        with self._lock:
            return self._shifted_active

    def shift(self) -> None:
        """Make the shifted regime the ground truth."""
        with self._lock:
            self._shifted_active = True

    def reset(self) -> None:
        with self._lock:
            self._shifted_active = False

    @property
    def active(self) -> Instance:
        with self._lock:
            return self.shifted if self._shifted_active else self.base

    def resolver(self, name: str) -> Instance:
        """Instance resolver for :class:`PredictionService`."""
        if name != self.base.name:
            raise InstanceNotFoundError(
                f"unknown instance {name!r}; this scenario serves "
                f"{self.base.name!r}")
        return self.active

    # -- the request stream ------------------------------------------------

    def request(self, index: int) -> str:
        """The ``index``-th query of the deterministic stream."""
        order = derive_rng(self.seed, "drift-stream",
                           index // len(self.sqls)).permutation(
                               len(self.sqls))
        return self.sqls[int(order[index % len(self.sqls)])]

    def next_request(self) -> str:
        with self._lock:
            index = self._served
            self._served += 1
        return self.request(index)

    def observe(self, sql: str) -> float:
        """Ground-truth seconds for ``sql`` under the current regime."""
        with self._lock:
            shifted = self._shifted_active
        instance = self.shifted if shifted else self.base
        optimizer = (self._shifted_optimizer if shifted
                     else self._base_optimizer)
        simulator = self._shifted_sim if shifted else self._base_sim
        logical = parse_sql(sql, instance.schema, instance.catalog)
        plan = optimizer.optimize(logical, "drift_query")
        return float(simulator.query_time(plan))
