"""The lifecycle state machine: observe → retrain → shadow → canary.

:class:`LifecycleManager` sits behind the service's observation hook
and drives one model name through the loop a production deployment
runs forever:

* **observing** — append ground truth to the crash-safe log; once
  enough has accumulated, retrain.
* **retraining** — :class:`~repro.lifecycle.retrain.RetrainJob`
  consumes the log incrementally and registers a candidate version
  (warm-compiled by the registry, *not* serving — the active pointer
  stays pinned).
* **shadow** — the candidate scores every observation alongside the
  active model, accumulating paired q-errors without touching
  responses. A candidate that does not improve is rejected here.
* **canary** — :meth:`~repro.serving.registry.ModelRegistry.set_canary`
  routes a configured traffic fraction to the candidate. Promotion
  (:meth:`~repro.serving.registry.ModelRegistry.activate`) and
  rollback (:meth:`~repro.serving.registry.ModelRegistry.clear_canary`)
  are each a single atomic pointer swap; the previous model stays
  pinned as the active version throughout, so rolling back is *not
  moving the pointer* — there is no window where a broken candidate is
  the only answer. A canary is rolled back early when its paired error
  regresses past ``rollback_threshold`` or when its circuit breaker
  leaves ``CLOSED`` (the existing breaker machinery is the blast-radius
  detector: a candidate whose compiled artifact faults trips its own
  per-entry breaker, never the active model's).

Every transition is appended to an in-memory audit list (exposed via
``/healthz``) and counted in ``/metrics``. All decisions are counts
and seeded draws — a replayed run takes bit-identical transitions.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from ..core.ablation import TargetMode
from ..core.targets import inverse_transform
from ..errors import ConfigurationError, TrainingError
from ..faults import BreakerState
from ..rng import DEFAULT_SEED
from ..serving.registry import ModelEntry
from ..serving.service import PredictionService
from .obslog import ObservationLog, ObservationRecord
from .retrain import RetrainConfig, RetrainJob

__all__ = ["LifecycleConfig", "LifecycleManager", "LifecyclePhase"]

_LOG = logging.getLogger(__name__)

#: Floor for q-error ratios so a zero observed time cannot divide out.
_EPS = 1e-9


class LifecyclePhase(Enum):
    OBSERVING = "observing"
    RETRAINING = "retraining"
    SHADOW = "shadow"
    CANARY = "canary"

    @property
    def code(self) -> int:
        return {"observing": 0, "retraining": 1,
                "shadow": 2, "canary": 3}[self.value]


@dataclass(frozen=True)
class LifecycleConfig:
    """Thresholds of the observe→retrain→shadow→canary loop."""

    model_name: Optional[str] = None    # None = the registry default
    #: Observations between retrain attempts.
    retrain_after: int = 128
    #: Paired samples a shadow candidate must score before judgement.
    shadow_samples: int = 48
    #: Paired samples a canary must survive before promotion.
    canary_samples: int = 48
    #: Traffic fraction routed to the canary.
    canary_fraction: float = 0.2
    #: Candidate mean q-error must be <= active * this to advance
    #: (shadow → canary, canary → promoted).
    promote_threshold: float = 0.98
    #: Canary mean q-error > active * this → immediate rollback.
    rollback_threshold: float = 1.05
    #: Canary samples before the early-rollback check may fire.
    min_canary_detect: int = 8
    retrain: RetrainConfig = field(default_factory=RetrainConfig)
    #: Run retrains on a daemon thread (the CLI serve path). Off by
    #: default: synchronous retrains keep tests deterministic.
    background: bool = False
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.retrain_after < 1:
            raise ConfigurationError(
                f"retrain_after must be >= 1, got {self.retrain_after}")
        if not 0.0 < self.canary_fraction <= 1.0:
            raise ConfigurationError(
                "canary_fraction must be in (0, 1], got "
                f"{self.canary_fraction}")
        if self.promote_threshold <= 0.0 or self.rollback_threshold <= 0.0:
            raise ConfigurationError("thresholds must be positive")
        if self.shadow_samples < 1 or self.canary_samples < 1:
            raise ConfigurationError("sample counts must be >= 1")


class _PairedError:
    """Mean q-error of active vs candidate on the same observations."""

    __slots__ = ("samples", "active_sum", "candidate_sum")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.samples = 0
        self.active_sum = 0.0
        self.candidate_sum = 0.0

    @staticmethod
    def qerror(predicted: float, observed: float) -> float:
        predicted = max(float(predicted), _EPS)
        observed = max(float(observed), _EPS)
        return max(predicted / observed, observed / predicted)

    def add(self, active_pred: float, candidate_pred: float,
            observed: float) -> None:
        self.samples += 1
        self.active_sum += self.qerror(active_pred, observed)
        self.candidate_sum += self.qerror(candidate_pred, observed)

    @property
    def active_mean(self) -> float:
        return self.active_sum / self.samples if self.samples else 0.0

    @property
    def candidate_mean(self) -> float:
        return self.candidate_sum / self.samples if self.samples else 0.0

    def describe(self) -> Dict[str, object]:
        return {
            "samples": self.samples,
            "active_mean_qerror": round(self.active_mean, 6),
            "candidate_mean_qerror": round(self.candidate_mean, 6),
        }


class LifecycleManager:
    """Drives one model name through observe/retrain/shadow/canary."""

    def __init__(self, service: PredictionService, log: ObservationLog,
                 config: Optional[LifecycleConfig] = None):
        self.service = service
        self.log = log
        self.config = config or LifecycleConfig()
        self._lock = threading.RLock()
        entry = service.registry.get(self.config.model_name)
        self._name = entry.name
        # Pin the current version: from here on "newest" and "serving"
        # are decoupled — registering a candidate must not change what
        # answers until this manager promotes it.
        self._active = service.registry.activate(entry.name, entry.version)
        self._candidate: Optional[ModelEntry] = None
        self._phase = LifecyclePhase.OBSERVING
        self._since_retrain = 0
        self._errors = _PairedError()
        self._retrain_thread: Optional[threading.Thread] = None
        self.transitions: List[Dict[str, object]] = []
        self.job = RetrainJob(log, entry.model, self.config.retrain)
        self.last_swap_seconds: Optional[float] = None
        self.last_detect_samples: Optional[int] = None

        m = service.metrics
        self._m_observations = m.counter(
            "t3_lifecycle_observations_total",
            "ground-truth observations logged")
        self._m_retrains = m.counter(
            "t3_lifecycle_retrains_total", "candidate models trained")
        self._m_retrain_failures = m.counter(
            "t3_lifecycle_retrain_failures_total",
            "retrain attempts that failed")
        self._m_shadow_rejects = m.counter(
            "t3_lifecycle_shadow_rejects_total",
            "candidates rejected in shadow")
        self._m_promotions = m.counter(
            "t3_lifecycle_promotions_total", "canaries promoted to active")
        self._m_rollbacks = m.counter(
            "t3_lifecycle_rollbacks_total",
            "canaries rolled back to the previous model")
        m.gauge("t3_lifecycle_phase",
                "lifecycle phase (0 observing, 1 retraining, "
                "2 shadow, 3 canary)",
                function=lambda: float(self.phase.code))
        m.gauge("t3_lifecycle_active_version",
                "model version pinned as active",
                function=lambda: float(self.active_entry.version))
        m.gauge("t3_lifecycle_canary_version",
                "model version serving canary traffic (0 = none)",
                function=self._canary_version_metric)
        service.attach_lifecycle(self)

    # -- introspection -----------------------------------------------------

    @property
    def phase(self) -> LifecyclePhase:
        with self._lock:
            return self._phase

    @property
    def active_entry(self) -> ModelEntry:
        with self._lock:
            return self._active

    @property
    def candidate_entry(self) -> Optional[ModelEntry]:
        with self._lock:
            return self._candidate

    def _canary_version_metric(self) -> float:
        info = self.service.registry.canary_info(self._name)
        return float(info[0]) if info else 0.0

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "phase": self._phase.value,
                "model": self._name,
                "active": self._active.key,
                "active_digest": self._active.model_digest,
                "candidate": (self._candidate.key
                              if self._candidate else None),
                "since_retrain": self._since_retrain,
                "errors": self._errors.describe(),
                "log": self.log.stats(),
                "retrains": self.job.retrains,
                "last_swap_seconds": self.last_swap_seconds,
                "last_detect_samples": self.last_detect_samples,
                "transitions": list(self.transitions[-20:]),
            }

    # -- the observation hook ----------------------------------------------

    def observe_served(self, instance: str, vectors: np.ndarray,
                       cards: Optional[np.ndarray],
                       predicted_seconds: float,
                       pipeline_seconds: tuple,
                       observed_seconds: float, model_key: str) -> int:
        """Build and process one record — the service-facing hook.

        Keyword-shaped so :class:`PredictionService` never needs to
        import this package (the dependency points lifecycle → serving
        only).
        """
        return self.on_observation(ObservationRecord(
            instance=instance, vectors=vectors, cards=cards,
            predicted_seconds=predicted_seconds,
            pipeline_seconds=pipeline_seconds,
            observed_seconds=observed_seconds, model_key=model_key))

    def on_observation(self, record: ObservationRecord) -> int:
        """Log one observation and advance the state machine.

        Called by :meth:`PredictionService.observe`. The append happens
        *before* any state transition: an injected ``lifecycle.log_append``
        fault aborts the observation without advancing counters, so a
        replay under chaos stays aligned with what actually hit disk.
        """
        sequence = self.log.append(record)
        self._m_observations.inc()
        start_retrain = False
        with self._lock:
            phase = self._phase
            if phase in (LifecyclePhase.SHADOW, LifecyclePhase.CANARY):
                self._score_candidate(record)
            if phase is LifecyclePhase.SHADOW:
                self._judge_shadow(sequence)
            elif phase is LifecyclePhase.CANARY:
                self._judge_canary(sequence)
            elif phase is LifecyclePhase.OBSERVING:
                self._since_retrain += 1
                if self._since_retrain >= self.config.retrain_after:
                    # Transition under the lock; the (slow) retrain runs
                    # after release. Observations arriving meanwhile see
                    # RETRAINING and fall through to plain logging.
                    self._record_transition(LifecyclePhase.RETRAINING,
                                            "retrain_after reached",
                                            sequence)
                    self._since_retrain = 0
                    start_retrain = True
        if start_retrain:
            self._begin_retrain(sequence)
        return sequence

    # -- candidate scoring -------------------------------------------------

    def _candidate_total(self, record: ObservationRecord) -> float:
        """The candidate's predicted total for a logged observation.

        Evaluated directly on the candidate model (interpreted or
        compiled batch call), *not* through the request path — shadow
        scoring must never queue behind live traffic.
        """
        model = self._candidate.model
        raw = model.predict_raw_batch(
            np.ascontiguousarray(record.vectors, dtype=np.float64))
        if model.config.target_mode is TargetMode.PER_QUERY:
            return float(inverse_transform(raw)[0])
        cards = (record.cards if record.cards is not None
                 else np.ones(len(record.vectors)))
        return float(model.pipeline_times_from_raw(raw, cards).sum())

    def _score_candidate(self, record: ObservationRecord) -> None:
        try:
            candidate_pred = self._candidate_total(record)
        except Exception as exc:
            # A candidate that cannot even score is treated as a
            # maximally wrong prediction, not a crashed server.
            _LOG.warning("candidate %s failed to score: %s",
                         self._candidate.key, exc)
            candidate_pred = 0.0
        self._errors.add(record.predicted_seconds, candidate_pred,
                         record.observed_seconds)

    # -- transitions -------------------------------------------------------

    def _record_transition(self, to_phase: LifecyclePhase, reason: str,
                           sequence: int) -> None:
        self.transitions.append({
            "sequence": sequence,
            "from": self._phase.value,
            "to": to_phase.value,
            "reason": reason,
            "active": self._active.key,
            "candidate": (self._candidate.key
                          if self._candidate else None),
        })
        _LOG.info("lifecycle %s -> %s (%s) active=%s candidate=%s",
                  self._phase.value, to_phase.value, reason,
                  self._active.key,
                  self._candidate.key if self._candidate else None)
        self._phase = to_phase

    def _begin_retrain(self, sequence: int) -> None:
        """Kick off the retrain; the RETRAINING transition has already
        been recorded (under the lock) by :meth:`on_observation`."""
        if self.config.background:
            thread = threading.Thread(
                target=self._run_retrain, args=(sequence,),
                name="lifecycle-retrain", daemon=True)
            self._retrain_thread = thread
            thread.start()
        else:
            self._run_retrain(sequence)

    def _run_retrain(self, sequence: int) -> None:
        try:
            self.job.consume()
            candidate = self.job.train_candidate(self.active_entry.model)
            entry = self.service.registry.register(
                candidate, name=self._name,
                source=f"<retrain#{self.job.retrains}>")
        except TrainingError as exc:
            self._m_retrain_failures.inc()
            with self._lock:
                self._record_transition(LifecyclePhase.OBSERVING,
                                        f"retrain failed: {exc}", sequence)
            return
        self._m_retrains.inc()
        with self._lock:
            self._candidate = entry
            self._errors.reset()
            self._record_transition(LifecyclePhase.SHADOW,
                                    "candidate registered", sequence)

    def _judge_shadow(self, sequence: int) -> None:
        if self._errors.samples < self.config.shadow_samples:
            return
        improved = (self._errors.candidate_mean
                    <= self._errors.active_mean
                    * self.config.promote_threshold)
        if improved:
            self.service.registry.set_canary(
                self._name, self._candidate.version,
                self.config.canary_fraction)
            self._errors.reset()
            self._record_transition(LifecyclePhase.CANARY,
                                    "shadow improved", sequence)
        else:
            self._m_shadow_rejects.inc()
            self._drop_candidate("shadow did not improve", sequence)

    def _judge_canary(self, sequence: int) -> None:
        breaker = self.service.breaker_state(self._candidate)
        if breaker is not BreakerState.CLOSED:
            self._rollback(f"candidate breaker {breaker.value}", sequence)
            return
        samples = self._errors.samples
        regressed = (self._errors.candidate_mean
                     > self._errors.active_mean
                     * self.config.rollback_threshold)
        if samples >= self.config.min_canary_detect and regressed:
            self._rollback("canary error regressed", sequence)
            return
        if samples < self.config.canary_samples:
            return
        if (self._errors.candidate_mean
                <= self._errors.active_mean
                * self.config.promote_threshold):
            self._promote(sequence)
        else:
            self._rollback("canary did not improve", sequence)

    def _promote(self, sequence: int) -> None:
        started = time.perf_counter()
        # One atomic pointer swap: activate() pins the candidate and
        # clears its canary under the registry lock.
        self._active = self.service.registry.activate(
            self._name, self._candidate.version)
        self.last_swap_seconds = time.perf_counter() - started
        self._m_promotions.inc()
        self._candidate = None
        self._errors.reset()
        self._record_transition(LifecyclePhase.OBSERVING,
                                "canary promoted", sequence)

    def _rollback(self, reason: str, sequence: int) -> None:
        # The active pointer never moved — rollback is just ceasing to
        # route canary traffic. The candidate version stays registered
        # (addressable for diagnosis) but serves nothing.
        self.service.registry.clear_canary(self._name)
        self.last_detect_samples = self._errors.samples
        self._m_rollbacks.inc()
        self._drop_candidate(reason, sequence)

    def _drop_candidate(self, reason: str, sequence: int) -> None:
        self._candidate = None
        self._errors.reset()
        self._record_transition(LifecyclePhase.OBSERVING, reason, sequence)

    # -- shutdown ----------------------------------------------------------

    def join(self, timeout: Optional[float] = 10.0) -> None:
        """Wait for an in-flight background retrain (CLI shutdown)."""
        thread = self._retrain_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
