"""Zero-Shot cost model reimplementation (Hilprecht & Binnig [16]).

The original is a PyTorch graph neural network over physical plan
operators, trained on many database instances and applied to unseen
ones. This reimplementation keeps the defining properties —

* per-operator neural encodings with *transferable* features
  (operator type, cardinalities, widths, predicate counts; never
  instance-specific identifiers),
* permutation-invariant pooling over the plan's operators into a query
  embedding (Sun & Li [43] found pooling competitive with message
  passing for cost estimation),
* a regression head on log-transformed running times, trained across
  instances —

in numpy with manual backprop (no deep-learning framework is available
offline). Single-query prediction latency is therefore measured on an
interpreted NN, mirroring the latency class the paper reports for
neural models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import TrainingError
from ..metrics import QErrorSummary, summarize_predictions
from ..rng import DEFAULT_SEED, derive_rng
from ..engine.cardinality import CardinalityModel
from ..engine.physical import PhysicalOperator, PhysicalPlan
from ..engine.stages import OperatorType
from ..datagen.workload import BenchmarkedQuery
from ..core.dataset import CardinalityKind, cardinality_model_for
from .nn import MLP, AdamOptimizer, TrainingLog

_OP_TYPES = list(OperatorType)
_N_NUMERIC = 8
N_NODE_FEATURES = len(_OP_TYPES) + _N_NUMERIC

#: Clamp for log-time targets, matching the absolute-time clamp of the
#: tree ablations.
_MIN_TIME, _MAX_TIME = 1e-9, 1e5


def encode_operator(op: PhysicalOperator,
                    model: CardinalityModel) -> np.ndarray:
    """Transferable per-operator feature vector."""
    features = np.zeros(N_NODE_FEATURES)
    features[_OP_TYPES.index(op.op_type)] = 1.0
    out_card = model.output_cardinality(op)
    child_cards = [model.output_cardinality(c) for c in op.children]
    numeric = features[len(_OP_TYPES):]
    numeric[0] = np.log1p(out_card)
    numeric[1] = np.log1p(max(child_cards) if child_cards else 0.0)
    numeric[2] = np.log1p(sum(child_cards))
    numeric[3] = np.log1p(op.output_byte_width)
    predicates = getattr(op, "predicates", None) or []
    numeric[4] = float(len(predicates))
    numeric[5] = float(sum(p.evaluation_cost_weight() for p in predicates))
    numeric[6] = float(len(getattr(op, "aggregates", []) or []))
    numeric[7] = np.log1p(float(getattr(op, "stored_byte_width", 0)))
    return features


def encode_plan(plan: PhysicalPlan, model: CardinalityModel) -> np.ndarray:
    """Node-feature matrix of a plan (one row per operator)."""
    return np.stack([encode_operator(op, model)
                     for op in plan.root.walk()])


@dataclass(frozen=True)
class ZeroShotConfig:
    """Training hyperparameters."""

    hidden_size: int = 128
    n_epochs: int = 120
    batch_size: int = 64
    learning_rate: float = 1e-3
    validation_fraction: float = 0.1
    cardinalities: CardinalityKind = CardinalityKind.EXACT
    seed: int = DEFAULT_SEED


class ZeroShotModel:
    """Deep-sets plan regressor: node MLP → sum pool → head MLP."""

    def __init__(self, config: Optional[ZeroShotConfig] = None):
        self.config = config or ZeroShotConfig()
        rng = derive_rng(self.config.seed, "zeroshot-init")
        h = self.config.hidden_size
        self.node_mlp = MLP([N_NODE_FEATURES, h, h], rng)
        # Head input: mean-pooled node embedding + log(node count).
        self.head_mlp = MLP([h + 1, h, 1], rng)
        self.log = TrainingLog()
        self._fitted = False
        # Input/target standardization statistics (set by fit).
        self._x_mean = np.zeros(N_NODE_FEATURES)
        self._x_std = np.ones(N_NODE_FEATURES)
        self._y_mean = 0.0
        self._y_std = 1.0

    # -- training ----------------------------------------------------------

    def fit(self, queries: Sequence[BenchmarkedQuery]) -> "ZeroShotModel":
        if not queries:
            raise TrainingError("need at least one training query")
        node_matrices: List[np.ndarray] = []
        targets: List[float] = []
        for position, query in enumerate(queries):
            model = cardinality_model_for(query, self.config.cardinalities,
                                          seed=position)
            node_matrices.append(encode_plan(query.plan, model))
            time = np.clip(query.median_time, _MIN_TIME, _MAX_TIME)
            targets.append(-np.log(time))
        y_raw = np.asarray(targets)

        all_nodes = np.concatenate(node_matrices)
        self._x_mean = all_nodes.mean(axis=0)
        self._x_std = np.maximum(all_nodes.std(axis=0), 1e-6)
        self._y_mean = float(y_raw.mean())
        self._y_std = float(max(y_raw.std(), 1e-6))
        node_matrices = [(m - self._x_mean) / self._x_std
                         for m in node_matrices]
        y = (y_raw - self._y_mean) / self._y_std

        rng = derive_rng(self.config.seed, "zeroshot-train")
        n = len(queries)
        order = rng.permutation(n)
        n_valid = int(round(n * self.config.validation_fraction))
        valid_idx, train_idx = order[:n_valid], order[n_valid:]

        optimizer = AdamOptimizer(
            self.node_mlp.parameters() + self.head_mlp.parameters(),
            learning_rate=self.config.learning_rate)

        for epoch in range(self.config.n_epochs):
            rng.shuffle(train_idx)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, len(train_idx), self.config.batch_size):
                batch = train_idx[start:start + self.config.batch_size]
                loss = self._train_batch(
                    [node_matrices[i] for i in batch], y[batch], optimizer)
                epoch_loss += loss
                n_batches += 1
            self.log.train_losses.append(epoch_loss / max(n_batches, 1))
            if len(valid_idx):
                predictions = np.array([
                    self._forward_single(node_matrices[i])
                    for i in valid_idx])
                self.log.valid_losses.append(
                    float(np.mean((predictions - y[valid_idx]) ** 2)))
        self._fitted = True
        return self

    def _train_batch(self, matrices: List[np.ndarray], y: np.ndarray,
                     optimizer: AdamOptimizer) -> float:
        nodes = np.concatenate(matrices)
        counts = np.array([len(m) for m in matrices])
        segments = np.repeat(np.arange(len(matrices)), counts)

        self.node_mlp.zero_grad()
        self.head_mlp.zero_grad()
        hidden = self.node_mlp.forward(nodes)
        pooled = np.zeros((len(matrices), hidden.shape[1]))
        np.add.at(pooled, segments, hidden)
        pooled /= counts[:, None]
        head_in = np.concatenate(
            [pooled, np.log1p(counts)[:, None]], axis=1)
        output = self.head_mlp.forward(head_in)[:, 0]

        residual = output - y
        loss = float(np.mean(residual ** 2))
        grad_output = (2.0 / len(y)) * residual[:, None]
        grad_head_in = self.head_mlp.backward(grad_output)
        grad_pooled = grad_head_in[:, :-1] / counts[:, None]
        self.node_mlp.backward(grad_pooled[segments])
        optimizer.step()
        return loss

    # -- prediction -----------------------------------------------------------

    def _forward_single(self, nodes: np.ndarray) -> float:
        """Forward pass on *already standardized* node features."""
        hidden = self.node_mlp.forward(nodes, remember=False)
        pooled = hidden.mean(axis=0, keepdims=True)
        head_in = np.concatenate(
            [pooled, [[np.log1p(len(nodes))]]], axis=1)
        return float(self.head_mlp.forward(head_in, remember=False)[0, 0])

    def predict_query(self, plan: PhysicalPlan,
                      model: CardinalityModel) -> float:
        """Predicted execution time (seconds) of one plan."""
        if not self._fitted:
            raise TrainingError("ZeroShotModel.fit was never called")
        nodes = (encode_plan(plan, model) - self._x_mean) / self._x_std
        raw = self._forward_single(nodes) * self._y_std + self._y_mean
        return float(np.clip(np.exp(-raw), _MIN_TIME, _MAX_TIME))

    def predict_batch(self, queries: Sequence[BenchmarkedQuery],
                      kind: Optional[CardinalityKind] = None,
                      distortion: float = 1.0, seed: int = 0) -> np.ndarray:
        kind = kind or self.config.cardinalities
        predictions = np.empty(len(queries))
        for i, query in enumerate(queries):
            model = cardinality_model_for(query, kind, distortion,
                                          seed=seed + i)
            predictions[i] = self.predict_query(query.plan, model)
        return predictions

    def evaluate(self, queries: Sequence[BenchmarkedQuery],
                 kind: Optional[CardinalityKind] = None,
                 distortion: float = 1.0, seed: int = 0) -> QErrorSummary:
        predicted = self.predict_batch(queries, kind, distortion, seed)
        actual = [q.median_time for q in queries]
        return summarize_predictions(predicted, actual)
