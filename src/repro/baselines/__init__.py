"""Baseline performance-prediction models the paper compares against.

* :mod:`repro.baselines.zeroshot` — Zero-Shot cost model [16]: a neural
  network over plan-operator encodings, trained across instances
  (numpy reimplementation; see module docstring for fidelity notes),
* :mod:`repro.baselines.autowlm` — AutoWLM-style model [40]: one flat
  feature vector per *query* fed to a gradient-boosted tree,
* :mod:`repro.baselines.stage` — Stage [50]: the cache → decision tree →
  neural network hierarchy used by Amazon Redshift,
* :mod:`repro.baselines.cout` — the C_out cost function [10] used as the
  join-ordering baseline (Section 5.5),
* :mod:`repro.baselines.nn` — the minimal neural-network framework the
  Zero-Shot reimplementation is built on.
"""

from .nn import MLP, AdamOptimizer, TrainingLog
from .zeroshot import ZeroShotModel, ZeroShotConfig
from .autowlm import AutoWLMModel
from .stage import StageModel, StageConfig
from .cout import cout_cost

__all__ = [
    "MLP",
    "AdamOptimizer",
    "TrainingLog",
    "ZeroShotModel",
    "ZeroShotConfig",
    "AutoWLMModel",
    "StageModel",
    "StageConfig",
    "cout_cost",
]
