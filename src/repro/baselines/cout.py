"""The C_out cost function (Cluet & Moerkotte [10], Equation 3).

C_out of a join tree is the summed cardinality of all intermediate
results:

    C_out(T) = 0                                   if T is a leaf
    C_out(T) = |T| + C_out(T1) + C_out(T2)         if T = T1 join T2

It cannot predict execution time, but minimizing intermediate sizes is
a near-perfect join-ordering strategy (Section 5.5), which makes it the
paper's baseline cost model for DPsize.
"""

from __future__ import annotations


def cout_cost(cardinality: float, left_cost: float, right_cost: float) -> float:
    """One DP combination step of C_out: three additions."""
    return cardinality + left_cost + right_cost


COUT_LEAF_COST = 0.0
