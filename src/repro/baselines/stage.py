"""Stage-style hierarchical predictor (Wu et al. [50]).

Amazon Redshift's Stage model answers predictions from a hierarchy:

1. an **exact-match cache** of previously executed queries (~2 µs),
2. a **local decision-tree model** for queries it is confident about
   (~1 ms),
3. a slow but accurate **global neural network** (~30 ms).

This reimplementation routes through the same three tiers: a plan
fingerprint cache, an (interpreted) tree model, and the Zero-Shot
neural network. The tree tier handles structurally simple queries
(operator count below a threshold — a stand-in for Stage's proprietary
confidence estimate); everything else falls through to the NN.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..engine.cardinality import CardinalityModel
from ..engine.physical import PhysicalPlan, PTableScan
from ..datagen.workload import BenchmarkedQuery
from ..core.dataset import CardinalityKind, cardinality_model_for
from .autowlm import AutoWLMModel
from .zeroshot import ZeroShotConfig, ZeroShotModel


def plan_fingerprint(plan: PhysicalPlan) -> str:
    """Structural hash for the exact-match cache tier."""
    digest = hashlib.sha256()
    digest.update(plan.database.encode())
    for op in plan.root.walk():
        digest.update(op.op_type.value.encode())
        if isinstance(op, PTableScan):
            digest.update(op.table.encode())
            for predicate in op.predicates:
                digest.update(type(predicate).__name__.encode())
                digest.update(predicate.column.encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class StageConfig:
    """Routing knobs of the hierarchy."""

    #: Plans with at most this many operators go to the tree tier.
    tree_max_operators: int = 6
    cardinalities: CardinalityKind = CardinalityKind.EXACT


class StageModel:
    """Cache → decision tree → neural network hierarchy."""

    def __init__(self, tree: AutoWLMModel, network: ZeroShotModel,
                 config: Optional[StageConfig] = None):
        self.tree = tree
        self.network = network
        self.config = config or StageConfig()
        self._cache: Dict[str, float] = {}

    @classmethod
    def train(cls, queries: Sequence[BenchmarkedQuery],
              config: Optional[StageConfig] = None,
              network_config: Optional[ZeroShotConfig] = None) -> "StageModel":
        tree = AutoWLMModel.train(queries)
        network = ZeroShotModel(network_config).fit(queries)
        return cls(tree, network, config)

    # -- cache management ---------------------------------------------------

    def observe(self, plan: PhysicalPlan, measured_time: float) -> None:
        """Record an executed query for the cache tier."""
        self._cache[plan_fingerprint(plan)] = measured_time

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    # -- prediction -----------------------------------------------------------

    def route(self, plan: PhysicalPlan) -> str:
        """Which tier answers this plan: ``cache`` | ``tree`` | ``nn``."""
        if plan_fingerprint(plan) in self._cache:
            return "cache"
        if plan.n_operators <= self.config.tree_max_operators:
            return "tree"
        return "nn"

    def predict_query(self, plan: PhysicalPlan,
                      model: CardinalityModel) -> Tuple[float, str]:
        """Prediction plus the tier that produced it."""
        tier = self.route(plan)
        if tier == "cache":
            return self._cache[plan_fingerprint(plan)], tier
        if tier == "tree":
            return self.tree.predict_query(plan, model), tier
        return self.network.predict_query(plan, model), tier

    def predict_benchmarked(self, query: BenchmarkedQuery,
                            seed: int = 0) -> Tuple[float, str]:
        model = cardinality_model_for(query, self.config.cardinalities,
                                      seed=seed)
        return self.predict_query(query.plan, model)
