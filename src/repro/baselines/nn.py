"""Minimal neural-network framework (numpy, manual backprop).

Provides exactly what the Zero-Shot reimplementation needs: dense
layers with ReLU, He initialization, MSE loss, Adam, and mini-batch
training with gradient clipping. No autograd — gradients are derived by
hand in the models, which keeps single-prediction latency honest (one
of the quantities the paper measures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import TrainingError


@dataclass
class TrainingLog:
    """Loss curve of one training run."""

    train_losses: List[float] = field(default_factory=list)
    valid_losses: List[float] = field(default_factory=list)


class DenseLayer:
    """Fully connected layer ``y = x @ W + b`` with optional ReLU."""

    def __init__(self, n_in: int, n_out: int, relu: bool,
                 rng: np.random.Generator):
        scale = np.sqrt(2.0 / n_in)
        self.W = rng.normal(0.0, scale, size=(n_in, n_out))
        self.b = np.zeros(n_out)
        self.relu = relu
        self._x: Optional[np.ndarray] = None
        self._pre: Optional[np.ndarray] = None
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)

    def forward(self, x: np.ndarray, remember: bool = True) -> np.ndarray:
        pre = x @ self.W + self.b
        out = np.maximum(pre, 0.0) if self.relu else pre
        if remember:
            self._x, self._pre = x, pre
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise TrainingError("backward called before forward")
        if self.relu:
            grad_out = grad_out * (self._pre > 0)
        self.dW += self._x.T @ grad_out
        self.db += grad_out.sum(axis=0)
        return grad_out @ self.W.T

    def zero_grad(self) -> None:
        self.dW.fill(0.0)
        self.db.fill(0.0)

    def parameters(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        return [(self.W, self.dW), (self.b, self.db)]


class MLP:
    """Stack of dense layers; ReLU on all but the last."""

    def __init__(self, sizes: List[int], rng: np.random.Generator,
                 final_relu: bool = False):
        if len(sizes) < 2:
            raise TrainingError("MLP needs at least input and output sizes")
        self.layers: List[DenseLayer] = []
        for i in range(len(sizes) - 1):
            relu = final_relu or i < len(sizes) - 2
            self.layers.append(DenseLayer(sizes[i], sizes[i + 1], relu, rng))

    def forward(self, x: np.ndarray, remember: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, remember)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def parameters(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        params: List[Tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params


class AdamOptimizer:
    """Adam with global-norm gradient clipping."""

    def __init__(self, parameters: List[Tuple[np.ndarray, np.ndarray]],
                 learning_rate: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 clip_norm: float = 5.0):
        self._params = parameters
        self.learning_rate = learning_rate
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.clip_norm = clip_norm
        self._m = [np.zeros_like(p) for p, _ in parameters]
        self._v = [np.zeros_like(p) for p, _ in parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        total_norm = np.sqrt(sum(float((g ** 2).sum())
                                 for _, g in self._params))
        scale = 1.0
        if total_norm > self.clip_norm:
            scale = self.clip_norm / (total_norm + 1e-12)
        for i, (param, grad) in enumerate(self._params):
            g = grad * scale
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * g
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * g * g
            m_hat = self._m[i] / (1 - self.beta1 ** self._t)
            v_hat = self._v[i] / (1 - self.beta2 ** self._t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
