"""AutoWLM-style baseline (Saxena et al. [40]).

AutoWLM represents each *query* by a single flat feature vector and
predicts its execution time with a decision-tree model. That is exactly
the per-query ablation of T3 (one summed pipeline vector, absolute-time
target), so this class is a thin, named wrapper around
:class:`~repro.core.model.T3Model` with ``TargetMode.PER_QUERY`` and an
interpreted (non-compiled) tree backend — the latency class Table 1
reports for AutoWLM-like decision trees.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from ..metrics import QErrorSummary
from ..engine.cardinality import CardinalityModel
from ..engine.physical import PhysicalPlan
from ..datagen.workload import BenchmarkedQuery
from ..core.ablation import TargetMode
from ..core.dataset import CardinalityKind
from ..core.model import T3Config, T3Model


class AutoWLMModel:
    """Single-vector-per-query decision-tree predictor."""

    def __init__(self, inner: T3Model):
        self._inner = inner

    @classmethod
    def train(cls, queries: Sequence[BenchmarkedQuery],
              config: Optional[T3Config] = None) -> "AutoWLMModel":
        config = config or T3Config()
        config = replace(config, target_mode=TargetMode.PER_QUERY,
                         compile_to_native=False)
        return cls(T3Model.train(queries, config))

    def predict_query(self, plan: PhysicalPlan,
                      model: CardinalityModel) -> float:
        return self._inner.predict_query(plan, model)

    def predict_raw_one(self, vector: np.ndarray) -> float:
        return self._inner.predict_raw_one(vector)

    def evaluate(self, queries: Sequence[BenchmarkedQuery],
                 kind: Optional[CardinalityKind] = None) -> QErrorSummary:
        return self._inner.evaluate(queries, kind)

    @property
    def inner(self) -> T3Model:
        return self._inner
