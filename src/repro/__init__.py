"""repro — reproduction of *T3: Accurate and Fast Performance Prediction
for Relational Database Systems With Compiled Decision Trees*
(Rieger & Neumann, SIGMOD 2025).

Quickstart
----------

>>> from repro import build_corpus_workload, WorkloadConfig, T3Model
>>> train = build_corpus_workload(["tpch_sf1", "imdb"],
...                               WorkloadConfig(queries_per_structure=4))
>>> model = T3Model.train(train)                            # doctest: +SKIP
>>> q = train[0]
>>> from repro.core.dataset import cardinality_model_for    # doctest: +SKIP
>>> model.predict_query(q.plan, cardinality_model_for(q))   # doctest: +SKIP

Package layout
--------------

=====================  =====================================================
``repro.core``         T3 itself: features, targets, training, prediction
``repro.trees``        gradient-boosted tree framework (LightGBM substitute)
``repro.treecomp``     tree-to-native-code compilation (lleaves substitute)
``repro.engine``       push-based relational engine (Umbra substitute)
``repro.datagen``      21-instance corpus, query generation, benchmarking
``repro.baselines``    Zero-Shot / AutoWLM / Stage / C_out baselines
``repro.joinorder``    DPsize join ordering with pluggable cost models
``repro.serving``      online prediction service: registry, micro-batching,
                       plan cache, metrics, HTTP endpoints
``repro.experiments``  shared harness for the paper's tables and figures
=====================  =====================================================
"""

from .errors import ReproError
from .metrics import QErrorSummary, q_error, q_errors, summarize_q_errors
from .core.model import T3Model, T3Config, PredictionBackend
from .core.features import FeatureRegistry, default_registry
from .core.dataset import CardinalityKind, build_dataset, cardinality_model_for
from .core.ablation import TargetMode
from .datagen.instances import Instance, all_instance_names, get_instance
from .datagen.workload import (
    BenchmarkedQuery,
    WorkloadBuilder,
    WorkloadConfig,
    build_corpus_workload,
)
from .experiments.context import ExperimentContext, ExperimentScale
from .serving import (
    ModelRegistry,
    PredictionService,
    ServingConfig,
    ServingServer,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "QErrorSummary",
    "q_error",
    "q_errors",
    "summarize_q_errors",
    "T3Model",
    "T3Config",
    "PredictionBackend",
    "FeatureRegistry",
    "default_registry",
    "CardinalityKind",
    "build_dataset",
    "cardinality_model_for",
    "TargetMode",
    "Instance",
    "all_instance_names",
    "get_instance",
    "BenchmarkedQuery",
    "WorkloadBuilder",
    "WorkloadConfig",
    "build_corpus_workload",
    "ExperimentContext",
    "ExperimentScale",
    "ModelRegistry",
    "PredictionService",
    "ServingConfig",
    "ServingServer",
    "__version__",
]
