"""T3 — the Tuple Time Tree (the paper's primary contribution).

The public entry point is :class:`repro.core.model.T3Model`:

>>> from repro import T3Model, build_corpus_workload
>>> train = build_corpus_workload(["tpch_sf1", "imdb"])     # doctest: +SKIP
>>> model = T3Model.train(train)                            # doctest: +SKIP
>>> model.predict_query(train[0].plan)                      # doctest: +SKIP

Sub-modules:

* :mod:`repro.core.features` — pipeline-based feature vectors
  (Section 3: operator stages, tuple streams, generic basic features,
  feature addition for duplicate operators),
* :mod:`repro.core.targets` — tuple-centric prediction targets and the
  ``-log`` transformation (Section 2.4),
* :mod:`repro.core.dataset` — pipeline-level training datasets from
  benchmarked workloads,
* :mod:`repro.core.model` — training, native compilation, and the
  per-pipeline / per-query prediction API,
* :mod:`repro.core.ablation` — the paper's ablation variants
  (per-pipeline direct and per-query single-vector prediction).
"""

from .features import FeatureRegistry, default_registry
from .targets import (
    transform_target,
    inverse_transform,
    tuple_time_target,
    MIN_TUPLE_TIME,
    MAX_TUPLE_TIME,
)
from .dataset import PipelineDataset, build_dataset, CardinalityKind, cardinality_model_for
from .model import T3Model, T3Config, PredictionBackend
from .ablation import TargetMode

__all__ = [
    "FeatureRegistry",
    "default_registry",
    "transform_target",
    "inverse_transform",
    "tuple_time_target",
    "MIN_TUPLE_TIME",
    "MAX_TUPLE_TIME",
    "PipelineDataset",
    "build_dataset",
    "CardinalityKind",
    "cardinality_model_for",
    "T3Model",
    "T3Config",
    "PredictionBackend",
    "TargetMode",
]
