"""Model inspection: feature importances, error breakdowns, explanations.

Production adopters of a cost model need to see *why* it predicts what
it predicts. This module provides:

* :func:`feature_importance_report` — named split-count importances,
* :func:`error_breakdown` — q-error summaries grouped by any query
  attribute (group, instance, pipeline count, runtime bucket),
* :func:`explain_prediction` — per-tree decision-path attribution for a
  single pipeline vector: which features were tested and how much each
  tree contributed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TrainingError
from ..metrics import QErrorSummary, summarize_predictions
from ..trees.tree import LEAF, Tree
from ..datagen.workload import BenchmarkedQuery
from .dataset import CardinalityKind, build_dataset
from .model import T3Model


@dataclass(frozen=True)
class FeatureImportance:
    name: str
    splits: int
    fraction: float


def feature_importance_report(model: T3Model,
                              top: int = 20) -> List[FeatureImportance]:
    """Features ranked by how often the ensemble splits on them."""
    counts = model.booster.feature_importances()
    total = max(int(counts.sum()), 1)
    names = model.registry.feature_names()
    order = np.argsort(counts)[::-1][:top]
    return [FeatureImportance(names[i], int(counts[i]),
                              float(counts[i]) / total)
            for i in order if counts[i] > 0]


def error_breakdown(model: T3Model, queries: Sequence[BenchmarkedQuery],
                    key: Callable[[BenchmarkedQuery], str],
                    kind: Optional[CardinalityKind] = None
                    ) -> Dict[str, QErrorSummary]:
    """Q-error summaries of ``model`` grouped by ``key(query)``.

    Common keys: ``lambda q: q.group`` (Figure 8),
    ``lambda q: q.instance_name``, or a runtime-bucket function.
    """
    kind = kind or model.config.cardinalities
    dataset = build_dataset(queries, kind=kind, registry=model.registry)
    predicted = model.predict_dataset(dataset)
    actual = dataset.query_times()
    buckets: Dict[str, Tuple[List[float], List[float]]] = {}
    for index, query in enumerate(dataset.queries):
        bucket = buckets.setdefault(key(query), ([], []))
        bucket[0].append(float(predicted[index]))
        bucket[1].append(float(actual[index]))
    return {name: summarize_predictions(p, a)
            for name, (p, a) in sorted(buckets.items())}


def runtime_bucket(query: BenchmarkedQuery) -> str:
    """Decade bucket of a query's measured runtime (for breakdowns)."""
    import math
    decade = int(math.floor(math.log10(max(query.median_time, 1e-9))))
    return f"1e{decade}s"


@dataclass(frozen=True)
class PathStep:
    """One decision on a tree's root-to-leaf path."""

    feature: str
    threshold: float
    value: float
    went_left: bool


@dataclass
class PredictionExplanation:
    """Decomposition of one raw model evaluation.

    ``tree_contributions[i]`` is tree ``i``'s leaf value; their sum plus
    ``base_score`` is the transformed prediction. ``feature_touches``
    counts how often each feature was tested across all paths —
    the features the prediction actually depends on.
    """

    base_score: float
    tree_contributions: np.ndarray
    feature_touches: Dict[str, int]
    paths: List[List[PathStep]]

    @property
    def raw_prediction(self) -> float:
        return float(self.base_score + self.tree_contributions.sum())

    def top_features(self, top: int = 10) -> List[Tuple[str, int]]:
        ranked = sorted(self.feature_touches.items(),
                        key=lambda item: item[1], reverse=True)
        return ranked[:top]


def _walk_path(tree: Tree, x: np.ndarray,
               names: Sequence[str]) -> Tuple[List[PathStep], float]:
    node = 0
    steps: List[PathStep] = []
    while tree.left[node] != LEAF:
        feature = int(tree.feature[node])
        threshold = float(tree.threshold[node])
        went_left = bool(x[feature] <= threshold)
        steps.append(PathStep(names[feature], threshold,
                              float(x[feature]), went_left))
        node = int(tree.left[node] if went_left else tree.right[node])
    return steps, float(tree.value[node])


def explain_prediction(model: T3Model, vector: np.ndarray,
                       collect_paths: bool = False) -> PredictionExplanation:
    """Trace one pipeline vector through every tree of the ensemble."""
    x = np.asarray(vector, dtype=np.float64)
    if x.shape != (model.booster.n_features,):
        raise TrainingError(
            f"expected a vector of {model.booster.n_features} features")
    names = model.registry.feature_names()
    contributions = np.empty(model.booster.n_trees)
    touches: Dict[str, int] = {}
    paths: List[List[PathStep]] = []
    for index, tree in enumerate(model.booster.trees):
        steps, value = _walk_path(tree, x, names)
        contributions[index] = value
        for step in steps:
            touches[step.feature] = touches.get(step.feature, 0) + 1
        if collect_paths:
            paths.append(steps)
    return PredictionExplanation(model.booster.base_score, contributions,
                                 touches, paths)


def format_importance_table(importances: Sequence[FeatureImportance]) -> str:
    """Human-readable importance listing."""
    lines = [f"{'feature':44s} {'splits':>7s} {'share':>7s}"]
    for item in importances:
        lines.append(f"{item.name:44s} {item.splits:7d} "
                     f"{item.fraction * 100:6.2f}%")
    return "\n".join(lines)
