"""Ablation variants of T3's prediction strategy (Section 5.7, Figure 13).

The paper ablates two design decisions:

* **per-tuple vs per-pipeline targets** — the second variant predicts a
  pipeline's total execution time directly instead of the time per
  tuple,
* **per-pipeline vs per-query feature vectors** — the third variant
  collapses a query into a single feature vector (the sum of its
  pipeline vectors, which is also how AutoWLM-style models represent
  queries) and predicts the whole query time in one step.

All three share the training/inference machinery of
:class:`~repro.core.model.T3Model`; only target construction and
prediction aggregation differ, selected by :class:`TargetMode`.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from .dataset import PipelineDataset

#: Clamp bounds for *absolute* time targets (seconds). Wider than the
#: per-tuple bounds because whole pipelines/queries run up to minutes.
MIN_ABSOLUTE_TIME = 1e-9
MAX_ABSOLUTE_TIME = 1e5


class TargetMode(Enum):
    """What one model prediction means."""

    #: T3: per-pipeline vectors, per-tuple targets (prediction is
    #: multiplied by the pipeline's input cardinality).
    PER_TUPLE = "per_tuple"
    #: Ablation: per-pipeline vectors, absolute pipeline-time targets.
    PER_PIPELINE = "per_pipeline"
    #: Ablation: one summed vector per query, absolute query-time target.
    PER_QUERY = "per_query"


def transform_absolute(times: np.ndarray) -> np.ndarray:
    """``-log`` transform for absolute times (wider clamp than per-tuple)."""
    clipped = np.clip(np.asarray(times, dtype=np.float64),
                      MIN_ABSOLUTE_TIME, MAX_ABSOLUTE_TIME)
    return -np.log(clipped)


def training_matrices(dataset: PipelineDataset, mode: TargetMode):
    """(X, y) for the chosen target mode."""
    if mode is TargetMode.PER_TUPLE:
        return dataset.X, dataset.y
    if mode is TargetMode.PER_PIPELINE:
        return dataset.X, transform_absolute(dataset.pipeline_times)
    # PER_QUERY: sum pipeline vectors per query, label with query time.
    n_queries = dataset.n_queries
    X = np.zeros((n_queries, dataset.X.shape[1]))
    np.add.at(X, dataset.query_index, dataset.X)
    y = transform_absolute(dataset.query_times())
    return X, y
