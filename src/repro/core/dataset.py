"""Pipeline-level training datasets from benchmarked workloads.

Converts a list of :class:`~repro.datagen.workload.BenchmarkedQuery`
into the flat matrices the tree trainer consumes: one row per pipeline,
with per-tuple transformed targets, plus the bookkeeping needed to map
pipeline predictions back to queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import TrainingError
from ..engine.cardinality import (
    CardinalityModel,
    DistortedCardinalityModel,
    EstimatedCardinalityModel,
    ExactCardinalityModel,
)
from ..engine.pipelines import decompose_into_pipelines
from ..datagen.instances import get_instance
from ..datagen.workload import BenchmarkedQuery
from .features import FeatureRegistry, default_registry
from .targets import transform_target, tuple_time_target


class CardinalityKind(Enum):
    """Which cardinalities feed the feature vectors."""

    EXACT = "exact"
    ESTIMATED = "estimated"


def cardinality_model_for(query: BenchmarkedQuery,
                          kind: CardinalityKind = CardinalityKind.EXACT,
                          distortion: float = 1.0,
                          seed: int = 0) -> CardinalityModel:
    """A cardinality model for one query's instance.

    ``distortion > 1`` wraps the model in a
    :class:`~repro.engine.cardinality.DistortedCardinalityModel`
    (Figure 12's protocol).
    """
    catalog = query.catalog
    if catalog is None:
        catalog = get_instance(query.instance_name).catalog
    if kind is CardinalityKind.EXACT:
        model: CardinalityModel = ExactCardinalityModel(catalog)
    else:
        model = EstimatedCardinalityModel(catalog)
    if distortion > 1.0:
        model = DistortedCardinalityModel(model, distortion, seed=seed)
    return model


@dataclass
class PipelineDataset:
    """Flat training data: one row per pipeline.

    ``query_index[i]`` maps row ``i`` back to ``queries[query_index[i]]``
    so query-level errors can be computed from pipeline predictions.
    """

    X: np.ndarray
    y: np.ndarray                 # transformed per-tuple targets
    input_cards: np.ndarray       # pipeline input cardinalities
    pipeline_times: np.ndarray    # measured (median) pipeline times
    query_index: np.ndarray
    queries: List[BenchmarkedQuery]
    registry: FeatureRegistry

    @property
    def n_rows(self) -> int:
        return len(self.y)

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def query_times(self) -> np.ndarray:
        """Measured (median) total time per query."""
        return np.array([q.median_time for q in self.queries])

    def rows_of_query(self, query_position: int) -> np.ndarray:
        return np.nonzero(self.query_index == query_position)[0]


def build_dataset(queries: Sequence[BenchmarkedQuery],
                  kind: CardinalityKind = CardinalityKind.EXACT,
                  distortion: float = 1.0,
                  registry: Optional[FeatureRegistry] = None,
                  n_runs: Optional[int] = None,
                  seed: int = 0) -> PipelineDataset:
    """Featurize and label a benchmarked workload.

    ``n_runs`` restricts the number of benchmark repetitions used for
    the median targets (Figure 14's ablation); ``None`` uses all runs.
    """
    if not queries:
        raise TrainingError("cannot build a dataset from zero queries")
    registry = registry or default_registry()

    # Decompose every plan first so the full feature matrix can be
    # allocated once; rows are then written in place (no per-query
    # temporaries, no concatenation pass).
    per_query: List[tuple] = []
    n_rows = 0
    for position, query in enumerate(queries):
        model = cardinality_model_for(query, kind, distortion,
                                      seed=seed + position)
        pipelines = decompose_into_pipelines(query.plan)
        times = np.asarray(query.pipeline_targets(n_runs))
        if len(times) != len(pipelines):
            raise TrainingError(
                f"{query.name}: {len(times)} measured pipelines vs "
                f"{len(pipelines)} featurized")
        per_query.append((model, pipelines, times))
        n_rows += len(pipelines)

    X = np.zeros((n_rows, registry.n_features), dtype=np.float64)
    input_cards = np.empty(n_rows, dtype=np.float64)
    pipeline_times = np.empty(n_rows, dtype=np.float64)
    query_index = np.empty(n_rows, dtype=np.int64)
    row = 0
    for position, (model, pipelines, times) in enumerate(per_query):
        end = row + len(pipelines)
        registry.fill_matrix(pipelines, model, X[row:end],
                             input_cards[row:end])
        pipeline_times[row:end] = times
        query_index[row:end] = position
        row = end

    y = transform_target(tuple_time_target(pipeline_times, input_cards))
    return PipelineDataset(X, y, input_cards, pipeline_times, query_index,
                           list(queries), registry)


def split_by_family(queries: Sequence[BenchmarkedQuery],
                    test_families: Sequence[str]
                    ) -> Dict[str, List[BenchmarkedQuery]]:
    """Leave-out split: train on all families except ``test_families``."""
    test_set = set(test_families)
    train = [q for q in queries if q.family not in test_set]
    test = [q for q in queries if q.family in test_set]
    return {"train": train, "test": test}
