"""Tuple-centric prediction targets (Section 2.4).

T3 predicts the expected time to push *one tuple* through a pipeline,
and multiplies by the pipeline's input cardinality. Because per-tuple
times span many orders of magnitude (1e-15 s to ~1 s in the paper's
dataset), targets are transformed with ``t' = -log(t)`` so that relative
deviations carry equal weight everywhere on the scale.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError

#: Clamp bounds for per-tuple times before the log transform. The lower
#: bound matches the paper's observed 1e-15 s (pipelines whose input
#: cardinality vastly exceeds their work).
MIN_TUPLE_TIME = 1e-15
MAX_TUPLE_TIME = 10.0


def tuple_time_target(pipeline_time, input_cardinality):
    """Per-tuple time of a pipeline: time / max(card, 1). Vectorized."""
    time = np.asarray(pipeline_time, dtype=np.float64)
    cards = np.maximum(np.asarray(input_cardinality, dtype=np.float64), 1.0)
    if np.any(time < 0):
        raise TrainingError("pipeline times must be non-negative")
    return np.clip(time / cards, MIN_TUPLE_TIME, MAX_TUPLE_TIME)


def transform_target(t):
    """``t' = -log(t)`` (Equation 1). Accepts scalars or arrays."""
    t = np.clip(np.asarray(t, dtype=np.float64), MIN_TUPLE_TIME, MAX_TUPLE_TIME)
    return -np.log(t)


def inverse_transform(t_prime):
    """Inverse of :func:`transform_target`: ``t = exp(-t')``."""
    return np.exp(-np.asarray(t_prime, dtype=np.float64))
