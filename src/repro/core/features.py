"""Pipeline feature vectors (Section 3 of the paper).

Every pipeline becomes one fixed-size flat vector. Features are defined
*per operator stage* from a small set of generic basic features —
**percentage** (fraction of the pipeline's starting tuples reaching a
stream), **size** (bytes per tuple on a stream), and **cardinality** —
plus a **count** per stage and per-expression-class percentages for
table scans. Duplicate operator stages within a pipeline sum their
features (the paper's *feature addition*), which is why every basic
feature is designed to stay meaningful under addition.

The registry assigns indices automatically from the per-stage feature
declarations, so adding an operator requires only a new entry in
``_STAGE_FEATURES`` (the paper's "little manual work" property).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import FeatureError, SchemaError
from ..engine.cardinality import CardinalityModel
from ..engine.expressions import ExpressionKind
from ..engine.physical import (
    PGroupBy,
    PhysicalPlan,
    PIndexNLJoin,
    PSort,
    PTableScan,
    PTopK,
)
from ..engine.pipelines import (
    Pipeline,
    StageFlow,
    compute_stage_flows,
    decompose_into_pipelines,
    pipeline_input_cardinality,
)
from ..engine.stages import OperatorType, Stage, all_operator_stage_pairs

#: Table-scan expression classes with dedicated percentage features.
_EXPRESSION_CLASSES = (
    ExpressionKind.COMPARISON,
    ExpressionKind.BETWEEN,
    ExpressionKind.IN_LIST,
    ExpressionKind.LIKE,
    ExpressionKind.OTHER,
)

#: Basic features per (operator, stage), beyond the implicit ``count``.
#: Names follow the paper's ``<stream>_<kind>`` convention.
_STAGE_FEATURES: Dict[Tuple[OperatorType, Stage], Tuple[str, ...]] = {
    (OperatorType.TABLE_SCAN, Stage.SCAN): (
        "in_card", "in_size", "out_percentage",
        "expr_comparison_percentage", "expr_between_percentage",
        "expr_in_percentage", "expr_like_percentage",
        "expr_other_percentage"),
    (OperatorType.FILTER, Stage.PASS_THROUGH): (
        "in_percentage", "out_percentage", "expr_weight"),
    (OperatorType.MAP, Stage.PASS_THROUGH): (
        "in_percentage", "n_operations"),
    (OperatorType.HASH_JOIN, Stage.BUILD): (
        "in_card", "in_size", "in_percentage"),
    (OperatorType.HASH_JOIN, Stage.PROBE): (
        "in_card", "in_size", "right_percentage", "out_percentage"),
    (OperatorType.SEMI_JOIN, Stage.BUILD): (
        "in_card", "in_size", "in_percentage"),
    (OperatorType.SEMI_JOIN, Stage.PROBE): (
        "in_card", "right_percentage", "out_percentage"),
    (OperatorType.ANTI_JOIN, Stage.BUILD): (
        "in_card", "in_size", "in_percentage"),
    (OperatorType.ANTI_JOIN, Stage.PROBE): (
        "in_card", "right_percentage", "out_percentage"),
    (OperatorType.INDEX_NL_JOIN, Stage.PASS_THROUGH): (
        "in_card", "in_percentage", "out_percentage"),
    (OperatorType.BNL_JOIN, Stage.BUILD): (
        "in_card", "in_size", "in_percentage"),
    (OperatorType.BNL_JOIN, Stage.PROBE): (
        "in_card", "right_percentage", "out_percentage"),
    (OperatorType.CROSS_PRODUCT, Stage.BUILD): (
        "in_card", "in_size", "in_percentage"),
    (OperatorType.CROSS_PRODUCT, Stage.PROBE): (
        "in_card", "right_percentage", "out_percentage"),
    (OperatorType.GROUP_BY, Stage.BUILD): (
        "in_percentage", "out_card", "out_size", "n_aggregates", "n_keys"),
    (OperatorType.GROUP_BY, Stage.SCAN): ("in_card", "out_percentage"),
    (OperatorType.SIMPLE_AGG, Stage.BUILD): ("in_percentage", "n_aggregates"),
    (OperatorType.SIMPLE_AGG, Stage.SCAN): ("in_card",),
    (OperatorType.SORT, Stage.BUILD): (
        "in_card", "in_size", "in_percentage", "n_keys"),
    (OperatorType.SORT, Stage.SCAN): ("in_card", "out_percentage"),
    (OperatorType.TOP_K, Stage.BUILD): ("in_percentage", "out_card", "n_keys"),
    (OperatorType.TOP_K, Stage.SCAN): ("in_card",),
    (OperatorType.LIMIT, Stage.PASS_THROUGH): (
        "in_percentage", "out_percentage"),
    (OperatorType.WINDOW, Stage.BUILD): ("in_card", "in_size", "in_percentage"),
    (OperatorType.WINDOW, Stage.SCAN): ("in_card", "out_percentage"),
    (OperatorType.DISTINCT, Stage.BUILD): (
        "in_card", "in_size", "in_percentage", "out_card"),
    (OperatorType.DISTINCT, Stage.SCAN): ("in_card", "out_percentage"),
    (OperatorType.MATERIALIZE, Stage.BUILD): (
        "in_card", "in_size", "in_percentage"),
    (OperatorType.MATERIALIZE, Stage.SCAN): ("in_card", "out_percentage"),
    (OperatorType.UNION, Stage.BUILD): ("in_size", "in_percentage"),
    (OperatorType.UNION, Stage.SCAN): ("in_card",),
    (OperatorType.ASSERT_SINGLE, Stage.PASS_THROUGH): ("in_percentage",),
}


class _StagePlan:
    """Precomputed write plan for one ``(operator, stage)`` pair.

    Resolving feature names to column indices once at registry
    construction keeps string formatting and dict lookups off the
    per-pipeline featurization hot path.
    """

    __slots__ = ("count_index", "suffixes", "indices")

    def __init__(self, count_index: int, suffixes: Tuple[str, ...],
                 indices: Tuple[int, ...]):
        self.count_index = count_index
        self.suffixes = suffixes
        self.indices = indices


class FeatureRegistry:
    """Assigns a stable index to every feature and builds vectors.

    Feature names are ``<Operator>_<Stage>_<basic feature>``, e.g.
    ``HashJoin_Probe_right_percentage`` — the exact naming of the
    paper's Listings 3 and 4.
    """

    def __init__(self):
        self._index: Dict[str, int] = {}
        for op_type, stage in all_operator_stage_pairs():
            prefix = f"{op_type.value}_{stage.value}"
            self._register(f"{prefix}_count")
            for suffix in _STAGE_FEATURES.get((op_type, stage), ()):
                self._register(f"{prefix}_{suffix}")
        self._stage_plans: Dict[Tuple[OperatorType, Stage], _StagePlan] = {}
        for op_type, stage in all_operator_stage_pairs():
            suffixes = _STAGE_FEATURES.get((op_type, stage), ())
            prefix = f"{op_type.value}_{stage.value}"
            self._stage_plans[(op_type, stage)] = _StagePlan(
                self._index[f"{prefix}_count"], tuple(suffixes),
                tuple(self._index[f"{prefix}_{s}"] for s in suffixes))

    def _register(self, name: str) -> None:
        if name in self._index:
            raise FeatureError(f"duplicate feature {name!r}")
        self._index[name] = len(self._index)

    # -- introspection ------------------------------------------------------

    @property
    def n_features(self) -> int:
        return len(self._index)

    def feature_names(self) -> List[str]:
        return list(self._index)

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise FeatureError(f"unknown feature {name!r}") from None

    def describe_vector(self, vector: np.ndarray,
                        skip_zeros: bool = True) -> str:
        """Render a vector the way the paper's listings do."""
        if len(vector) != self.n_features:
            raise SchemaError(
                f"vector has {len(vector)} entries but the registry "
                f"declares {self.n_features} features")
        lines = []
        for name, index in self._index.items():
            value = vector[index]
            if skip_zeros and value == 0:
                continue
            lines.append(f"{name}: {value:,.6g}")
        return "\n".join(lines)

    # -- vector construction ---------------------------------------------------

    def vector_for_pipeline(self, pipeline: Pipeline,
                            model: CardinalityModel) -> np.ndarray:
        """One flat feature vector for one pipeline (Listing 1)."""
        vector = np.zeros(self.n_features, dtype=np.float64)
        self.fill_pipeline_row(pipeline, model, vector)
        return vector

    def fill_pipeline_row(self, pipeline: Pipeline, model: CardinalityModel,
                          out: np.ndarray) -> float:
        """Write one pipeline's features into ``out`` (matrix-direct path).

        ``out`` is a zero-initialized float64 row of ``n_features``
        entries — typically a view into a caller-allocated
        ``(n_pipelines, n_features)`` matrix, so featurizing a workload
        allocates no per-pipeline vectors or dicts. Returns the
        pipeline's input cardinality (computed anyway for the
        percentage features), which callers need as the per-tuple
        target denominator.
        """
        card = pipeline_input_cardinality(pipeline, model)
        start = max(card, 1.0)
        for flow in compute_stage_flows(pipeline, model):
            self._fill_stage(out, flow, start, model)
        return card

    def fill_matrix(self, pipelines: Sequence[Pipeline],
                    model: CardinalityModel, out: np.ndarray,
                    cards_out: Optional[np.ndarray] = None) -> None:
        """Featurize ``pipelines`` straight into a caller-allocated
        zeroed ``(len(pipelines), n_features)`` float64 matrix."""
        if out.shape != (len(pipelines), self.n_features):
            raise SchemaError(
                f"output matrix has shape {out.shape}, expected "
                f"({len(pipelines)}, {self.n_features})")
        for i, pipeline in enumerate(pipelines):
            card = self.fill_pipeline_row(pipeline, model, out[i])
            if cards_out is not None:
                cards_out[i] = card

    def vectors_for_plan(self, plan: PhysicalPlan,
                         model: CardinalityModel
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Feature matrix plus input cardinalities for all pipelines."""
        pipelines = decompose_into_pipelines(plan)
        vectors = np.zeros((len(pipelines), self.n_features), dtype=np.float64)
        cards = np.empty(len(pipelines))
        self.fill_matrix(pipelines, model, vectors, cards)
        return vectors, cards

    # -- per-stage feature extraction -----------------------------------------

    def _fill_stage(self, out: np.ndarray, flow: StageFlow, start: float,
                    model: CardinalityModel) -> None:
        op = flow.ref.operator
        op_type, stage = op.op_type, flow.ref.stage
        plan = self._stage_plans.get((op_type, stage))
        if plan is None:
            raise SchemaError(
                f"pipeline produced stage ({op_type.value}, {stage.value}) "
                "that the feature registry does not know; declare it in "
                "OPERATOR_STAGES and _STAGE_FEATURES")
        out[plan.count_index] += 1.0
        if not plan.suffixes:
            return
        values = self._basic_feature_values(flow, start, model, plan.suffixes)
        for index, value in zip(plan.indices, values):
            out[index] += value

    def _basic_feature_values(self, flow: StageFlow, start: float,
                              model: CardinalityModel,
                              declared: Sequence[str]) -> List[float]:
        """Basic-feature values aligned with ``declared`` order."""
        op = flow.ref.operator
        stage = flow.ref.stage
        expr: Optional[Dict[str, float]] = None
        tuples_in = flow.tuples_in
        values: List[float] = []
        for suffix in declared:
            if suffix == "in_card":
                if stage is Stage.PROBE:
                    values.append(flow.state_cardinality)
                elif isinstance(op, PIndexNLJoin):
                    values.append(float(op.inner_rows_hint))
                else:
                    values.append(tuples_in)
            elif suffix == "in_size":
                if isinstance(op, PTableScan):
                    values.append(float(op.scan_byte_width))
                else:
                    values.append(float(flow.stored_byte_width))
            elif suffix == "in_percentage":
                values.append(tuples_in / start)
            elif suffix == "right_percentage":
                values.append(tuples_in / start)
            elif suffix == "out_percentage":
                values.append(flow.tuples_out / start)
            elif suffix == "out_card":
                values.append(flow.materialized_cardinality)
            elif suffix == "out_size":
                values.append(float(op.output_byte_width))
            elif suffix == "n_aggregates":
                values.append(float(len(op.aggregates)))
            elif suffix == "n_keys":
                if isinstance(op, PGroupBy):
                    values.append(float(len(op.group_columns)))
                elif isinstance(op, (PSort, PTopK)):
                    values.append(float(len(op.keys)))
                else:
                    values.append(0.0)
            elif suffix == "n_operations":
                values.append(float(op.n_operations) * (tuples_in / start))
            elif suffix == "expr_weight":
                weight = sum(p.evaluation_cost_weight() for p in op.predicates)
                values.append(weight * (tuples_in / start))
            elif suffix.startswith("expr_"):
                if expr is None:
                    expr = self._expression_percentages(op, start, model)
                values.append(expr[suffix])
            else:  # pragma: no cover - registry and extractor stay in sync
                raise FeatureError(f"no extractor for basic feature {suffix!r}")
        return values

    def _expression_percentages(self, op: PTableScan, start: float,
                                model: CardinalityModel) -> Dict[str, float]:
        """Per-class fractions of scanned tuples each predicate class is
        evaluated on (short-circuit conjunction, Section 3)."""
        fractions = {kind: 0.0 for kind in _EXPRESSION_CLASSES}
        surviving = 1.0
        for predicate in op.predicates:
            kind = predicate.kind
            if kind not in fractions:
                kind = ExpressionKind.OTHER
            fractions[kind] += surviving
            surviving *= model.predicate_selectivity(predicate)
        scale = model.base_cardinality(op) / start if start else 1.0
        return {
            "expr_comparison_percentage":
                fractions[ExpressionKind.COMPARISON] * scale,
            "expr_between_percentage": fractions[ExpressionKind.BETWEEN] * scale,
            "expr_in_percentage": fractions[ExpressionKind.IN_LIST] * scale,
            "expr_like_percentage": fractions[ExpressionKind.LIKE] * scale,
            "expr_other_percentage": fractions[ExpressionKind.OTHER] * scale,
        }


_DEFAULT: FeatureRegistry = None


def default_registry() -> FeatureRegistry:
    """The shared registry instance (feature layout is global state)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = FeatureRegistry()
    return _DEFAULT
