"""The T3 model: training, compilation, and prediction.

``T3Model.train`` implements the paper's recipe end to end: featurize
every pipeline of every training query, transform the targets
(tuple-centric, ``-log``), train 200 gradient-boosted trees with the
MAPE objective and a 20 % validation split, and compile the ensemble to
native machine code. Prediction decomposes a plan into pipelines,
evaluates the compiled tree per pipeline, multiplies by input
cardinalities, and sums (Figure 2).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from enum import Enum
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from ..errors import CompilationError, SchemaError, TrainingError
from ..metrics import QErrorSummary, summarize_predictions
from ..rng import DEFAULT_SEED
from ..engine.cardinality import CardinalityModel
from ..engine.physical import PhysicalPlan
from ..datagen.workload import BenchmarkedQuery
from ..trees.boosting import BoostedTreesModel, BoostingParams, train_boosted_trees
from ..trees.serialize import dumps_model, loads_model
from ..treecomp.codegen import DEFAULT_STRATEGY, get_strategy
from ..treecomp.compiler import CompiledTreeModel, compile_model, find_c_compiler
from ..treecomp.interpreter import PythonScalarModel
from .ablation import TargetMode, training_matrices
from .dataset import (
    CardinalityKind,
    PipelineDataset,
    build_dataset,
    cardinality_model_for,
)
from .features import FeatureRegistry, default_registry
from .targets import inverse_transform


class PredictionBackend(Enum):
    """How the tree ensemble is evaluated at inference time."""

    COMPILED = "compiled"        # native shared library (the paper's T3)
    INTERPRETED = "interpreted"  # scalar tree walking ("T3 interpreted")


@dataclass(frozen=True)
class T3Config:
    """Full training configuration, defaulting to the paper's recipe."""

    boosting: BoostingParams = field(default_factory=lambda: BoostingParams(
        n_rounds=200, objective="mape", validation_fraction=0.2))
    cardinalities: CardinalityKind = CardinalityKind.EXACT
    target_mode: TargetMode = TargetMode.PER_TUPLE
    compile_to_native: bool = True
    #: codegen strategy for the native backend (see repro.treecomp.STRATEGIES);
    #: persisted by save() so a loaded model recompiles the same way.
    codegen_strategy: str = DEFAULT_STRATEGY
    seed: int = DEFAULT_SEED


class T3Model:
    """A trained Tuple Time Tree."""

    def __init__(self, booster: BoostedTreesModel, config: T3Config,
                 registry: Optional[FeatureRegistry] = None,
                 lineage: Optional[str] = None):
        self.booster = booster
        self.config = config
        self.registry = registry or default_registry()
        #: :meth:`digest` of the model this one was retrained from
        #: (``None`` for models trained from scratch). The lifecycle
        #: layer uses it to audit promote/rollback chains.
        self.lineage = lineage
        self._compiled: Optional[CompiledTreeModel] = None
        self._digest: Optional[str] = None
        self._scalar = PythonScalarModel(booster)
        self.backend = PredictionBackend.INTERPRETED
        if config.compile_to_native:
            self.compile()

    # -- construction -----------------------------------------------------

    @classmethod
    def train(cls, queries: Sequence[BenchmarkedQuery],
              config: Optional[T3Config] = None,
              registry: Optional[FeatureRegistry] = None) -> "T3Model":
        """Train on a benchmarked workload (the paper's Section 2.5)."""
        config = config or T3Config()
        registry = registry or default_registry()
        dataset = build_dataset(queries, kind=config.cardinalities,
                                registry=registry, seed=config.seed)
        return cls.from_dataset(dataset, config)

    @classmethod
    def from_dataset(cls, dataset: PipelineDataset,
                     config: Optional[T3Config] = None) -> "T3Model":
        """Train from an already-featurized dataset."""
        config = config or T3Config()
        X, y = training_matrices(dataset, config.target_mode)
        boosting = replace(config.boosting, seed=config.seed)
        booster = train_boosted_trees(X, y, boosting)
        return cls(booster, config, dataset.registry)

    # -- backends --------------------------------------------------------------

    def compile(self) -> bool:
        """Compile the ensemble to native code; returns success.

        Falls back silently to the interpreted backend when no C
        compiler is available, so the library works everywhere and the
        latency benchmarks can still compare both paths where possible.
        """
        if self._compiled is not None:
            return True
        # Resolve eagerly so a typo'd strategy name raises instead of
        # silently serving interpreted predictions.
        strategy = get_strategy(self.config.codegen_strategy)
        if find_c_compiler() is None:
            return False
        try:
            self._compiled = compile_model(self.booster, strategy=strategy)
        except CompilationError:
            return False
        self.backend = PredictionBackend.COMPILED
        return True

    def use_backend(self, backend: PredictionBackend) -> None:
        if backend is PredictionBackend.COMPILED and self._compiled is None:
            raise CompilationError("model was not compiled")
        self.backend = backend

    @property
    def is_compiled(self) -> bool:
        return self._compiled is not None

    # -- identity ----------------------------------------------------------

    def model_digest(self) -> str:
        """Stable identity of this model's *predictions*.

        sha256 (truncated to 16 hex chars) over the serialized ensemble
        plus the config fields that change what a prediction means —
        two models with equal digests answer identically. Computed once
        and cached (serializing 200 trees is not free); safe because
        booster and config are immutable after construction.
        """
        if self._digest is None:
            config = (f"{self.config.cardinalities.value}|"
                      f"{self.config.target_mode.value}|"
                      f"{self.config.seed}")
            blob = dumps_model(self.booster) + "|" + config
            self._digest = hashlib.sha256(
                blob.encode("utf-8")).hexdigest()[:16]
        return self._digest

    # -- low-level prediction ------------------------------------------------

    def predict_raw_one(self, vector: np.ndarray) -> float:
        """One raw (transformed-space) model evaluation — the latency path."""
        if self.backend is PredictionBackend.COMPILED:
            return self._compiled.predict_one(vector)
        return self._scalar.predict_one(vector)

    def predict_raw_batch(self, X: np.ndarray) -> np.ndarray:
        if self.backend is PredictionBackend.COMPILED:
            return self._compiled.predict(X)
        return self.booster.predict(X)

    # -- plan-level prediction ----------------------------------------------------

    def pipeline_times_from_raw(self, raw: np.ndarray,
                                cards: np.ndarray) -> np.ndarray:
        """Per-pipeline times from raw (transformed-space) predictions.

        Shared by :meth:`predict_pipeline_times` and the serving layer,
        which obtains ``raw`` through the micro-batching queue.
        """
        if self.config.target_mode is TargetMode.PER_QUERY:
            raise TrainingError(
                "per-query models do not produce pipeline times")
        if self.config.target_mode is TargetMode.PER_TUPLE:
            return inverse_transform(raw) * np.maximum(cards, 1.0)
        return inverse_transform(raw)  # PER_PIPELINE: absolute times

    def predict_pipeline_times(self, plan: PhysicalPlan,
                               model: CardinalityModel) -> np.ndarray:
        """Predicted execution time of each pipeline of ``plan``."""
        vectors, cards = self.registry.vectors_for_plan(plan, model)
        if self.config.target_mode is TargetMode.PER_QUERY:
            raise TrainingError(
                "per-query models do not produce pipeline times")
        raw = self.predict_raw_batch(np.ascontiguousarray(vectors))
        return self.pipeline_times_from_raw(raw, cards)

    def predict_query(self, plan: PhysicalPlan,
                      model: CardinalityModel) -> float:
        """Predicted total execution time of a query (Figure 2)."""
        if self.config.target_mode is TargetMode.PER_QUERY:
            vectors, _ = self.registry.vectors_for_plan(plan, model)
            return float(inverse_transform(
                self.predict_raw_one(vectors.sum(axis=0))))
        return float(self.predict_pipeline_times(plan, model).sum())

    def predict_benchmarked(self, query: BenchmarkedQuery,
                            kind: Optional[CardinalityKind] = None,
                            distortion: float = 1.0,
                            seed: int = 0) -> float:
        """Predict one benchmarked query under a cardinality regime."""
        kind = kind or self.config.cardinalities
        model = cardinality_model_for(query, kind, distortion, seed=seed)
        return self.predict_query(query.plan, model)

    # -- batch evaluation ----------------------------------------------------------

    def predict_dataset(self, dataset: PipelineDataset) -> np.ndarray:
        """Predicted total time per query of a featurized dataset (batch)."""
        if self.config.target_mode is TargetMode.PER_QUERY:
            X, _ = training_matrices(dataset, TargetMode.PER_QUERY)
            return inverse_transform(self.predict_raw_batch(X))
        raw = self.predict_raw_batch(dataset.X)
        if self.config.target_mode is TargetMode.PER_TUPLE:
            pipeline_times = (inverse_transform(raw)
                              * np.maximum(dataset.input_cards, 1.0))
        else:
            pipeline_times = inverse_transform(raw)
        totals = np.zeros(dataset.n_queries)
        np.add.at(totals, dataset.query_index, pipeline_times)
        return totals

    def evaluate(self, queries: Sequence[BenchmarkedQuery],
                 kind: Optional[CardinalityKind] = None,
                 distortion: float = 1.0,
                 seed: int = 0) -> QErrorSummary:
        """Q-error summary of query-time predictions on a workload."""
        kind = kind or self.config.cardinalities
        dataset = build_dataset(queries, kind=kind, distortion=distortion,
                                registry=self.registry, seed=seed)
        predicted = self.predict_dataset(dataset)
        return summarize_predictions(predicted, dataset.query_times())

    # -- persistence -------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Persist the trained model (config + trees) as JSON."""
        payload = {
            "model": json.loads(dumps_model(self.booster)),
            "cardinalities": self.config.cardinalities.value,
            "target_mode": self.config.target_mode.value,
            "seed": self.config.seed,
            "feature_names": self.registry.feature_names(),
            "codegen": self.config.codegen_strategy,
        }
        if self.lineage:
            payload["lineage"] = self.lineage
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Union[str, Path],
             compile_to_native: bool = True,
             codegen: Optional[str] = None) -> "T3Model":
        """Load a persisted model.

        ``codegen`` overrides the persisted codegen strategy (models
        saved before the strategy layer default to ``nested_if``).
        """
        payload = json.loads(Path(path).read_text())
        booster = loads_model(json.dumps(payload["model"]))
        saved_names = payload.get("feature_names")
        if saved_names is not None:
            live_names = default_registry().feature_names()
            if saved_names != live_names:
                raise SchemaError(
                    "persisted model was trained against a different "
                    f"feature layout ({len(saved_names)} names vs "
                    f"{len(live_names)} in this build); retrain or load "
                    "with a matching registry")
        config = T3Config(
            cardinalities=CardinalityKind(payload["cardinalities"]),
            target_mode=TargetMode(payload["target_mode"]),
            compile_to_native=compile_to_native,
            codegen_strategy=codegen or payload.get("codegen",
                                                    DEFAULT_STRATEGY),
            seed=payload["seed"])
        return cls(booster, config, lineage=payload.get("lineage"))

    def close(self) -> None:
        """Release the compiled library's build directory."""
        if self._compiled is not None:
            self._compiled.close()
