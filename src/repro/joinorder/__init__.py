"""Join ordering with T3 as a cost model (Section 5.5).

* :mod:`repro.joinorder.joingraph` — join graphs with a cardinality
  oracle (exact cardinalities, like the paper's setup),
* :mod:`repro.joinorder.costmodels` — the C_out baseline and the
  incremental T3 cost model (two model calls per DP combination, with
  completed-pipeline caching),
* :mod:`repro.joinorder.dpsize` — the DPsize dynamic-programming
  enumerator [34] with pluggable cost models,
* :mod:`repro.joinorder.greedy` — a greedy orderer on estimated
  cardinalities, standing in for the native optimizer row of Table 6.
"""

from .joingraph import JoinGraph, Relation, GraphEdge
from .costmodels import CoutJoinCost, T3JoinCost, JoinCostModel
from .dpsize import dpsize, DPResult, join_tree_tables
from .greedy import greedy_order

__all__ = [
    "JoinGraph",
    "Relation",
    "GraphEdge",
    "JoinCostModel",
    "CoutJoinCost",
    "T3JoinCost",
    "dpsize",
    "DPResult",
    "join_tree_tables",
    "greedy_order",
]
