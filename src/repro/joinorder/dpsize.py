"""DPsize join enumeration (Moerkotte & Neumann [34]).

Enumerates connected subplans by size: for every target size ``s`` and
split ``s1 + s2 = s``, all pairs of disjoint connected subsets of sizes
``s1``/``s2`` that are linked by a join edge are combined, keeping the
cheapest plan per subset. The cost model is pluggable (C_out or T3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from ..errors import PlanError
from .costmodels import DPState, JoinCostModel
from .joingraph import JoinGraph

#: A join tree: either a relation index (leaf) or a (left, right) pair.
JoinTree = Union[int, Tuple["JoinTree", "JoinTree"]]


@dataclass
class _Entry:
    tree: JoinTree
    state: DPState
    cardinality: float


@dataclass
class DPResult:
    """Outcome of one DPsize run."""

    tree: JoinTree
    cost: float
    cardinality: float
    model_calls: int
    optimization_seconds: float
    n_entries: int


def dpsize(graph: JoinGraph, cost_model: JoinCostModel) -> DPResult:
    """Find the cheapest bushy join tree without cross products."""
    n = graph.n_relations
    if n > 24:
        raise PlanError(f"DPsize limited to 24 relations, got {n}")
    start_time = time.perf_counter()
    calls_before = cost_model.model_calls

    table: Dict[int, _Entry] = {}
    by_size: List[List[int]] = [[] for _ in range(n + 1)]
    for relation in graph.relations:
        mask = 1 << relation.index
        state = cost_model.leaf(relation)
        table[mask] = _Entry(relation.index, state, relation.cardinality)
        by_size[1].append(mask)

    # Ordered pairs: (T1, T2) and (T2, T1) are distinct candidates, as
    # the left subtree builds and the right probes — cost models like T3
    # are orientation-sensitive (C_out is symmetric and unaffected).
    for size in range(2, n + 1):
        for left_size in range(1, size):
            right_size = size - left_size
            for left_mask in by_size[left_size]:
                for right_mask in by_size[right_size]:
                    if left_mask & right_mask:
                        continue
                    if not graph.connected(left_mask, right_mask):
                        continue
                    combined = left_mask | right_mask
                    left = table[left_mask]
                    right = table[right_mask]
                    out_card = graph.cardinality(combined)
                    state = cost_model.combine(
                        graph, left.state, right.state,
                        left.cardinality, right.cardinality, out_card)
                    existing = table.get(combined)
                    if (existing is None
                            or state.comparison_cost
                            < existing.state.comparison_cost):
                        if existing is None:
                            by_size[size].append(combined)
                        table[combined] = _Entry(
                            (left.tree, right.tree), state, out_card)

    full_mask = (1 << n) - 1
    if full_mask not in table:
        raise PlanError("join graph is not connected")
    best = table[full_mask]
    return DPResult(
        tree=best.tree,
        cost=best.state.comparison_cost,
        cardinality=best.cardinality,
        model_calls=cost_model.model_calls - calls_before,
        optimization_seconds=time.perf_counter() - start_time,
        n_entries=len(table))


def join_tree_tables(tree: JoinTree, graph: JoinGraph) -> List[str]:
    """Flatten a join tree to its table names, left-deep order."""
    if isinstance(tree, int):
        return [graph.relations[tree].table]
    left, right = tree
    return join_tree_tables(left, graph) + join_tree_tables(right, graph)


def tree_to_logical(tree: JoinTree, graph: JoinGraph):
    """Rebuild a logical join tree with the chosen order (forced plan)."""
    from ..engine.logical import LogicalJoin

    def build(node: JoinTree) -> Tuple[object, int]:
        if isinstance(node, int):
            return graph.relations[node].scan, 1 << node
        left_plan, left_mask = build(node[0])
        right_plan, right_mask = build(node[1])
        graph_edge = graph.edge_between_sets(left_mask, right_mask)
        if graph_edge is None:
            raise PlanError("join tree contains a cross product")
        edge = graph_edge.edge
        # Orient the edge so its left table is in the left subtree.
        left_tables = {graph.relations[i].table for i in range(graph.n_relations)
                       if left_mask & (1 << i)}
        if edge.left_table not in left_tables:
            edge = edge.reversed()
        return LogicalJoin(left_plan, right_plan, edge), left_mask | right_mask

    plan, _ = build(tree)
    return plan
