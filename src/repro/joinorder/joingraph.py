"""Join graphs with a cardinality oracle.

The join-ordering experiments use *correct* cardinalities supplied with
low latency (the paper's "cardinality oracle"), so the measured
optimization time stresses the cost model, not estimation. The oracle
here memoizes subset cardinalities computed from filtered base
cardinalities and per-edge join selectivities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PlanError
from ..engine.cardinality import ExactCardinalityModel
from ..engine.catalog import Catalog
from ..engine.logical import LogicalJoin, LogicalNode, LogicalScan
from ..engine.schema import JoinEdge


@dataclass
class Relation:
    """One base relation of the join graph."""

    index: int
    table: str
    scan: LogicalScan
    cardinality: float      # after local predicates (oracle)
    base_rows: float        # before predicates
    tuple_width: int


@dataclass
class GraphEdge:
    """A join edge between two relations with its oracle selectivity."""

    left: int
    right: int
    edge: JoinEdge
    selectivity: float

    def other(self, index: int) -> int:
        return self.right if index == self.left else self.left


class JoinGraph:
    """Relations + edges + memoized subset-cardinality oracle."""

    def __init__(self, relations: Sequence[Relation],
                 edges: Sequence[GraphEdge]):
        if not relations:
            raise PlanError("join graph needs at least one relation")
        self.relations = list(relations)
        self.edges = list(edges)
        self._cards: Dict[int, float] = {}
        self._edges_by_pair: Dict[Tuple[int, int], GraphEdge] = {}
        for graph_edge in self.edges:
            key = (min(graph_edge.left, graph_edge.right),
                   max(graph_edge.left, graph_edge.right))
            self._edges_by_pair.setdefault(key, graph_edge)

    @property
    def n_relations(self) -> int:
        return len(self.relations)

    # -- connectivity ------------------------------------------------------

    def connected(self, mask_a: int, mask_b: int) -> bool:
        """Is there an edge between the two (disjoint) subsets?"""
        for graph_edge in self.edges:
            left_bit = 1 << graph_edge.left
            right_bit = 1 << graph_edge.right
            if (mask_a & left_bit and mask_b & right_bit) or \
               (mask_a & right_bit and mask_b & left_bit):
                return True
        return False

    def edge_between_sets(self, mask_a: int,
                          mask_b: int) -> Optional[GraphEdge]:
        for graph_edge in self.edges:
            left_bit = 1 << graph_edge.left
            right_bit = 1 << graph_edge.right
            if (mask_a & left_bit and mask_b & right_bit) or \
               (mask_a & right_bit and mask_b & left_bit):
                return graph_edge
        return None

    # -- cardinality oracle ----------------------------------------------------

    def cardinality(self, mask: int) -> float:
        """Oracle cardinality of a subset (product form, memoized)."""
        cached = self._cards.get(mask)
        if cached is not None:
            return cached
        card = 1.0
        for relation in self.relations:
            if mask & (1 << relation.index):
                card *= relation.cardinality
        for graph_edge in self.edges:
            if (mask & (1 << graph_edge.left)
                    and mask & (1 << graph_edge.right)):
                card *= graph_edge.selectivity
        self._cards[mask] = card
        return card

    # -- construction from logical plans -------------------------------------------

    @classmethod
    def from_logical(cls, plan: LogicalNode, catalog: Catalog) -> "JoinGraph":
        """Extract the join graph of an SPJ(-plus-aggregation) query.

        Walks past non-join operators at the top, then collects scans
        and inner-join edges. Oracle numbers come from the exact
        cardinality model's machinery: true predicate selectivities,
        correlation factors, distinct counts, and fanouts.
        """
        scans: List[LogicalScan] = []
        join_pairs: List[JoinEdge] = []

        def collect(node: LogicalNode) -> None:
            if isinstance(node, LogicalScan):
                scans.append(node)
            elif isinstance(node, LogicalJoin):
                if node.kind != "inner":
                    raise PlanError("join graph supports inner joins only")
                join_pairs.append(node.edge)
                collect(node.left)
                collect(node.right)
            elif len(node.inputs) == 1:
                collect(node.inputs[0])
            else:
                raise PlanError(
                    f"cannot extract join graph through {type(node).__name__}")

        collect(plan)
        table_index = {scan.table: i for i, scan in enumerate(scans)}
        if len(table_index) != len(scans):
            raise PlanError("join graph requires distinct table instances")

        exact = _OracleHelper(catalog)
        relations = []
        for i, scan in enumerate(scans):
            base = float(catalog.row_count(scan.table))
            filtered = base * exact.conjunction_selectivity(scan)
            width = catalog.schema.table(scan.table).row_byte_width
            relations.append(Relation(i, scan.table, scan, filtered, base, width))

        edges = []
        for join_edge in join_pairs:
            left = table_index[join_edge.left_table]
            right = table_index[join_edge.right_table]
            selectivity = exact.join_selectivity(join_edge)
            edges.append(GraphEdge(left, right, join_edge, selectivity))
        return cls(relations, edges)


class GraphCardinalityModel(ExactCardinalityModel):
    """Exact cardinalities backed by a join graph's oracle.

    When a forced join tree combines subsets connected by *several*
    edges, a real engine applies all of them as join predicates; the
    plain per-join model sees only one and over-counts. This model
    computes every join node's output as the graph oracle's cardinality
    of its base-table set, honoring all internal edges — matching what
    executing the forced plan would produce.
    """

    def __init__(self, graph: "JoinGraph", catalog: Catalog):
        super().__init__(catalog)
        self.graph = graph
        self._mask_by_table = {relation.table: 1 << relation.index
                               for relation in graph.relations}

    def _subtree_mask(self, op) -> int:
        from ..engine.physical import PTableScan
        mask = 0
        for node in op.walk():
            if isinstance(node, PTableScan):
                mask |= self._mask_by_table.get(node.table, 0)
        return mask

    def _compute(self, op) -> float:
        from ..engine.physical import _JoinBase
        if isinstance(op, _JoinBase):
            mask = self._subtree_mask(op)
            if mask:
                return self.graph.cardinality(mask)
        return super()._compute(op)


class _OracleHelper(ExactCardinalityModel):
    """Reuses the exact model's selectivity rules for graph construction."""

    def conjunction_selectivity(self, scan: LogicalScan) -> float:
        return self._conjunction_selectivity(scan.predicates,
                                             scan.correlation_factor)

    def join_selectivity(self, edge: JoinEdge) -> float:
        nd_left = float(self.catalog.column_stats(
            edge.left_table, edge.left_column).true_distinct)
        nd_right = float(self.catalog.column_stats(
            edge.right_table, edge.right_column).true_distinct)
        return edge.fanout / max(nd_left, nd_right, 1.0)
