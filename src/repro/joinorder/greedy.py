"""Greedy join ordering on *estimated* cardinalities.

Stands in for the "Native DB" row of Table 6: a production optimizer
that does not see true cardinalities. Greedy operator ordering (GOO):
repeatedly join the connected pair of partial plans with the smallest
estimated output.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import PlanError
from ..rng import derive_rng
from .dpsize import JoinTree
from .joingraph import JoinGraph


def greedy_order(graph: JoinGraph, estimation_sigma: float = 0.8,
                 seed: int = 0) -> JoinTree:
    """Greedy ordering with lognormal estimation noise on subset sizes.

    ``estimation_sigma`` controls how wrong the optimizer's cardinality
    estimates are (0 = perfect estimates, which makes greedy nearly
    optimal on acyclic graphs).
    """
    rng = derive_rng(seed, "greedy-noise")
    n = graph.n_relations
    components: Dict[int, JoinTree] = {1 << i: i for i in range(n)}

    def estimated(mask: int) -> float:
        truth = graph.cardinality(mask)
        if estimation_sigma <= 0:
            return truth
        noise_rng = derive_rng(seed, "greedy-card", mask)
        return truth * float(np.exp(noise_rng.normal(0.0, estimation_sigma)))

    while len(components) > 1:
        best: Tuple[float, int, int] = None
        masks = list(components)
        for i, mask_a in enumerate(masks):
            for mask_b in masks[i + 1:]:
                if not graph.connected(mask_a, mask_b):
                    continue
                size = estimated(mask_a | mask_b)
                if best is None or size < best[0]:
                    best = (size, mask_a, mask_b)
        if best is None:
            raise PlanError("join graph is not connected")
        _, mask_a, mask_b = best
        components[mask_a | mask_b] = (components.pop(mask_a),
                                       components.pop(mask_b))
    return next(iter(components.values()))
