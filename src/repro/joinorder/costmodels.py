"""Cost models for the DPsize enumerator.

Two models, as in Table 5 of the paper:

* :class:`CoutJoinCost` — C_out: three additions per combination,
* :class:`T3JoinCost` — T3 as a cost model, applied incrementally:
  every new join changes exactly two pipelines (the left subtree's open
  pipeline gains a hash-join *build* stage, the right subtree's open
  pipeline gains a *probe* stage), so each DP combination makes exactly
  **two** T3 model calls; the cost of pipelines completed deeper in the
  subtrees is cached in the DP entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.features import FeatureRegistry, default_registry
from ..core.targets import inverse_transform
from ..engine.cardinality import ExactCardinalityModel
from ..engine.catalog import Catalog
from ..engine.physical import PTableScan
from ..engine.pipelines import Pipeline, StageRef
from ..engine.stages import Stage
from .joingraph import JoinGraph, Relation


@dataclass
class DPState:
    """Cost-model-specific state carried in each DP table entry.

    ``comparison_cost`` orders candidate plans. The T3 model
    additionally carries the open pipeline's feature vector and the cost
    of all already-completed pipelines.
    """

    comparison_cost: float
    completed_cost: float = 0.0
    open_vector: Optional[np.ndarray] = None
    open_start: float = 1.0


class JoinCostModel:
    """Interface consumed by DPsize."""

    #: Number of model invocations made so far (Table 5's "Model Calls").
    model_calls: int = 0

    def leaf(self, relation: Relation) -> DPState:
        raise NotImplementedError

    def combine(self, graph: JoinGraph, left: DPState, right: DPState,
                left_card: float, right_card: float,
                out_card: float) -> DPState:
        raise NotImplementedError


class CoutJoinCost(JoinCostModel):
    """C_out: cost = output cardinality + child costs (Equation 3)."""

    def __init__(self):
        self.model_calls = 0

    def leaf(self, relation: Relation) -> DPState:
        return DPState(comparison_cost=0.0)

    def combine(self, graph: JoinGraph, left: DPState, right: DPState,
                left_card: float, right_card: float,
                out_card: float) -> DPState:
        self.model_calls += 1
        return DPState(comparison_cost=out_card + left.comparison_cost
                       + right.comparison_cost)


class T3JoinCost(JoinCostModel):
    """T3 applied incrementally inside DPsize.

    Open pipelines are represented directly as T3 feature vectors. A
    combination (T1 join T2):

    1. appends ``HashJoin_Build`` features to T1's open vector and
       *completes* that pipeline (model call #1),
    2. appends ``HashJoin_Probe`` features to T2's open vector, which
       stays open (model call #2 estimates its running cost for plan
       comparison).
    """

    def __init__(self, predict_raw_one,
                 registry: Optional[FeatureRegistry] = None,
                 catalog: Optional[Catalog] = None):
        """``predict_raw_one``: vector → transformed per-tuple time
        (e.g. ``T3Model.predict_raw_one`` of a compiled model).

        With a ``catalog``, DP leaves are featurized by the *real*
        pipeline featurizer (predicate classes, evaluation percentages,
        scan widths all faithful to training data); without one, a
        coarse hand-built scan vector is used.
        """
        self._predict = predict_raw_one
        self.registry = registry or default_registry()
        self.catalog = catalog
        self._exact = ExactCardinalityModel(catalog) if catalog else None
        self.model_calls = 0
        index = self.registry.index_of
        self._scan_count = index("TableScan_Scan_count")
        self._scan_card = index("TableScan_Scan_in_card")
        self._scan_size = index("TableScan_Scan_in_size")
        self._scan_out = index("TableScan_Scan_out_percentage")
        self._scan_cmp = index("TableScan_Scan_expr_comparison_percentage")
        self._build_count = index("HashJoin_Build_count")
        self._build_card = index("HashJoin_Build_in_card")
        self._build_size = index("HashJoin_Build_in_size")
        self._build_pct = index("HashJoin_Build_in_percentage")
        self._probe_count = index("HashJoin_Probe_count")
        self._probe_card = index("HashJoin_Probe_in_card")
        self._probe_size = index("HashJoin_Probe_in_size")
        self._probe_right = index("HashJoin_Probe_right_percentage")
        self._probe_out = index("HashJoin_Probe_out_percentage")

    def _pipeline_time(self, vector: np.ndarray, start: float) -> float:
        self.model_calls += 1
        return float(inverse_transform(self._predict(vector))) * max(start, 1.0)

    def leaf(self, relation: Relation) -> DPState:
        vector = self._leaf_vector(relation)
        open_estimate = self._pipeline_time(vector, relation.base_rows)
        return DPState(comparison_cost=open_estimate, completed_cost=0.0,
                       open_vector=vector, open_start=relation.base_rows)

    def _leaf_vector(self, relation: Relation) -> np.ndarray:
        if self._exact is not None:
            # Faithful path: lower the scan and use the real featurizer.
            schema_table = self.catalog.schema.table(relation.table)
            columns = [(relation.table, c) for c in schema_table.column_names]
            predicates = sorted(
                relation.scan.predicates,
                key=lambda p: p.estimated_selectivity(self.catalog))
            scan = PTableScan(relation.table, predicates,
                              relation.scan.correlation_factor,
                              columns, schema_table.row_byte_width,
                              scan_byte_width=schema_table.row_byte_width)
            pipeline = Pipeline(0, [StageRef(scan, Stage.SCAN)])
            return self.registry.vector_for_pipeline(pipeline, self._exact)
        # Coarse fallback without catalog access.
        vector = np.zeros(self.registry.n_features)
        vector[self._scan_count] = 1.0
        vector[self._scan_card] = relation.base_rows
        vector[self._scan_size] = relation.tuple_width
        vector[self._scan_out] = relation.cardinality / max(relation.base_rows, 1.0)
        vector[self._scan_cmp] = float(len(relation.scan.predicates))
        return vector

    def combine(self, graph: JoinGraph, left: DPState, right: DPState,
                left_card: float, right_card: float,
                out_card: float) -> DPState:
        # Model call 1: close the left subtree's pipeline with a build.
        build_vector = left.open_vector.copy()
        build_vector[self._build_count] += 1.0
        build_vector[self._build_card] += left_card
        build_vector[self._build_size] += 16.0
        build_vector[self._build_pct] += left_card / max(left.open_start, 1.0)
        build_time = self._pipeline_time(build_vector, left.open_start)

        # Model call 2: extend the right subtree's open pipeline by a probe.
        probe_vector = right.open_vector.copy()
        probe_vector[self._probe_count] += 1.0
        probe_vector[self._probe_card] += left_card
        probe_vector[self._probe_size] += 16.0
        probe_vector[self._probe_right] += right_card / max(right.open_start, 1.0)
        probe_vector[self._probe_out] += out_card / max(right.open_start, 1.0)
        open_estimate = self._pipeline_time(probe_vector, right.open_start)

        completed = left.completed_cost + right.completed_cost + build_time
        return DPState(comparison_cost=completed + open_estimate,
                       completed_cost=completed,
                       open_vector=probe_vector,
                       open_start=right.open_start)
