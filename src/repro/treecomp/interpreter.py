"""Interpreted tree-model evaluation baselines.

Three interpretation strategies bracket the compiled model in the
latency experiments:

* :class:`PythonScalarModel` — per-call scalar tree walking, the
  "T3 interpreted" row of Table 1 (LightGBM's own single-row path is an
  interpreter too),
* :class:`InterpretedModel` — vectorized numpy evaluation, fastest
  interpreted option for batches,
* :class:`MultiThreadedInterpretedModel` — chunked evaluation across a
  thread pool, the "interpreted MT" line of Figure 5.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np

from ..errors import TrainingError
from ..trees.boosting import BoostedTreesModel


class PythonScalarModel:
    """Scalar interpreter: walks every tree node by node per prediction."""

    def __init__(self, model: BoostedTreesModel):
        self._model = model
        self.n_features = model.n_features

    def predict_one(self, x: np.ndarray) -> float:
        return self._model.predict_one(np.asarray(x, dtype=np.float64))

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            return np.array([self.predict_one(X)])
        return np.array([self.predict_one(row) for row in X])


class InterpretedModel:
    """Vectorized numpy interpreter (single-threaded)."""

    def __init__(self, model: BoostedTreesModel):
        self._model = model
        self.n_features = model.n_features

    def predict_one(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        return float(self._model.predict(x[None, :])[0])

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            return np.array([self.predict_one(X)])
        return self._model.predict(X)


class MultiThreadedInterpretedModel:
    """Interpreted evaluation chunked across a pool of worker threads.

    Mirrors LightGBM's multi-threaded interpretation in Figure 5: it
    only pays off for very large batches, where per-chunk numpy work
    dominates the thread coordination overhead.
    """

    def __init__(self, model: BoostedTreesModel, n_threads: int = 4,
                 min_chunk: int = 64):
        if n_threads < 1:
            raise TrainingError("n_threads must be >= 1")
        self._model = model
        self.n_features = model.n_features
        self.n_threads = n_threads
        self.min_chunk = min_chunk
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.n_threads)
        return self._pool

    def predict_one(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        return float(self._model.predict(x[None, :])[0])

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            return np.array([self.predict_one(X)])
        if len(X) < self.min_chunk * 2:
            return self._model.predict(X)
        pool = self._ensure_pool()
        chunks = np.array_split(np.arange(len(X)), self.n_threads)
        chunks = [c for c in chunks if len(c)]
        results = list(pool.map(lambda c: self._model.predict(X[c]), chunks))
        return np.concatenate(results)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
