"""Native compilation and loading of generated tree code.

``compile_model`` writes the generated C to a private temporary
directory, invokes the system C compiler (``cc``/``gcc``/``clang``,
``-O2 -shared -fPIC``), and loads the resulting shared library with
:mod:`ctypes`. Compilation happens once after training and does not add
to inference latency (paper, Section 2.6).

Every :class:`CodegenStrategy <repro.treecomp.codegen.CodegenStrategy>`
exports the batch entry point ``<prefix>_predict_batch``; single-row
prediction is a 1-row batch through a per-thread staging buffer, so the
process pays exactly **one** foreign-function call per prediction
request regardless of shape — and exactly one per micro-batch on the
serving path.
"""

from __future__ import annotations

import ctypes
import functools
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..errors import CompilationError
from ..trees.boosting import BoostedTreesModel
from .codegen import DEFAULT_STRATEGY, CodegenStrategy, get_strategy

_COMPILER_CANDIDATES = ("cc", "gcc", "clang")


def find_c_compiler() -> Optional[str]:
    """Absolute path of the first available system C compiler, or ``None``."""
    for name in _COMPILER_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


@functools.lru_cache(maxsize=1)
def compiler_info() -> Optional[str]:
    """One-line description of the system C compiler, or ``None``.

    Used by the serving health endpoint to report whether predictions
    run through the compiled or the interpreted backend. Memoized for
    the life of the process — the toolchain does not change under us,
    and ``/healthz`` calls this per snapshot, which used to shell out
    to ``cc --version`` on every scrape. Tests can reset the cache via
    ``compiler_info.cache_clear()``.
    """
    path = find_c_compiler()
    if path is None:
        return None
    try:
        result = subprocess.run([path, "--version"], capture_output=True,
                                text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return path
    first_line = (result.stdout or "").strip().splitlines()
    return first_line[0] if first_line else path


class _ThreadBuffers(threading.local):
    """Per-thread scratch space for 1-row batch calls.

    ``predict_one`` must not race concurrent callers on a shared output
    buffer, and must not allocate on the 4 µs hot path — each thread
    gets its own 1-element output array, created lazily on first use.
    """

    def __init__(self) -> None:
        self.out: np.ndarray = np.empty(1, dtype=np.float64)


class CompiledTreeModel:
    """A tree ensemble compiled to a native shared library.

    Use :func:`compile_model` to create instances. The object owns the
    temporary directory holding the generated source and shared library;
    :meth:`close` (or garbage collection) removes it.

    ``ffi_calls`` counts native invocations since load — the serving
    tests assert exactly one per micro-batch.
    """

    def __init__(self, library_path: Path, workdir: Optional[Path],
                 n_features: int, symbol_prefix: str,
                 strategy: Union[str, CodegenStrategy] = DEFAULT_STRATEGY):
        resolved = get_strategy(strategy)
        self._workdir = workdir
        self.library_path = Path(library_path)
        self.n_features = n_features
        self.strategy = resolved.name
        self.ffi_calls = 0
        self._buffers = _ThreadBuffers()
        self._lib = ctypes.CDLL(str(library_path))

        if resolved.emits_single_entry:
            # Bound to validate the ABI; prediction always routes
            # through the batch entry so per-row FFI stays off the
            # hot path (HP001).
            self._predict = getattr(self._lib, f"{symbol_prefix}_predict")
            self._predict.restype = ctypes.c_double
            self._predict.argtypes = [ctypes.POINTER(ctypes.c_double)]
        else:
            self._predict = None

        self._predict_batch = getattr(self._lib, f"{symbol_prefix}_predict_batch")
        self._predict_batch.restype = None
        self._predict_batch.argtypes = [
            ctypes.POINTER(ctypes.c_double), ctypes.c_long,
            ctypes.POINTER(ctypes.c_double)]

        reported = getattr(self._lib, f"{symbol_prefix}_n_features")
        reported.restype = ctypes.c_long
        reported.argtypes = []
        if reported() != n_features:
            raise CompilationError(
                f"library reports {reported()} features, expected {n_features}")

    # -- prediction -----------------------------------------------------

    def _call_batch(self, X: np.ndarray, out: np.ndarray) -> None:
        """The one place native code is invoked: one FFI call per batch.

        ``X`` must be C-contiguous float64 ``(n, n_features)`` with
        ``n >= 1`` and ``out`` a float64 vector of length ``n``.
        """
        self._predict_batch(
            X.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            ctypes.c_long(len(X)),
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_double)))
        self.ffi_calls += 1

    def predict_one(self, x: np.ndarray) -> float:
        """Single-vector prediction — the 4 µs code path of the paper.

        Implemented as a 1-row batch: ``reshape`` on the contiguous
        vector is a zero-copy view and the output buffer is per-thread,
        so the only per-call costs are validation and one FFI hop.
        """
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.shape != (self.n_features,):
            raise CompilationError(
                f"expected a vector of {self.n_features} features, got {x.shape}")
        out = self._buffers.out
        self._call_batch(x.reshape(1, self.n_features), out)
        return float(out[0])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Batch prediction: exactly one native call for the whole matrix.

        Accepts ``(n, n_features)`` or a single 1-D vector (returned as
        a length-1 array). An empty ``(0, n_features)`` batch returns an
        empty array without touching native code — a zero-length numpy
        array has no data pointer to hand across the FFI boundary.
        """
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim == 1:
            if X.shape != (self.n_features,):
                raise CompilationError(
                    f"expected a vector of {self.n_features} features, "
                    f"got {X.shape}")
            X = X.reshape(1, self.n_features)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise CompilationError(
                f"expected an (n, {self.n_features}) matrix, got {X.shape}")
        if len(X) == 0:
            return np.empty(0, dtype=np.float64)
        out = np.empty(len(X), dtype=np.float64)
        self._call_batch(X, out)
        return out

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Remove the temporary build directory (library stays loaded)."""
        if self._workdir is not None and self._workdir.exists():
            shutil.rmtree(self._workdir, ignore_errors=True)
            self._workdir = None

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


def compile_model(model: BoostedTreesModel, symbol_prefix: str = "t3",
                  compiler: Optional[str] = None,
                  optimization_level: int = 2,
                  strategy: Union[str, CodegenStrategy] = DEFAULT_STRATEGY
                  ) -> CompiledTreeModel:
    """Compile ``model`` to native code with ``strategy`` and load it.

    Raises :class:`~repro.errors.CompilationError` if no C compiler is
    available or compilation fails; callers that can degrade gracefully
    should fall back to :class:`~repro.treecomp.interpreter.InterpretedModel`.
    """
    resolved = get_strategy(strategy)
    compiler = compiler or find_c_compiler()
    if compiler is None:
        raise CompilationError(
            "no C compiler found (looked for cc/gcc/clang); "
            "use the interpreted model instead")
    if optimization_level not in (0, 1, 2, 3):
        raise CompilationError(f"invalid optimization level {optimization_level}")

    source = resolved.generate(model, symbol_prefix)
    workdir = Path(tempfile.mkdtemp(prefix="repro-treecomp-"))
    # Any failure between mkdtemp and the ownership hand-off to
    # CompiledTreeModel must remove the directory, not just the two
    # compiler-error paths (a full disk at write_text used to leak it).
    try:
        source_path = workdir / "model.c"
        library_path = workdir / "model.so"
        source_path.write_text(source)

        command = [compiler, f"-O{optimization_level}", "-shared", "-fPIC",
                   "-o", str(library_path), str(source_path)]
        try:
            result = subprocess.run(command, capture_output=True, text=True)
        except OSError as exc:
            raise CompilationError(
                f"cannot run compiler {compiler!r}: {exc}") from exc
        if result.returncode != 0:
            raise CompilationError(
                f"{compiler} failed ({result.returncode}):\n"
                f"{result.stderr[:2000]}")
    except BaseException:
        shutil.rmtree(workdir, ignore_errors=True)
        raise
    return CompiledTreeModel(library_path, workdir, model.n_features,
                             symbol_prefix, strategy=resolved)
