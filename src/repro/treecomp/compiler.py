"""Native compilation and loading of generated tree code.

``compile_model`` writes the generated C to a private temporary
directory, invokes the system C compiler (``cc``/``gcc``/``clang``,
``-O2 -shared -fPIC``), and loads the resulting shared library with
:mod:`ctypes`. Compilation happens once after training and does not add
to inference latency (paper, Section 2.6).
"""

from __future__ import annotations

import ctypes
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

from ..errors import CompilationError
from ..trees.boosting import BoostedTreesModel
from .codegen import generate_c_source

_COMPILER_CANDIDATES = ("cc", "gcc", "clang")


def find_c_compiler() -> Optional[str]:
    """Absolute path of the first available system C compiler, or ``None``."""
    for name in _COMPILER_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def compiler_info() -> Optional[str]:
    """One-line description of the system C compiler, or ``None``.

    Used by the serving health endpoint to report whether predictions
    run through the compiled or the interpreted backend.
    """
    path = find_c_compiler()
    if path is None:
        return None
    try:
        result = subprocess.run([path, "--version"], capture_output=True,
                                text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return path
    first_line = (result.stdout or "").strip().splitlines()
    return first_line[0] if first_line else path


class CompiledTreeModel:
    """A tree ensemble compiled to a native shared library.

    Use :func:`compile_model` to create instances. The object owns the
    temporary directory holding the generated source and shared library;
    :meth:`close` (or garbage collection) removes it.
    """

    def __init__(self, library_path: Path, workdir: Optional[Path],
                 n_features: int, symbol_prefix: str):
        self._workdir = workdir
        self.library_path = Path(library_path)
        self.n_features = n_features
        self._lib = ctypes.CDLL(str(library_path))

        self._predict = getattr(self._lib, f"{symbol_prefix}_predict")
        self._predict.restype = ctypes.c_double
        self._predict.argtypes = [ctypes.POINTER(ctypes.c_double)]

        self._predict_batch = getattr(self._lib, f"{symbol_prefix}_predict_batch")
        self._predict_batch.restype = None
        self._predict_batch.argtypes = [
            ctypes.POINTER(ctypes.c_double), ctypes.c_long,
            ctypes.POINTER(ctypes.c_double)]

        reported = getattr(self._lib, f"{symbol_prefix}_n_features")
        reported.restype = ctypes.c_long
        reported.argtypes = []
        if reported() != n_features:
            raise CompilationError(
                f"library reports {reported()} features, expected {n_features}")

    # -- prediction -----------------------------------------------------

    def predict_one(self, x: np.ndarray) -> float:
        """Single-vector prediction — the 4 µs code path of the paper."""
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.shape != (self.n_features,):
            raise CompilationError(
                f"expected a vector of {self.n_features} features, got {x.shape}")
        ptr = x.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
        return float(self._predict(ptr))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Batch prediction through the native batch entry point."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim == 1:
            return np.array([self.predict_one(X)])
        if X.shape[1] != self.n_features:
            raise CompilationError(
                f"expected {self.n_features} features, got {X.shape[1]}")
        out = np.empty(len(X), dtype=np.float64)
        self._predict_batch(
            X.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            ctypes.c_long(len(X)),
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_double)))
        return out

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Remove the temporary build directory (library stays loaded)."""
        if self._workdir is not None and self._workdir.exists():
            shutil.rmtree(self._workdir, ignore_errors=True)
            self._workdir = None

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


def compile_model(model: BoostedTreesModel, symbol_prefix: str = "t3",
                  compiler: Optional[str] = None,
                  optimization_level: int = 2) -> CompiledTreeModel:
    """Compile ``model`` to native code and load it.

    Raises :class:`~repro.errors.CompilationError` if no C compiler is
    available or compilation fails; callers that can degrade gracefully
    should fall back to :class:`~repro.treecomp.interpreter.InterpretedModel`.
    """
    compiler = compiler or find_c_compiler()
    if compiler is None:
        raise CompilationError(
            "no C compiler found (looked for cc/gcc/clang); "
            "use the interpreted model instead")
    if optimization_level not in (0, 1, 2, 3):
        raise CompilationError(f"invalid optimization level {optimization_level}")

    source = generate_c_source(model, symbol_prefix)
    workdir = Path(tempfile.mkdtemp(prefix="repro-treecomp-"))
    # Any failure between mkdtemp and the ownership hand-off to
    # CompiledTreeModel must remove the directory, not just the two
    # compiler-error paths (a full disk at write_text used to leak it).
    try:
        source_path = workdir / "model.c"
        library_path = workdir / "model.so"
        source_path.write_text(source)

        command = [compiler, f"-O{optimization_level}", "-shared", "-fPIC",
                   "-o", str(library_path), str(source_path)]
        try:
            result = subprocess.run(command, capture_output=True, text=True)
        except OSError as exc:
            raise CompilationError(
                f"cannot run compiler {compiler!r}: {exc}") from exc
        if result.returncode != 0:
            raise CompilationError(
                f"{compiler} failed ({result.returncode}):\n"
                f"{result.stderr[:2000]}")
    except BaseException:
        shutil.rmtree(workdir, ignore_errors=True)
        raise
    return CompiledTreeModel(library_path, workdir, model.n_features, symbol_prefix)
