"""Compilation of boosted tree models to native machine code.

The paper compiles its LightGBM model with *lleaves* [3]: every internal
node becomes a compare + branch instruction pair and every leaf a return
instruction, yielding ~4 µs single-query latency versus ~22 µs
interpreted. lleaves (and LLVM bindings) are unavailable offline, so
this package reimplements the same contract on top of the system C
compiler:

* :mod:`repro.treecomp.codegen` renders a trained
  :class:`~repro.trees.boosting.BoostedTreesModel` to C through a
  pluggable :class:`~repro.treecomp.codegen.CodegenStrategy` layer —
  the paper-literal nested-if emitter (``nested_if``) plus batch-native
  flat node-array backends (``flat_array``, ``flat_array_f32``),
* :mod:`repro.treecomp.compiler` invokes ``gcc``, loads the shared
  library through :mod:`ctypes`, and exposes ``predict``/``predict_one``
  — every shape routed through a single batch FFI entry point,
* :mod:`repro.treecomp.interpreter` provides the interpreted baselines
  (scalar Python, vectorized numpy, and a multi-threaded variant) used
  by the latency experiments (Table 1/2, Figure 5).
"""

from .codegen import (
    DEFAULT_STRATEGY,
    STRATEGIES,
    CodegenStrategy,
    FlatArrayF32Strategy,
    FlatArrayStrategy,
    NestedIfStrategy,
    flatten_ensemble,
    generate_c_source,
    get_strategy,
)
from .compiler import (
    CompiledTreeModel,
    compile_model,
    compiler_info,
    find_c_compiler,
)
from .interpreter import (
    InterpretedModel,
    MultiThreadedInterpretedModel,
    PythonScalarModel,
)

__all__ = [
    "DEFAULT_STRATEGY",
    "STRATEGIES",
    "CodegenStrategy",
    "NestedIfStrategy",
    "FlatArrayStrategy",
    "FlatArrayF32Strategy",
    "flatten_ensemble",
    "get_strategy",
    "generate_c_source",
    "CompiledTreeModel",
    "compile_model",
    "compiler_info",
    "find_c_compiler",
    "InterpretedModel",
    "MultiThreadedInterpretedModel",
    "PythonScalarModel",
]
