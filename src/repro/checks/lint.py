"""Project lint rules — repo conventions enforced over ``src/repro``.

These are the conventions the codebase already follows on purpose;
the rules keep them true as the system grows:

* **PL001** — library code raises only :class:`~repro.errors.ReproError`
  subclasses (callers catch one base class at API boundaries). The
  allowed set is read from ``errors.py`` itself, so adding an error
  class there is all it takes. ``cli.py`` and ``serving/http.py`` are
  process edges and exempt; ``NotImplementedError`` and re-raises are
  always fine.
* **PL002** — no bare ``except:`` (it swallows ``KeyboardInterrupt``).
* **PL003** — no mutable default arguments.
* **PL004** — no ``print()`` in library code; the CLI, the HTTP access
  log, and the designated console reporter
  (``experiments/reporting.py``) are exempt.
* **PL005** — no unseeded :mod:`numpy.random` use outside ``rng.py``:
  legacy module-level functions (``np.random.rand`` et al.) and
  argument-less ``np.random.default_rng()`` draw from global or OS
  entropy and break end-to-end reproducibility.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Set, Union

from ..errors import CheckError
from .astutils import PACKAGE_ROOT, dotted_name
from .findings import Finding, Severity

__all__ = ["allowed_exception_names", "check_lint", "lint_source"]

#: Modules allowed to raise anything (process edges: exit codes, HTTP).
_RAISE_EXEMPT = {"cli.py", "serving/http.py"}

#: Modules allowed to call print() (user-facing output is their job).
_PRINT_EXEMPT = {"cli.py", "serving/http.py", "experiments/reporting.py"}

#: Modules allowed to construct numpy generators however they like.
_RANDOM_EXEMPT = {"rng.py"}

#: Exceptions any library module may raise besides ReproError subclasses.
_ALWAYS_ALLOWED_RAISES = {"NotImplementedError", "StopIteration",
                          "KeyboardInterrupt"}

#: numpy.random module-level functions that use the unseeded global state.
_LEGACY_NP_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "ranf", "sample",
    "choice", "shuffle", "permutation", "seed", "normal", "uniform",
    "standard_normal", "exponential", "poisson", "binomial", "bytes",
}


def allowed_exception_names(
        errors_path: Optional[Union[str, Path]] = None) -> Set[str]:
    """Class names defined in ``errors.py`` (all ReproError subclasses)."""
    path = Path(errors_path) if errors_path else PACKAGE_ROOT / "errors.py"
    if not path.exists():
        raise CheckError(f"errors module not found: {path}")
    tree = ast.parse(path.read_text(), filename=str(path))
    return {node.name for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)}


def lint_source(source: str, rel_path: str,
                allowed_raises: Set[str]) -> List[Finding]:
    """Apply every lint rule to one module."""
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        raise CheckError(f"cannot parse {rel_path}: {exc}") from exc

    findings: List[Finding] = []
    check_raises = rel_path not in _RAISE_EXEMPT
    check_print = rel_path not in _PRINT_EXEMPT
    check_random = rel_path not in _RANDOM_EXEMPT
    full_rel = f"src/repro/{rel_path}"
    allowed_raises = allowed_raises | _local_subclasses(tree, allowed_raises)

    for node in ast.walk(tree):
        if isinstance(node, ast.Raise) and check_raises:
            _check_raise(node, allowed_raises, full_rel, findings)
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(Finding(
                "PL002", Severity.ERROR, full_rel, node.lineno,
                "bare 'except:' swallows KeyboardInterrupt and SystemExit; "
                "catch Exception (or something narrower)"))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda)):
            _check_defaults(node, full_rel, findings)
        elif isinstance(node, ast.Call):
            if (check_print and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                findings.append(Finding(
                    "PL004", Severity.ERROR, full_rel, node.lineno,
                    "print() in library code; raise a typed error or "
                    "return the text to the caller"))
            if check_random:
                _check_random_call(node, full_rel, findings)
    return findings


def _local_subclasses(tree: ast.Module, allowed: Set[str]) -> Set[str]:
    """Module-local classes deriving (transitively) from an allowed one.

    A module may define its own ReproError subclasses (e.g. ``SQLError``
    in the SQL parser); raising those keeps the typed-error contract.
    """
    local: Set[str] = set()
    classes = [node for node in ast.walk(tree)
               if isinstance(node, ast.ClassDef)]
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in local:
                continue
            for base in cls.bases:
                name = (base.id if isinstance(base, ast.Name)
                        else base.attr if isinstance(base, ast.Attribute)
                        else None)
                if name in allowed or name in local:
                    local.add(cls.name)
                    changed = True
                    break
    return local


def _check_raise(node: ast.Raise, allowed: Set[str], rel: str,
                 findings: List[Finding]) -> None:
    exc = node.exc
    if exc is None:
        return  # bare re-raise inside an except block
    if isinstance(exc, ast.Call):
        exc = exc.func
    name = None
    if isinstance(exc, ast.Name):
        name = exc.id
    elif isinstance(exc, ast.Attribute):
        name = exc.attr
    if name is None:
        return  # raising a variable — out of scope for a lexical rule
    if name in allowed or name in _ALWAYS_ALLOWED_RAISES:
        return
    findings.append(Finding(
        "PL001", Severity.ERROR, rel, node.lineno,
        f"raises {name}; library code must raise ReproError subclasses "
        "(see errors.py) so callers can catch one base class"))


def _check_defaults(node: Union[ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda],
                    rel: str, findings: List[Finding]) -> None:
    defaults = list(node.args.defaults) + [
        d for d in node.args.kw_defaults if d is not None]
    for default in defaults:
        mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
        if (isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in {"list", "dict", "set", "bytearray"}):
            mutable = True
        if mutable:
            name = getattr(node, "name", "<lambda>")
            findings.append(Finding(
                "PL003", Severity.ERROR, rel, default.lineno,
                f"mutable default argument in {name}(); defaults are "
                "evaluated once and shared across calls — default to None"))


def _check_random_call(node: ast.Call, rel: str,
                       findings: List[Finding]) -> None:
    dotted = dotted_name(node.func)
    if dotted is None:
        return
    parts = dotted.split(".")
    if len(parts) != 3 or parts[0] not in {"np", "numpy"}:
        return
    if parts[1] != "random":
        return
    if parts[2] in _LEGACY_NP_RANDOM:
        findings.append(Finding(
            "PL005", Severity.ERROR, rel, node.lineno,
            f"{dotted}() uses numpy's unseeded global state; take an "
            "np.random.Generator derived via repro.rng instead"))
    elif parts[2] == "default_rng" and not node.args and not node.keywords:
        findings.append(Finding(
            "PL005", Severity.ERROR, rel, node.lineno,
            "np.random.default_rng() without a seed draws OS entropy; "
            "derive the seed via repro.rng for reproducibility"))


def check_lint(root: Optional[Union[str, Path]] = None) -> List[Finding]:
    """Lint every module under ``root`` (default: the repro package)."""
    root = Path(root) if root else PACKAGE_ROOT
    if not root.is_dir():
        raise CheckError(f"lint root is not a directory: {root}")
    allowed = allowed_exception_names(
        root / "errors.py" if (root / "errors.py").exists() else None)
    findings: List[Finding] = []
    for file_path in sorted(root.rglob("*.py")):
        rel = file_path.relative_to(root).as_posix()
        findings.extend(lint_source(file_path.read_text(), rel, allowed))
    return findings
