"""AST-based lock-discipline analysis for the serving subsystem.

PR 1 made the library multithreaded: the micro-batching queue, model
registry, plan cache, and telemetry instruments are all touched from
request threads and the batch worker concurrently. This analyzer is a
lightweight lexical race detector over that code:

1. For every class that owns a lock (``self.x = threading.Lock()`` /
   ``RLock`` / ``Condition``), it learns the *guarded set* — attributes
   assigned or read inside ``with self.<lock>:`` blocks.
2. **LK001** — an attribute that is guarded somewhere but also accessed
   outside any lock block (in a method other than ``__init__``) is
   inconsistently protected: either the lock is unnecessary or the
   unguarded access is a race.
3. **LK002** — an attribute of a lock-owning class that is *written*
   outside ``__init__`` without ever being guarded is unsynchronized
   shared mutable state.

The model is deliberately lexical (no aliasing, no happens-before):
``__init__`` and ``__del__`` are exempt (construction and finalization
are single-threaded), closures are treated as escaping their lock
scope, and method calls on an attribute do not count as writes — so
attributes holding intrinsically thread-safe objects (``queue.Queue``,
``threading.Event``) assigned once in ``__init__`` never trigger.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..errors import CheckError
from .findings import Finding, Severity

__all__ = ["AttributeAccess", "scan_source", "check_lock_discipline"]

_PACKAGE_ROOT = Path(__file__).resolve().parents[1]
_DEFAULT_SCOPE = (_PACKAGE_ROOT / "serving",)

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}


@dataclass(frozen=True)
class AttributeAccess:
    """One lexical access to ``self.<attr>`` inside a method."""

    attr: str
    line: int
    method: str
    write: bool      # Store/AugAssign target, or base of a nested store
    guarded: bool    # lexically inside a ``with self.<lock>:`` block


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.x`` -> ``"x"``; anything else -> None."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _innermost_self_attr(node: ast.expr) -> Optional[ast.Attribute]:
    """The ``self.x`` at the base of ``self.x.y[z]...``, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if _self_attr(node) is not None:
            return node  # type: ignore[return-value]
        node = node.value
    return None


def _is_lock_factory(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


class _MethodScanner:
    """Walk one method body tracking the lexical lock depth."""

    def __init__(self, method: str, lock_attrs: Set[str],
                 accesses: List[AttributeAccess]):
        self.method = method
        self.lock_attrs = lock_attrs
        self.accesses = accesses
        self.depth = 0

    # -- recording --------------------------------------------------------

    def _record(self, node: ast.expr, write: bool) -> None:
        attr = _self_attr(node)
        if attr is None or attr in self.lock_attrs:
            return
        self.accesses.append(AttributeAccess(
            attr=attr, line=node.lineno, method=self.method,
            write=write, guarded=self.depth > 0))

    def _record_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element)
            return
        base = _innermost_self_attr(target)
        if base is not None:
            self._record(base, write=True)
        # Subscript slices and attribute chains above the base are reads.
        if isinstance(target, ast.Subscript):
            self._scan_expr(target.slice)

    # -- traversal --------------------------------------------------------

    def scan_body(self, statements: Iterable[ast.stmt]) -> None:
        for statement in statements:
            self._scan_stmt(statement)

    def _scan_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
            acquired = 0
            for item in node.items:
                expr = item.context_expr
                if (_self_attr(expr) in self.lock_attrs):
                    acquired += 1
                else:
                    self._scan_expr(expr)
                if item.optional_vars is not None:
                    self._record_target(item.optional_vars)
            self.depth += acquired
            self.scan_body(node.body)
            self.depth -= acquired
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                self._record_target(target)
            if node.value is not None:
                self._scan_expr(node.value)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_target(target)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function may outlive the lock scope: scan it as
            # unguarded code.
            saved, self.depth = self.depth, 0
            self.scan_body(node.body)
            self.depth = saved
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._scan_stmt(child)
            elif isinstance(child, ast.expr):
                self._scan_expr(child)

    def _scan_expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Lambda):
            saved, self.depth = self.depth, 0
            self._scan_expr(node.body)
            self.depth = saved
            return
        attr = _self_attr(node)
        if attr is not None:
            self._record(node, write=isinstance(node.ctx, (ast.Store,
                                                           ast.Del)))
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child)


def _class_lock_attrs(cls: ast.ClassDef) -> Set[str]:
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    locks.add(attr)
    return locks


_EXEMPT_METHODS = {"__init__", "__new__", "__del__"}


def scan_source(source: str, path: str
                ) -> List[Tuple[str, Set[str], List[AttributeAccess]]]:
    """Per lock-owning class: (name, lock attrs, accesses outside init)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise CheckError(f"cannot parse {path}: {exc}") from exc
    results = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        locks = _class_lock_attrs(node)
        if not locks:
            continue
        accesses: List[AttributeAccess] = []
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _EXEMPT_METHODS:
                continue
            scanner = _MethodScanner(item.name, locks, accesses)
            scanner.scan_body(item.body)
        results.append((node.name, locks, accesses))
    return results


def check_lock_discipline(paths: Optional[Sequence[Union[str, Path]]] = None
                          ) -> List[Finding]:
    """Analyze every ``.py`` file under ``paths`` (default: serving/)."""
    files: List[Path] = []
    for root in (paths or _DEFAULT_SCOPE):
        root = Path(root)
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        elif root.exists():
            files.append(root)
        else:
            raise CheckError(f"lockcheck path not found: {root}")
    findings: List[Finding] = []
    for file_path in files:
        rel = _relative(file_path)
        for cls_name, locks, accesses in scan_source(
                file_path.read_text(), str(file_path)):
            findings.extend(_judge_class(cls_name, locks, accesses, rel))
    return list(dict.fromkeys(findings))


def _judge_class(cls_name: str, locks: Set[str],
                 accesses: List[AttributeAccess], rel: str) -> List[Finding]:
    findings: List[Finding] = []
    guarded_attrs = {a.attr for a in accesses if a.guarded}
    written_attrs = {a.attr for a in accesses if a.write}
    by_attr: Dict[str, List[AttributeAccess]] = {}
    for access in accesses:
        by_attr.setdefault(access.attr, []).append(access)

    lock_names = ", ".join(sorted(locks))
    for attr, attr_accesses in sorted(by_attr.items()):
        if attr in guarded_attrs:
            if attr not in written_attrs:
                continue  # guarded reads of effectively-immutable state
            for access in attr_accesses:
                if access.guarded:
                    continue
                verb = "written" if access.write else "read"
                findings.append(Finding(
                    "LK001", Severity.ERROR, rel, access.line,
                    f"{cls_name}.{attr} is guarded by {lock_names} "
                    f"elsewhere but {verb} without the lock in "
                    f"{access.method}()"))
        else:
            writes = [a for a in attr_accesses if a.write]
            if not writes:
                continue
            methods = sorted({a.method for a in attr_accesses})
            for access in writes:
                findings.append(Finding(
                    "LK002", Severity.ERROR, rel, access.line,
                    f"{cls_name}.{attr} is shared mutable state written in "
                    f"{access.method}() but never accessed under a lock "
                    f"(class holds {lock_names}; accessed from: "
                    f"{', '.join(methods)})"))
    return findings


def _relative(path: Path) -> str:
    parts = path.resolve().parts
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(("src",) + parts[index:])
    return "/".join(parts[-2:])
