"""Shared AST helpers for the static-analysis subsystem.

Every analyzer in :mod:`repro.checks` reads Python source into
:mod:`ast` trees and asks the same small questions — "is this
``self.x``?", "what dotted name is being called?", "where is the
module-level assignment to ``NAME``?". This module owns those answers
so the analyzers stay about *their* rules, not about AST plumbing.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import CheckError

__all__ = [
    "PACKAGE_ROOT",
    "constant_str",
    "dotted_name",
    "enum_member",
    "find_class_function",
    "find_function",
    "innermost_self_attr",
    "iter_py_files",
    "load_module_ast",
    "module_assignment",
    "repo_relative",
    "self_attr",
]

#: Root of the installed ``repro`` package (``src/repro``).
PACKAGE_ROOT = Path(__file__).resolve().parents[1]


def load_module_ast(path: Union[str, Path]) -> ast.Module:
    """Parse one source file, raising :class:`CheckError` on failure."""
    path = Path(path)
    if not path.exists():
        raise CheckError(f"source file not found: {path}")
    try:
        return ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        raise CheckError(f"cannot parse {path}: {exc}") from exc


def repo_relative(path: Union[str, Path]) -> str:
    """Repo-relative, '/'-separated rendering of a source path.

    Paths inside the ``repro`` package render as ``src/repro/...`` so
    findings line up with the repository layout; anything else keeps
    its last two components.
    """
    parts = Path(path).resolve().parts
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(("src",) + parts[index:])
    return "/".join(parts[-2:])


def self_attr(node: ast.AST) -> Optional[str]:
    """``self.x`` -> ``"x"``; anything else -> ``None``."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def innermost_self_attr(node: ast.AST) -> Optional[ast.Attribute]:
    """The ``self.x`` at the base of ``self.x.y[z]...``, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if self_attr(node) is not None:
            return node  # type: ignore[return-value]
        node = node.value
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_assignment(tree: ast.Module, name: str) -> Optional[ast.expr]:
    """Value expression of the module-level assignment to ``name``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets: Sequence[ast.expr] = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        if any(isinstance(t, ast.Name) and t.id == name for t in targets):
            return node.value
    return None


def find_class_function(tree: ast.Module, cls: str,
                        name: str) -> ast.FunctionDef:
    """Locate method ``name`` of class ``cls``; raises if absent."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls:
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == name:
                    return item
    raise CheckError(f"{cls}.{name} not found")


def find_function(tree: ast.AST, name: str) -> ast.FunctionDef:
    """Locate the (possibly nested) function definition ``name``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node  # type: ignore[return-value]
    raise CheckError(f"function {name} not found")


def iter_py_files(roots: Iterable[Union[str, Path]]) -> List[Path]:
    """All ``.py`` files under the given roots, sorted and deduplicated."""
    files: List[Path] = []
    for root in roots:
        root = Path(root)
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        elif root.exists():
            files.append(root)
        else:
            raise CheckError(f"analysis path not found: {root}")
    seen = set()
    unique: List[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def constant_str(node: ast.AST) -> Optional[str]:
    """The value of a string-literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def enum_member(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``EnumName.MEMBER`` attribute -> ``("EnumName", "MEMBER")``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.value.id, node.attr
    return None
