"""Static analysis of trained tree ensembles (EA rules).

A :class:`~repro.trees.boosting.BoostedTreesModel` is a program — node
arrays are its instructions — and like any program it can contain
provably-dead code and numerically-broken constants that no test-set
evaluation will ever expose. This analyzer walks every tree symbolically,
propagating per-feature reachable intervals root-to-leaf (evaluation
goes left when ``x[f] <= t``, so the left child's interval is clipped
to ``(lo, min(hi, t)]`` and the right child's to ``(max(lo, t), hi]``),
and cross-checks the ensemble against the ``-log(t)`` target transform:
``inverse_transform(raw) = exp(-raw)`` overflows to ``inf`` once the
summed raw prediction drops below ``-log(DBL_MAX)``.

Rules
-----
EA001  dead branch: a split whose threshold lies outside the interval
       reachable at that node (one child can never be taken)
EA002  unreachable leaf (inside a dead subtree)
EA003  leaf value is NaN or infinite
EA004  reachable raw-prediction range decodes to a non-finite time
       under the ``-log`` inverse transform
EA005  two distinct thresholds on the same feature within one float32
       ulp — the compiled (float-truncated) tree may disagree
EA006  feature in the schema that no tree ever splits on
EA007  node orphaned or shared between parents (malformed topology)
EA008  split threshold is NaN or infinite
EA009  base score is NaN or infinite
EA010  split feature index outside ``[0, n_features)``
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..trees.boosting import BoostedTreesModel
from ..trees.tree import LEAF, Tree
from .findings import Finding, Severity

__all__ = ["analyze_ensemble", "EXP_OVERFLOW"]

#: ``exp(x)`` overflows double precision beyond this (``log(DBL_MAX)``).
EXP_OVERFLOW = math.log(np.finfo(np.float64).max)

Interval = Tuple[float, float]  # reachable values, as the half-open (lo, hi]


def _tree_structure_findings(tree: Tree, tree_index: int, n_features: int,
                             path: str) -> List[Finding]:
    """EA007/EA008/EA010 — the checks ``Tree._validate`` does not make."""
    findings: List[Finding] = []
    where = f"tree {tree_index}"
    referenced: Dict[int, int] = {}
    for node in range(tree.n_nodes):
        if tree.left[node] == LEAF:
            continue
        for child in (int(tree.left[node]), int(tree.right[node])):
            referenced[child] = referenced.get(child, 0) + 1
        feature = int(tree.feature[node])
        if not 0 <= feature < n_features:
            findings.append(Finding(
                "EA010", Severity.ERROR, path, 0,
                f"{where} node {node}: split feature {feature} outside "
                f"[0, {n_features}); evaluation reads past the vector"))
        threshold = float(tree.threshold[node])
        if not math.isfinite(threshold):
            findings.append(Finding(
                "EA008", Severity.ERROR, path, 0,
                f"{where} node {node}: non-finite split threshold "
                f"{threshold!r}"))
    if referenced.get(0):
        findings.append(Finding(
            "EA007", Severity.ERROR, path, 0,
            f"{where}: root node 0 is referenced as a child"))
    for node in range(1, tree.n_nodes):
        count = referenced.get(node, 0)
        if count != 1:
            state = "orphaned" if count == 0 else f"shared by {count} parents"
            findings.append(Finding(
                "EA007", Severity.ERROR, path, 0,
                f"{where} node {node}: {state}; every non-root node needs "
                f"exactly one parent"))
    return findings


def _reachability_findings(tree: Tree, tree_index: int, path: str
                           ) -> Tuple[List[Finding], float]:
    """EA001/EA002/EA003 via interval propagation.

    Returns the findings plus the minimum raw value over *reachable*,
    finite leaves (``+inf`` when the tree has none) for EA004.
    """
    findings: List[Finding] = []
    where = f"tree {tree_index}"
    min_reachable = math.inf

    def visit(node: int, regions: Dict[int, Interval], dead: bool) -> None:
        nonlocal min_reachable
        if tree.left[node] == LEAF:
            value = float(tree.value[node])
            if dead:
                findings.append(Finding(
                    "EA002", Severity.ERROR, path, 0,
                    f"{where} leaf {node} (value {value:g}) is unreachable: "
                    f"no input satisfies the path conditions"))
            else:
                if not math.isfinite(value):
                    findings.append(Finding(
                        "EA003", Severity.ERROR, path, 0,
                        f"{where} leaf {node}: non-finite value {value!r} "
                        f"poisons every prediction routed through it"))
                else:
                    min_reachable = min(min_reachable, value)
            return
        feature = int(tree.feature[node])
        threshold = float(tree.threshold[node])
        lo, hi = regions.get(feature, (-math.inf, math.inf))
        left_dead = dead or threshold <= lo
        right_dead = dead or threshold >= hi
        if not dead and (left_dead or right_dead):
            side = "left" if left_dead else "right"
            cond = (f"x[{feature}] <= {threshold:g}" if left_dead
                    else f"x[{feature}] > {threshold:g}")
            findings.append(Finding(
                "EA001", Severity.ERROR, path, 0,
                f"{where} node {node}: dead branch — {cond} is "
                f"unsatisfiable given the reachable interval "
                f"({lo:g}, {hi:g}] of feature {feature}"))
        visit(int(tree.left[node]),
              {**regions, feature: (lo, min(hi, threshold))}, left_dead)
        visit(int(tree.right[node]),
              {**regions, feature: (max(lo, threshold), hi)}, right_dead)

    visit(0, {}, False)
    return findings, min_reachable


def near_tie_findings(trees: Sequence[Tree], path: str) -> List[Finding]:
    """EA005: same-feature thresholds closer than one float32 ulp.

    Public: also the generation guard for the ``flat_array_f32`` codegen
    strategy, which refuses to emit float-truncated thresholds a
    single-precision comparison cannot separate.
    """
    findings: List[Finding] = []
    by_feature: Dict[int, List[Tuple[float, int, int]]] = {}
    for tree_index, tree in enumerate(trees):
        for node in range(tree.n_nodes):
            if tree.left[node] == LEAF:
                continue
            threshold = float(tree.threshold[node])
            if math.isfinite(threshold):
                by_feature.setdefault(int(tree.feature[node]), []).append(
                    (threshold, tree_index, node))
    for feature, entries in sorted(by_feature.items()):
        entries.sort()
        for (a, tree_a, node_a), (b, tree_b, node_b) in zip(entries,
                                                            entries[1:]):
            if a == b:
                continue  # identical splits are exact, not ambiguous
            ulp = float(np.spacing(np.float32(max(abs(a), abs(b)))))
            if b - a <= ulp:
                findings.append(Finding(
                    "EA005", Severity.WARNING, path, 0,
                    f"feature {feature}: thresholds {a!r} (tree {tree_a} "
                    f"node {node_a}) and {b!r} (tree {tree_b} node "
                    f"{node_b}) differ by less than one float32 ulp "
                    f"({ulp:g}); a single-precision evaluator cannot "
                    f"separate them"))
    return findings


def analyze_ensemble(model: BoostedTreesModel, path: str = "<model>",
                     feature_names: Optional[Sequence[str]] = None,
                     check_unused_features: bool = False) -> List[Finding]:
    """Run every EA rule over one trained ensemble.

    ``check_unused_features`` gates EA006: meaningful for real persisted
    models, pure noise for tiny synthetic self-check ensembles.
    """
    findings: List[Finding] = []

    base = float(model.base_score)
    if not math.isfinite(base):
        findings.append(Finding(
            "EA009", Severity.ERROR, path, 0,
            f"base score {base!r} is not finite; every prediction is "
            f"non-finite before any tree runs"))

    min_total = base if math.isfinite(base) else 0.0
    structure_broken = False
    for tree_index, tree in enumerate(model.trees):
        structural = _tree_structure_findings(tree, tree_index,
                                              model.n_features, path)
        findings.extend(structural)
        if any(f.rule in ("EA007", "EA010") for f in structural):
            structure_broken = True
            continue  # interval walk is meaningless on broken topology
        reach, tree_min = _reachability_findings(tree, tree_index, path)
        findings.extend(reach)
        if math.isfinite(tree_min):
            min_total += tree_min

    if not structure_broken and math.isfinite(base):
        if min_total < -EXP_OVERFLOW:
            findings.append(Finding(
                "EA004", Severity.ERROR, path, 0,
                f"reachable raw predictions go down to {min_total:g}; "
                f"inverse_transform = exp(-raw) overflows to inf below "
                f"-{EXP_OVERFLOW:.1f}, so some inputs decode to a "
                f"non-finite tuple time"))

    findings.extend(near_tie_findings(model.trees, path))

    if check_unused_features:
        used = np.zeros(model.n_features, dtype=bool)
        for tree in model.trees:
            indices = tree.used_features()
            valid = indices[(indices >= 0) & (indices < model.n_features)]
            used[valid] = True
        for index in np.nonzero(~used)[0]:
            name = (feature_names[index]
                    if feature_names is not None and index < len(feature_names)
                    else f"feature {index}")
            findings.append(Finding(
                "EA006", Severity.WARNING, path, 0,
                f"{name} is in the schema but no tree ever splits on it; "
                f"either the feature is uninformative or extraction is "
                f"broken for it"))
    return findings
