"""SARIF 2.1.0 rendering for the static-analysis driver.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading the file produced here annotates PRs with
every finding at its ``file:line``. The document is deliberately
minimal — one run, one tool, the full rule table, one result per
finding — but valid per the 2.1.0 schema, so any SARIF viewer works.

Baseline-suppressed findings are still emitted, carrying a
``suppressions`` entry with ``kind: "external"`` — viewers show them
greyed out instead of losing them, which keeps the SARIF view and the
TOML baseline telling the same story.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .findings import Finding, Severity

__all__ = ["render_sarif", "SARIF_SCHEMA", "SARIF_VERSION"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_TOOL_NAME = "repro-t3-check"
_INFO_URI = "https://github.com/paper-repro/t3"


def _result(finding: Finding, rule_index: Dict[str, int],
            suppressed: bool) -> dict:
    result: dict = {
        "ruleId": finding.rule,
        "level": ("error" if finding.severity is Severity.ERROR
                  else "warning"),
        "message": {"text": finding.message},
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    location: dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": finding.path},
        }
    }
    if finding.line > 0:
        location["physicalLocation"]["region"] = {
            "startLine": finding.line}
    result["locations"] = [location]
    if suppressed:
        result["suppressions"] = [{
            "kind": "external",
            "justification": "suppressed by checks_baseline.toml",
        }]
    return result


def render_sarif(findings: Sequence[Finding],
                 suppressed: Sequence[Finding],
                 rules: Dict[str, str],
                 tool_version: str = "0") -> str:
    """One SARIF run covering new and baseline-suppressed findings."""
    rule_ids = sorted(rules)
    rule_index = {rule: index for index, rule in enumerate(rule_ids)}
    rule_objects: List[dict] = [{
        "id": rule,
        "shortDescription": {"text": rules[rule]},
        "defaultConfiguration": {"level": "error"},
    } for rule in rule_ids]

    results = [_result(f, rule_index, suppressed=False) for f in findings]
    results += [_result(f, rule_index, suppressed=True) for f in suppressed]

    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "informationUri": _INFO_URI,
                    "version": tool_version,
                    "rules": rule_objects,
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
    return json.dumps(document, indent=2)
