"""Corpus loading and call-graph construction for interprocedural checks.

The per-function CFGs in :mod:`repro.checks.cfg` answer *intra*procedural
questions. The determinism-taint (DT), exception-contract (EX), and
resource-lifecycle (RS) analyzers need the next layer up: which function
calls which, so per-function summaries (:mod:`repro.checks.interproc`)
can flow facts across call boundaries.

Resolution is deliberately pragmatic — Python has no static types, so
the builder layers cheap, high-precision strategies and falls back to
class-hierarchy-analysis by method name only when nothing better is
known:

1. plain names: functions/classes of the same module, then imports,
2. ``self.method()`` / ``cls.method()``: the enclosing class and its
   corpus bases,
3. annotation typing: parameters and locals whose type annotation (or
   constructor assignment, or the return annotation of a called corpus
   function) names a corpus class resolve their method calls exactly,
4. CHA fallback: a method name defined by at most
   :data:`_CHA_CANDIDATE_CAP` corpus classes resolves to all of them;
   names on :data:`_CHA_STOP_NAMES` (ubiquitous builtin-container
   methods) never resolve this way.

Unresolved calls stay in the graph as sites with no callees — analyses
must treat them as "unknown effect", which every consumer in this
package does conservatively.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .astutils import PACKAGE_ROOT, dotted_name, repo_relative

__all__ = ["CallGraph", "CallSite", "FunctionInfo", "ModuleInfo",
           "build_call_graph"]

#: Method names too generic for class-hierarchy fallback resolution —
#: they collide with dict/list/set/str/file methods constantly.
_CHA_STOP_NAMES = frozenset({
    "get", "items", "keys", "values", "append", "extend", "insert",
    "pop", "popitem", "setdefault", "update", "copy", "index", "count",
    "sort", "split", "rsplit", "join", "strip", "lstrip", "rstrip",
    "format", "encode", "decode", "read", "write", "readline", "add",
    "discard", "remove", "replace", "startswith", "endswith", "lower",
    "upper", "exists", "resolve", "mkdir", "open",
})

#: CHA gives up when a method name is defined by more classes than this.
_CHA_CANDIDATE_CAP = 3


@dataclass
class ModuleInfo:
    """One parsed source file of the corpus."""

    name: str                 # dotted, relative to the corpus root
    path: Path
    rel_path: str             # repo-relative, for findings
    tree: ast.Module
    #: local alias -> dotted target ("derive_rng" -> "rng.derive_rng").
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression inside a corpus function."""

    node: ast.Call
    line: int
    #: qualified names of the possible corpus callees (empty: unknown).
    callees: Tuple[str, ...] = ()


@dataclass
class FunctionInfo:
    """One function or method of the corpus."""

    qname: str                # "serving.service:PredictionService.close"
    module: str
    cls: Optional[str]
    name: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    path: Path
    rel_path: str
    is_public: bool
    calls: List[CallSite] = field(default_factory=list)
    _statements: Optional[List[ast.AST]] = field(default=None, repr=False)

    @property
    def class_qname(self) -> Optional[str]:
        return f"{self.module}:{self.cls}" if self.cls else None

    def own_statements(self) -> List[ast.AST]:
        """Cached :func:`iter_own_statements` — the fixpoint engines walk
        each function many times and the BFS is the hot path."""
        if self._statements is None:
            self._statements = list(iter_own_statements(self.node))
        return self._statements


class CallGraph:
    """Functions, classes, and resolved call edges of one corpus."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: class qname -> simple base-class names (as written).
        self.class_bases: Dict[str, List[str]] = {}
        #: method simple name -> qnames of every corpus method so named.
        self.methods_by_name: Dict[str, List[str]] = {}
        #: class qname -> attribute -> class qname (from ``self.x = C()``).
        self.attr_types: Dict[str, Dict[str, str]] = {}
        #: class simple name -> class qnames (usually one).
        self.classes_by_name: Dict[str, List[str]] = {}

    # -- lookup helpers -----------------------------------------------------

    def function(self, qname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qname)

    def methods_of(self, class_qname: str) -> Dict[str, str]:
        """method simple name -> qname for one class (no inheritance)."""
        out: Dict[str, str] = {}
        module, _, cls = class_qname.partition(":")
        for qname, info in self.functions.items():
            if info.module == module and info.cls == cls:
                out[info.name] = qname
        return out

    def callers_of(self) -> Dict[str, List[str]]:
        """callee qname -> caller qnames (reverse call edges)."""
        out: Dict[str, List[str]] = {}
        for qname, info in self.functions.items():
            for site in info.calls:
                for callee in site.callees:
                    callers = out.setdefault(callee, [])
                    if qname not in callers:
                        callers.append(qname)
        return out

    def resolve_method(self, class_qname: str,
                       method: str) -> Optional[str]:
        """Resolve a method on a class, walking corpus base classes."""
        seen = set()
        queue = [class_qname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            candidate = f"{current}.{method}"
            if candidate in self.functions:
                return candidate
            for base in self.class_bases.get(current, []):
                for base_qname in self.classes_by_name.get(base, []):
                    queue.append(base_qname)
        return None

    def class_of_annotation(self, annotation: Optional[ast.expr],
                            module: ModuleInfo) -> Optional[str]:
        """Corpus class qname named by a type annotation, if any."""
        if annotation is None:
            return None
        name: Optional[str] = None
        if isinstance(annotation, ast.Name):
            name = annotation.id
        elif isinstance(annotation, ast.Attribute):
            name = annotation.attr
        elif isinstance(annotation, ast.Constant) and \
                isinstance(annotation.value, str):
            name = annotation.value.split(".")[-1].strip()
        elif isinstance(annotation, ast.Subscript):
            # Optional[X] / "Optional[X]" style — use the first argument.
            inner = annotation.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return self.class_of_annotation(inner, module)
        if name is None:
            return None
        return self._resolve_class_name(name, module)

    def _resolve_class_name(self, name: str,
                            module: ModuleInfo) -> Optional[str]:
        local = f"{module.name}:{name}"
        if local in self.class_bases:
            return local
        target = module.imports.get(name)
        if target is not None:
            mod, _, attr = target.rpartition(".")
            qname = f"{mod}:{attr}"
            if qname in self.class_bases:
                return qname
        matches = self.classes_by_name.get(name, [])
        if len(matches) == 1:
            return matches[0]
        return None


# -- corpus construction ------------------------------------------------------


def _module_name(path: Path, root: Path) -> str:
    rel = path.relative_to(root).with_suffix("")
    parts = [p for p in rel.parts if p != "__init__"]
    return ".".join(parts) if parts else "__init__"


def _record_imports(info: ModuleInfo) -> None:
    package_parts = info.name.split(".")[:-1]
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                info.imports[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[:len(package_parts) - (node.level - 1)]
            elif node.module and node.module.split(".")[0] == "repro":
                base = node.module.split(".")[1:]
                info.imports.update({
                    alias.asname or alias.name:
                        ".".join(base + [alias.name])
                    for alias in node.names})
                continue
            else:
                continue  # absolute import of a third-party module
            mod = base + (node.module.split(".") if node.module else [])
            for alias in node.names:
                local = alias.asname or alias.name
                info.imports[local] = ".".join(mod + [alias.name])


def _is_public(module: str, cls: Optional[str], name: str) -> bool:
    if any(part.startswith("_") and part != "__init__"
           for part in module.split(".")):
        return False
    if cls is not None and cls.startswith("_"):
        return False
    if name.startswith("_") and not (name.startswith("__")
                                     and name.endswith("__")):
        return False
    return True


class _FunctionCollector(ast.NodeVisitor):
    """Indexes every function/method (including nested ones)."""

    def __init__(self, graph: CallGraph, module: ModuleInfo):
        self.graph = graph
        self.module = module
        self.class_stack: List[str] = []
        self.func_stack: List[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qname = f"{self.module.name}:{node.name}"
        self.module.classes[node.name] = node
        self.graph.class_bases[qname] = [
            base.id if isinstance(base, ast.Name)
            else base.attr if isinstance(base, ast.Attribute) else "?"
            for base in node.bases]
        self.graph.classes_by_name.setdefault(node.name, []).append(qname)
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_function(self, node: Union[ast.FunctionDef,
                                          ast.AsyncFunctionDef]) -> None:
        cls = self.class_stack[-1] if self.class_stack else None
        local = ".".join(self.func_stack + [node.name])
        qname = (f"{self.module.name}:{cls}.{local}" if cls
                 else f"{self.module.name}:{local}")
        info = FunctionInfo(
            qname=qname, module=self.module.name, cls=cls,
            name=node.name, node=node, path=self.module.path,
            rel_path=self.module.rel_path,
            is_public=(not self.func_stack
                       and _is_public(self.module.name, cls, node.name)))
        self.graph.functions[qname] = info
        if cls is not None and not self.func_stack:
            self.graph.methods_by_name.setdefault(
                node.name, []).append(qname)
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


def iter_own_statements(func: ast.AST) -> Iterable[ast.AST]:
    """All descendant nodes of a function, nested defs excluded."""
    queue: List[ast.AST] = list(ast.iter_child_nodes(func))
    while queue:
        node = queue.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        queue.extend(ast.iter_child_nodes(node))


class _TypeEnv:
    """Best-effort local variable -> corpus class typing."""

    def __init__(self, graph: CallGraph, module: ModuleInfo,
                 info: FunctionInfo):
        self.graph = graph
        self.module = module
        self.types: Dict[str, str] = {}
        args = info.node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            cls = graph.class_of_annotation(arg.annotation, module)
            if cls is not None:
                self.types[arg.arg] = cls

    def note_assignment(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        cls = self._value_class(value)
        if cls is not None:
            self.types[target.id] = cls

    def _value_class(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Call):
            callee = value.func
            if isinstance(callee, ast.Name):
                cls = self.graph._resolve_class_name(callee.id, self.module)
                if cls is not None:
                    return cls
            # x = helper(...) where helper's return annotation names a
            # corpus class (resolved later via the call-site callees).
        return None


def _resolve_call(graph: CallGraph, module: ModuleInfo,
                  info: FunctionInfo, call: ast.Call,
                  types: _TypeEnv) -> Tuple[str, ...]:
    func = call.func
    out: List[str] = []

    def add(qname: Optional[str]) -> None:
        if qname is not None and qname in graph.functions \
                and qname not in out:
            out.append(qname)

    def add_class_init(class_qname: Optional[str]) -> None:
        if class_qname is None:
            return
        for ctor in ("__init__", "__post_init__"):
            add(graph.resolve_method(class_qname, ctor))

    if isinstance(func, ast.Name):
        name = func.id
        add(f"{module.name}:{name}")
        add_class_init(graph._resolve_class_name(name, module))
        target = module.imports.get(name)
        if target is not None:
            mod, _, attr = target.rpartition(".")
            add(f"{mod}:{attr}")
            add_class_init(graph._resolve_class_name(name, module))
        return tuple(out)

    if not isinstance(func, ast.Attribute):
        return ()

    method = func.attr
    receiver = func.value

    # self.method() / cls.method() and typed receivers.
    if isinstance(receiver, ast.Name):
        if receiver.id in ("self", "cls") and info.cls is not None:
            add(graph.resolve_method(f"{module.name}:{info.cls}", method))
            if out:
                return tuple(out)
        receiver_cls = types.types.get(receiver.id)
        if receiver_cls is not None:
            add(graph.resolve_method(receiver_cls, method))
            if out:
                return tuple(out)
        # module alias: mod.func()
        target = module.imports.get(receiver.id)
        if target is not None:
            add(f"{target}:{method}")
            cls_qname = graph._resolve_class_name(receiver.id, module)
            if cls_qname is not None:   # ClassName.method (unbound)
                add(graph.resolve_method(cls_qname, method))
            if out:
                return tuple(out)
        cls_qname = graph._resolve_class_name(receiver.id, module)
        if cls_qname is not None:
            add(graph.resolve_method(cls_qname, method))
            if out:
                return tuple(out)

    # self.attr.method() through the attribute-type map.
    if isinstance(receiver, ast.Attribute) \
            and isinstance(receiver.value, ast.Name) \
            and receiver.value.id == "self" and info.cls is not None:
        attr_map = graph.attr_types.get(f"{module.name}:{info.cls}", {})
        receiver_cls = attr_map.get(receiver.attr)
        if receiver_cls is not None:
            add(graph.resolve_method(receiver_cls, method))
            if out:
                return tuple(out)

    # CHA fallback by method name.
    if method not in _CHA_STOP_NAMES:
        candidates = graph.methods_by_name.get(method, [])
        if 0 < len(candidates) <= _CHA_CANDIDATE_CAP:
            for qname in candidates:
                add(qname)
    return tuple(out)


def _collect_attr_types(graph: CallGraph) -> None:
    for info in graph.functions.values():
        if info.cls is None:
            continue
        module = graph.modules[info.module]
        class_qname = f"{info.module}:{info.cls}"
        attr_map = graph.attr_types.setdefault(class_qname, {})
        for node in iter_own_statements(info.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                if value is None and isinstance(target, ast.Attribute):
                    cls = graph.class_of_annotation(node.annotation, module)
                    if cls is not None and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self":
                        attr_map.setdefault(target.attr, cls)
                    continue
            if target is None or value is None:
                continue
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if isinstance(value, ast.Call) and \
                    isinstance(value.func, ast.Name):
                cls = graph._resolve_class_name(value.func.id, module)
                if cls is not None:
                    attr_map.setdefault(target.attr, cls)


def _resolve_all_calls(graph: CallGraph) -> None:
    # Return-annotation typing: helper() -> CorpusClass.
    return_types: Dict[str, str] = {}
    for qname, info in graph.functions.items():
        module = graph.modules[info.module]
        cls = graph.class_of_annotation(info.node.returns, module)
        if cls is not None:
            return_types[qname] = cls

    for info in graph.functions.values():
        module = graph.modules[info.module]
        types = _TypeEnv(graph, module, info)
        # first pass: constructor + annotated assignments type locals
        for node in iter_own_statements(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                types.note_assignment(node.targets[0], node.value)
                if isinstance(node.value, ast.Call):
                    callees = _resolve_call(graph, module, info,
                                            node.value, types)
                    for callee in callees:
                        cls = return_types.get(callee)
                        if cls is not None and \
                                isinstance(node.targets[0], ast.Name):
                            types.types[node.targets[0].id] = cls
                            break
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                cls = graph.class_of_annotation(node.annotation, module)
                if cls is not None:
                    types.types[node.target.id] = cls
        for node in iter_own_statements(info.node):
            if isinstance(node, ast.Call):
                info.calls.append(CallSite(
                    node=node, line=node.lineno,
                    callees=_resolve_call(graph, module, info, node, types)))


#: (path, mtime_ns, size) fingerprints -> built graph.
_GRAPH_CACHE: Dict[Tuple[Tuple[str, int, int], ...], CallGraph] = {}


def build_call_graph(roots: Optional[Sequence[Union[str, Path]]] = None
                     ) -> CallGraph:
    """Build (or fetch from cache) the call graph under ``roots``.

    Defaults to the installed ``repro`` package. The cache key is the
    (path, mtime, size) fingerprint of every source file, so tests that
    rewrite a corpus in place get a fresh graph.
    """
    from .astutils import iter_py_files, load_module_ast

    root_paths = [Path(r) for r in (roots or [PACKAGE_ROOT])]
    files = iter_py_files(root_paths)
    key = tuple(sorted(
        (str(p.resolve()), p.stat().st_mtime_ns, p.stat().st_size)
        for p in files))
    cached = _GRAPH_CACHE.get(key)
    if cached is not None:
        return cached

    graph = CallGraph()
    for path in files:
        root = next((r for r in root_paths
                     if r.is_dir() and r.resolve() in path.resolve().parents
                     or r.resolve() == path.resolve()), root_paths[0])
        base = root if root.is_dir() else root.parent
        info = ModuleInfo(
            name=_module_name(path, base), path=path,
            rel_path=repo_relative(path), tree=load_module_ast(path))
        _record_imports(info)
        graph.modules[info.name] = info
        _FunctionCollector(graph, info).visit(info.tree)
    _collect_attr_types(graph)
    _resolve_all_calls(graph)
    if len(_GRAPH_CACHE) > 8:   # tests build many tiny corpora
        _GRAPH_CACHE.clear()
    _GRAPH_CACHE[key] = graph
    return graph
