"""Findings, severities, and the baseline/suppression file.

Every analyzer in :mod:`repro.checks` reports :class:`Finding` objects —
one defect each, anchored to a ``file:line``, tagged with a stable rule
id (``CG###`` codegen, ``FS###`` feature schema, ``LK###`` lock
discipline, ``PL###`` project lint) and a severity. The driver matches
findings against a baseline file so pre-existing debt can be
grandfathered while new findings fail the build.

Baseline format (``checks_baseline.toml``)::

    [[suppress]]
    rule = "PL001"                       # required
    path = "src/repro/legacy.py"         # optional: limit to a file
    line = 42                            # optional: limit to a line
    reason = "grandfathered until PR 9"  # optional, documentation only

A suppression with only ``rule`` silences the rule everywhere; adding
``path`` (and optionally ``line``) narrows it. Paths are compared
relative to the repository root with ``/`` separators.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..errors import CheckError

__all__ = ["Severity", "Finding", "Suppression", "Baseline",
           "write_baseline", "update_baseline"]


class Severity(Enum):
    """How seriously a finding should be taken."""

    ERROR = "error"      # breaks an invariant the system relies on
    WARNING = "warning"  # suspicious, but may be intentional

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One defect reported by an analyzer."""

    rule: str                     # stable id, e.g. "CG004"
    severity: Severity
    path: str                     # repo-relative, "/"-separated
    line: int                     # 1-based; 0 = whole file
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}" if self.line else self.path

    def render(self) -> str:
        return (f"{self.location()}: {self.severity.value} "
                f"[{self.rule}] {self.message}")

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One baseline entry; ``path``/``line`` narrow the match."""

    rule: str
    path: Optional[str] = None
    line: Optional[int] = None
    reason: str = ""

    def matches(self, finding: Finding) -> bool:
        if self.rule != finding.rule and self.rule != "*":
            return False
        if self.path is not None and self.path != finding.path:
            return False
        if self.line is not None and self.line != finding.line:
            return False
        return True


def _parse_toml(text: str, source: str) -> dict:
    """Parse the baseline document.

    Uses :mod:`tomllib` where available (Python >= 3.11) and otherwise a
    minimal reader that understands exactly the subset the baseline
    format needs: ``[[suppress]]`` array-of-table headers and
    ``key = value`` pairs with string or integer values.
    """
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11 fallback
        return _parse_toml_minimal(text, source)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise CheckError(f"invalid baseline file {source}: {exc}") from exc


def _parse_toml_minimal(text: str, source: str) -> dict:
    tables: List[dict] = []
    sections: dict = {}
    current: Optional[dict] = None
    pending_key: Optional[str] = None   # key of an open multi-line array
    pending_items: List[str] = []

    def parse_scalar(value: str, lineno: int) -> object:
        if value.startswith('"') and value.endswith('"') and len(value) >= 2:
            return value[1:-1]
        if value.lstrip("-").isdigit():
            return int(value)
        if value in ("true", "false"):
            return value == "true"
        raise CheckError(
            f"invalid baseline file {source}:{lineno}: "
            f"unsupported value {value!r}")

    def parse_items(body: str, lineno: int) -> List[object]:
        body = body.strip().rstrip(",")
        if not body:
            return []
        return [parse_scalar(item.strip(), lineno)
                for item in body.split(",")]

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if pending_key is not None:
            assert current is not None
            if line.rstrip(",").endswith("]"):
                pending_items.extend(
                    parse_items(line.rstrip(",")[:-1], lineno))
                current[pending_key] = pending_items
                pending_key, pending_items = None, []
            else:
                pending_items.extend(parse_items(line, lineno))
            continue
        if line == "[[suppress]]":
            current = {}
            tables.append(current)
            continue
        if line.startswith("[") and line.endswith("]") \
                and not line.startswith("[["):
            current = sections.setdefault(line[1:-1].strip(), {})
            continue
        if "=" in line and current is not None:
            key, _, value = line.partition("=")
            key, value = key.strip(), value.strip()
            if value.startswith("["):
                if value.endswith("]"):
                    current[key] = parse_items(value[1:-1], lineno)
                else:
                    pending_key = key
                    pending_items = parse_items(value[1:], lineno)
            else:
                current[key] = parse_scalar(value, lineno)
            continue
        raise CheckError(
            f"invalid baseline file {source}:{lineno}: cannot parse {line!r}")
    if pending_key is not None:
        raise CheckError(
            f"invalid baseline file {source}: unterminated array "
            f"for key {pending_key!r}")
    return {"suppress": tables, **sections}


@dataclass
class Baseline:
    """Loaded suppression set with per-entry use accounting."""

    suppressions: List[Suppression] = field(default_factory=list)
    source: str = "<empty>"

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        path = Path(path)
        if not path.exists():
            raise CheckError(f"baseline file not found: {path}")
        data = _parse_toml(path.read_text(), str(path))
        entries = data.get("suppress", [])
        if not isinstance(entries, list):
            raise CheckError(
                f"invalid baseline file {path}: 'suppress' must be an "
                "array of tables ([[suppress]])")
        suppressions = []
        for index, entry in enumerate(entries):
            if not isinstance(entry, dict) or "rule" not in entry:
                raise CheckError(
                    f"invalid baseline file {path}: suppression #{index + 1} "
                    "needs at least a 'rule' key")
            suppressions.append(Suppression(
                rule=str(entry["rule"]),
                path=str(entry["path"]) if "path" in entry else None,
                line=int(entry["line"]) if "line" in entry else None,
                reason=str(entry.get("reason", ""))))
        return cls(suppressions, str(path))

    def is_suppressed(self, finding: Finding) -> bool:
        return any(s.matches(finding) for s in self.suppressions)

    def split(self, findings: Sequence[Finding]
              ) -> "tuple[List[Finding], List[Finding]]":
        """Partition into (new, suppressed) preserving order."""
        new, suppressed, _ = self.partition(findings)
        return new, suppressed

    def partition(self, findings: Sequence[Finding]
                  ) -> "tuple[List[Finding], List[Finding], List[Suppression]]":
        """Like :meth:`split`, also returning the *stale* suppressions.

        A suppression is stale when it matched no finding in this run:
        either the underlying issue was fixed (delete the entry) or the
        source drifted past it (the finding it once covered now escapes
        as new — the entry silences nothing and misleads readers).
        """
        new: List[Finding] = []
        suppressed: List[Finding] = []
        used = [False] * len(self.suppressions)
        for finding in findings:
            hit = False
            for index, entry in enumerate(self.suppressions):
                if entry.matches(finding):
                    used[index] = True
                    hit = True
            (suppressed if hit else new).append(finding)
        stale = [entry for entry, was_used
                 in zip(self.suppressions, used) if not was_used]
        return new, suppressed, stale


def render_text(findings: Sequence[Finding],
                suppressed: Sequence[Finding] = ()) -> str:
    lines = [finding.render() for finding in findings]
    if suppressed:
        lines.append(f"({len(suppressed)} finding(s) suppressed by baseline)")
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(f"{len(findings)} finding(s): {errors} error(s), "
                 f"{warnings} warning(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                suppressed: Sequence[Finding] = ()) -> str:
    return json.dumps({
        "findings": [f.to_json() for f in findings],
        "suppressed": [f.to_json() for f in suppressed],
        "counts": {
            "errors": sum(1 for f in findings
                          if f.severity is Severity.ERROR),
            "warnings": sum(1 for f in findings
                            if f.severity is Severity.WARNING),
            "suppressed": len(suppressed),
        },
    }, indent=2)


def _config_sections(text: str) -> List[str]:
    """Verbatim lines of the non-suppression ``[section]`` blocks.

    ``checks_baseline.toml`` doubles as analyzer configuration (the
    ``[hotpath]`` hot-root declarations); rewriting the suppression
    entries must carry those sections over untouched.
    """
    out: List[str] = []
    keeping = False
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("[["):
            keeping = False
        elif line.startswith("[") and line.endswith("]"):
            keeping = True
        if keeping:
            out.append(raw)
    return out


def write_baseline(findings: Sequence[Finding],
                   path: Union[str, Path]) -> None:
    """Write a baseline that suppresses exactly ``findings``."""
    path = Path(path)
    sections = (_config_sections(path.read_text())
                if path.exists() else [])
    lines = ["# Generated by `repro-t3 check --write-baseline`.",
             "# Entries grandfather pre-existing findings; delete them as",
             "# the underlying issues are fixed.", ""]
    for finding in findings:
        lines.append("[[suppress]]")
        lines.append(f'rule = "{finding.rule}"')
        lines.append(f'path = "{finding.path}"')
        lines.append(f"line = {finding.line}")
        lines.append("")
    if sections:
        lines.extend(sections)
        lines.append("")
    path.write_text("\n".join(lines))


_REASON_STUB = "# reason: TODO — justify why this finding is grandfathered"


def update_baseline(findings: Sequence[Finding],
                    path: Union[str, Path]) -> "tuple[int, int, int]":
    """Rewrite the baseline at ``path`` from the current findings.

    Merge semantics, so hand-written justifications survive:

    * existing suppressions that still match at least one finding are
      kept verbatim (including their ``reason``),
    * findings no existing entry covers get a new exact entry with a
      ``# reason:`` stub to fill in,
    * suppressions that no longer match anything are dropped.

    Returns ``(kept, added, dropped)`` entry counts.
    """
    path = Path(path)
    existing = Baseline.load(path).suppressions if path.exists() else []
    sections = (_config_sections(path.read_text())
                if path.exists() else [])

    kept: List[Suppression] = []
    remaining = list(findings)
    for suppression in existing:
        matched = [f for f in remaining if suppression.matches(f)]
        if matched:
            kept.append(suppression)
            remaining = [f for f in remaining
                         if not suppression.matches(f)]
    dropped = len(existing) - len(kept)

    added: List[Suppression] = []
    seen = set()
    for finding in remaining:
        key = (finding.rule, finding.path, finding.line)
        if key not in seen:
            seen.add(key)
            added.append(Suppression(rule=finding.rule, path=finding.path,
                                     line=finding.line))

    lines = ["# Managed by `repro-t3 check --update-baseline`.",
             "# Entries grandfather pre-existing findings; every entry",
             "# needs a written reason. Delete entries as the underlying",
             "# issues are fixed.", ""]
    for suppression in kept + added:
        lines.append("[[suppress]]")
        lines.append(f'rule = "{suppression.rule}"')
        if suppression.path is not None:
            lines.append(f'path = "{suppression.path}"')
        if suppression.line is not None:
            lines.append(f"line = {suppression.line}")
        if suppression.reason:
            escaped = suppression.reason.replace("\\", "\\\\")
            escaped = escaped.replace('"', '\\"')
            lines.append(f'reason = "{escaped}"')
        else:
            lines.append(_REASON_STUB)
        lines.append("")
    if sections:
        lines.extend(sections)
        lines.append("")
    path.write_text("\n".join(lines))
    return len(kept), len(added), dropped
