"""Per-function control-flow graphs over Python ``ast``, plus dataflow.

The concurrency analyzer needs to know *which locks are held at which
program point*, and a lexical ``with``-depth counter cannot answer that
for early returns, ``try/finally`` release patterns, loops, or manual
``acquire()``/``release()`` pairs. This module builds a small but
honest CFG for one function:

* **Blocks** hold an ordered list of *events* — plain AST statements
  and expressions in evaluation order, plus :class:`WithEnter` /
  :class:`WithExit` markers for every ``with`` item so analyses see
  context-manager acquisition and release as explicit program points.
* **Edges** cover branches, loop back-edges, ``break``/``continue``,
  ``return``, ``raise``, and exception flow into ``except`` handlers
  and through ``finally`` blocks. Abrupt exits unwind enclosing
  ``with`` items (a fresh :class:`WithExit` block per jump, so an early
  ``return`` inside ``with self._lock:`` still releases before the
  exit block) and route through ``finally`` bodies.

Approximations, chosen deliberately: ``finally`` subgraphs are built
once and shared by every path that reaches them (normal fall-through,
``return``, exception), which merges those paths at the finally exit;
an exception raised inside a ``try`` with handlers is assumed to be
caught by one of them. Both err toward *more* merging, which for the
must-hold lock analysis means locks are dropped, never invented.

:func:`forward_dataflow` runs a classic worklist fixpoint over a CFG;
analyses supply the transfer function and the meet operator.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import CheckError

__all__ = ["Block", "CFG", "WithEnter", "WithExit", "build_cfg",
           "forward_dataflow"]


@dataclass(frozen=True)
class WithEnter:
    """Entering one ``with`` item (context expression evaluated here)."""

    item: ast.withitem
    line: int
    is_async: bool = False


@dataclass(frozen=True)
class WithExit:
    """Leaving one ``with`` item (``__exit__`` runs here)."""

    item: ast.withitem
    line: int
    is_async: bool = False


@dataclass
class Block:
    """One straight-line run of events."""

    index: int
    label: str
    events: List[object] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)

    def add_successor(self, index: int) -> None:
        if index not in self.successors:
            self.successors.append(index)

    def lines(self) -> List[int]:
        """Source lines of the block's events (golden-test anchor)."""
        out = []
        for event in self.events:
            line = getattr(event, "line", None)
            if line is None:
                line = getattr(event, "lineno", None)
            if line is not None:
                out.append(line)
        return out


class CFG:
    """Control-flow graph of one function. Block 0 = entry, 1 = exit."""

    ENTRY = 0
    EXIT = 1

    def __init__(self, name: str, blocks: List[Block]):
        self.name = name
        self.blocks = blocks

    def predecessors(self, index: int) -> List[int]:
        return [b.index for b in self.blocks if index in b.successors]

    def block_of_line(self, line: int) -> Optional[Block]:
        """The first block containing an event on ``line``."""
        for block in self.blocks:
            if line in block.lines():
                return block
        return None

    def edges(self) -> List[Tuple[int, int]]:
        return [(b.index, s) for b in self.blocks for s in b.successors]

    def describe(self) -> str:
        """Stable text rendering, one block per line (for golden tests)."""
        out = []
        for block in self.blocks:
            succ = ",".join(f"B{s}" for s in block.successors)
            lines = ",".join(str(line) for line in block.lines())
            out.append(f"B{block.index}({block.label})"
                       f" lines[{lines}] -> [{succ}]")
        return "\n".join(out)


# -- frames for abrupt-exit routing -----------------------------------------

@dataclass
class _WithFrame:
    item: ast.withitem
    line: int
    is_async: bool
    serial: int = -1


@dataclass
class _TryFrame:
    handler_entries: List[int]
    serial: int = -1


@dataclass
class _FinallyFrame:
    entry: int
    exit: int
    serial: int = -1


@dataclass
class _Loop:
    head: int            # target of ``continue``
    after: int           # target of ``break``
    depth: int           # unwind-stack depth at loop entry


class _Builder:
    def __init__(self, func: ast.AST):
        name = getattr(func, "name", "<lambda>")
        self.blocks: List[Block] = []
        self._new_block("entry")
        self._new_block("exit")
        self.unwind: List[object] = []
        self.loops: List[_Loop] = []
        self.func = func
        self._exception_noted: set = set()
        self._frame_serial = 0

    # -- plumbing ---------------------------------------------------------

    def _new_block(self, label: str) -> Block:
        block = Block(len(self.blocks), label)
        self.blocks.append(block)
        return block

    def _connect(self, src: Optional[Block], dst: Block) -> None:
        if src is not None:
            src.add_successor(dst.index)

    def _push_frame(self, frame: object) -> None:
        """Stack a frame, stamping a monotonic serial: keys derived
        from frames must not use ``id()`` (addresses recycle after a
        popped frame is collected, aliasing dedup keys)."""
        frame.serial = self._frame_serial  # type: ignore[attr-defined]
        self._frame_serial += 1
        self.unwind.append(frame)

    def _append(self, current: Optional[Block], event: object) -> None:
        if current is None:
            return
        current.events.append(event)
        # Any event can raise: note exception flow into handlers/finally.
        # One routing per (block, unwind-stack) state is enough — the
        # edges are identical for every event sharing that state.
        if any(isinstance(f, (_TryFrame, _FinallyFrame)) for f in self.unwind):
            key = (current.index,
                   tuple(f.serial for f in self.unwind))  # type: ignore
            if key not in self._exception_noted:
                self._exception_noted.add(key)
                self._route_exception(current)

    # -- abrupt-exit routing ----------------------------------------------

    def _unwind_chain(self, src: Block,
                      frames: Sequence[object]) -> Block:
        """Route ``src`` through cloned with-exits and shared finallys.

        Returns the block the caller should connect to the jump target.
        """
        current = src
        for frame in frames:
            if isinstance(frame, _WithFrame):
                clone = self._new_block("with-exit")
                clone.events.append(WithExit(frame.item, frame.line,
                                             frame.is_async))
                self._connect(current, clone)
                current = clone
            elif isinstance(frame, _FinallyFrame):
                self._connect(current, self.blocks[frame.entry])
                current = self.blocks[frame.exit]
            # _TryFrame: handlers do not run on non-exception exits.
        return current

    def _route_jump(self, current: Block, target: Block,
                    outer_depth: int = 0) -> None:
        """``return``/``break``/``continue``: unwind then jump."""
        frames = list(reversed(self.unwind[outer_depth:]))
        end = self._unwind_chain(current, frames)
        self._connect(end, target)

    def _route_exception(self, current: Block) -> None:
        """Edge for a potential exception raised in ``current``."""
        chain_start = current
        frames = list(reversed(self.unwind))
        for pos, frame in enumerate(frames):
            if isinstance(frame, _WithFrame):
                continue  # cloned below, once the catching frame is known
            if isinstance(frame, _TryFrame):
                end = self._unwind_chain(
                    chain_start,
                    [f for f in frames[:pos] if isinstance(f, _WithFrame)])
                for handler in frame.handler_entries:
                    self._connect(end, self.blocks[handler])
                return  # assume the exception is caught here
            if isinstance(frame, _FinallyFrame):
                end = self._unwind_chain(
                    chain_start,
                    [f for f in frames[:pos] if isinstance(f, _WithFrame)])
                self._connect(end, self.blocks[frame.entry])
                chain_start = self.blocks[frame.exit]
                frames = frames[pos + 1:]
                return self._route_exception_tail(chain_start, frames)
        self._connect(chain_start, self.blocks[CFG.EXIT])

    def _route_exception_tail(self, current: Block,
                              frames: List[object]) -> None:
        for pos, frame in enumerate(frames):
            if isinstance(frame, _TryFrame):
                for handler in frame.handler_entries:
                    self._connect(current, self.blocks[handler])
                return
            if isinstance(frame, _FinallyFrame):
                self._connect(current, self.blocks[frame.entry])
                return self._route_exception_tail(
                    self.blocks[frame.exit], frames[pos + 1:])
        self._connect(current, self.blocks[CFG.EXIT])

    # -- statement dispatch -----------------------------------------------

    def build(self) -> CFG:
        entry = self.blocks[CFG.ENTRY]
        end = self._body(self.func.body, entry)
        self._connect(end, self.blocks[CFG.EXIT])
        return CFG(getattr(self.func, "name", "<lambda>"), self.blocks)

    def _body(self, statements: Sequence[ast.stmt],
              current: Optional[Block]) -> Optional[Block]:
        for statement in statements:
            current = self._stmt(statement, current)
        return current

    def _stmt(self, node: ast.stmt,
              current: Optional[Block]) -> Optional[Block]:
        if current is None:
            # Dead code after a terminator: park it in an unreachable
            # block so its events still exist for lexical passes.
            current = self._new_block("unreachable")
        if isinstance(node, (ast.If,)):
            return self._stmt_if(node, current)
        if isinstance(node, (ast.While,)):
            return self._stmt_while(node, current)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return self._stmt_for(node, current)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return self._stmt_with(node, current)
        if isinstance(node, ast.Try):
            return self._stmt_try(node, current)
        if isinstance(node, ast.Return):
            self._append(current, node)
            self._route_jump(current, self.blocks[CFG.EXIT])
            return None
        if isinstance(node, ast.Raise):
            self._append(current, node)
            if any(isinstance(f, (_TryFrame, _FinallyFrame))
                   for f in self.unwind):
                self._route_exception(current)
            else:
                self._route_jump(current, self.blocks[CFG.EXIT])
            return None
        if isinstance(node, ast.Break):
            if not self.loops:
                raise CheckError(f"'break' outside a loop at line {node.lineno}")
            loop = self.loops[-1]
            self._route_jump(current, self.blocks[loop.after], loop.depth)
            return None
        if isinstance(node, ast.Continue):
            if not self.loops:
                raise CheckError(
                    f"'continue' outside a loop at line {node.lineno}")
            loop = self.loops[-1]
            self._route_jump(current, self.blocks[loop.head], loop.depth)
            return None
        # Straight-line statement (including nested function/class
        # definitions, which are events, not control flow).
        self._append(current, node)
        return current

    def _stmt_if(self, node: ast.If, current: Block) -> Optional[Block]:
        self._append(current, node.test)
        then_entry = self._new_block("then")
        self._connect(current, then_entry)
        then_end = self._body(node.body, then_entry)
        if node.orelse:
            else_entry = self._new_block("else")
            self._connect(current, else_entry)
            else_end = self._body(node.orelse, else_entry)
        else:
            else_end = current
        if then_end is None and else_end is None:
            return None
        after = self._new_block("after-if")
        self._connect(then_end, after)
        self._connect(else_end, after)
        return after

    def _loop(self, node, head_events: List[object],
              current: Block) -> Block:
        head = self._new_block("loop-head")
        for event in head_events:
            self._append(head, event)
        self._connect(current, head)
        after = self._new_block("after-loop")
        self.loops.append(_Loop(head.index, after.index, len(self.unwind)))
        body_entry = self._new_block("loop-body")
        self._connect(head, body_entry)
        body_end = self._body(node.body, body_entry)
        self._connect(body_end, head)  # the back edge
        self.loops.pop()
        if node.orelse:
            else_entry = self._new_block("loop-else")
            self._connect(head, else_entry)
            else_end = self._body(node.orelse, else_entry)
            self._connect(else_end, after)
        else:
            self._connect(head, after)
        return after

    def _stmt_while(self, node: ast.While, current: Block) -> Block:
        return self._loop(node, [node.test], current)

    def _stmt_for(self, node, current: Block) -> Block:
        self._append(current, node.iter)
        return self._loop(node, [node.target], current)

    def _stmt_with(self, node, current: Block) -> Optional[Block]:
        is_async = isinstance(node, ast.AsyncWith)
        for item in node.items:
            self._append(current, WithEnter(item, node.lineno, is_async))
            self._push_frame(_WithFrame(item, node.lineno, is_async))
        body_end = self._body(node.body, current)
        for item in reversed(node.items):
            frame = self.unwind.pop()
            if body_end is not None:
                exit_block = self._new_block("with-exit")
                exit_block.events.append(
                    WithExit(frame.item, frame.line, frame.is_async))
                self._connect(body_end, exit_block)
                body_end = exit_block
        return body_end

    def _stmt_try(self, node: ast.Try, current: Block) -> Optional[Block]:
        finally_frame: Optional[_FinallyFrame] = None
        if node.finalbody:
            fentry = self._new_block("finally")
            fend = self._body(node.finalbody, fentry)
            fexit = (fend if fend is not None
                     else self._new_block("finally-exit"))
            finally_frame = _FinallyFrame(fentry.index, fexit.index)
            self._push_frame(finally_frame)

        handler_entries = [self._new_block("except").index
                           for _ in node.handlers]
        try_frame: Optional[_TryFrame] = None
        if node.handlers:
            try_frame = _TryFrame(handler_entries)
            self._push_frame(try_frame)

        body_end = self._body(node.body, self._enter(current, "try"))
        if try_frame is not None:
            self.unwind.remove(try_frame)
        if node.orelse and body_end is not None:
            body_end = self._body(node.orelse,
                                  self._enter(body_end, "try-else"))

        handler_ends: List[Optional[Block]] = []
        for handler, entry_index in zip(node.handlers, handler_entries):
            entry = self.blocks[entry_index]
            if handler.type is not None:
                self._append(entry, handler.type)
            handler_ends.append(self._body(handler.body, entry))

        if finally_frame is not None:
            self.unwind.remove(finally_frame)
            for end in [body_end] + handler_ends:
                self._connect(end, self.blocks[finally_frame.entry])
            if body_end is None and all(e is None for e in handler_ends):
                # Only abrupt paths reach the finally; no normal exit.
                return None
            after = self._new_block("after-try")
            self._connect(self.blocks[finally_frame.exit], after)
            return after
        live = [end for end in [body_end] + handler_ends if end is not None]
        if not live:
            return None
        after = self._new_block("after-try")
        for end in live:
            self._connect(end, after)
        return after

    def _enter(self, current: Block, label: str) -> Block:
        block = self._new_block(label)
        self._connect(current, block)
        return block


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of one ``FunctionDef`` / ``AsyncFunctionDef``."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
        raise CheckError(
            f"build_cfg expects a function definition, got "
            f"{type(func).__name__}")
    if isinstance(func, ast.Lambda):
        wrapper = ast.FunctionDef(
            name="<lambda>", args=func.args,
            body=[ast.Return(value=func.body, lineno=func.lineno,
                             col_offset=0)],
            decorator_list=[], lineno=func.lineno, col_offset=0)
        return _Builder(wrapper).build()
    return _Builder(func).build()


State = FrozenSet[str]


def forward_dataflow(cfg: CFG,
                     transfer: Callable[[State, object], State],
                     entry_state: State,
                     meet: Callable[[State, State], State],
                     ) -> Dict[int, State]:
    """Worklist fixpoint: per-block *entry* states.

    ``transfer`` folds one event into a state; ``meet`` merges states at
    join points (intersection for must-analyses, union for may-).
    Blocks unreachable from the entry keep ``entry_state`` — harmless
    for both meet flavours because they contribute no edges.
    """
    states: Dict[int, Optional[State]] = {b.index: None for b in cfg.blocks}
    states[CFG.ENTRY] = entry_state
    worklist = [CFG.ENTRY]
    iterations = 0
    limit = 50 * max(1, len(cfg.blocks)) * max(1, len(cfg.blocks))
    while worklist:
        iterations += 1
        if iterations > limit:
            raise CheckError(
                f"dataflow over {cfg.name} did not converge "
                f"({iterations} iterations)")
        index = worklist.pop(0)
        state = states[index]
        if state is None:
            continue
        for event in cfg.blocks[index].events:
            state = transfer(state, event)
        for successor in cfg.blocks[index].successors:
            incoming = states[successor]
            merged = state if incoming is None else meet(incoming, state)
            if merged != incoming:
                states[successor] = merged
                if successor not in worklist:
                    worklist.append(successor)
    return {index: (state if state is not None else entry_state)
            for index, state in states.items()}
