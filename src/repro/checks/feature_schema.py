"""Feature-schema drift detection (declaration vs. extraction vs. model).

The ~110-feature pipeline vector is the contract between featurization,
training, and serving; T3's predictions are garbage the moment the
layout drifts. Three artifacts must agree:

1. the **declarations** — ``_STAGE_FEATURES`` in ``core/features.py``
   and ``OPERATOR_STAGES`` in ``engine/stages.py``,
2. the **emit sites** — the ``suffix == "..."`` extractor chain in
   ``FeatureRegistry._basic_feature_values`` plus the keys returned by
   ``_expression_percentages`` (routed through ``_fill_stage``),
3. any **persisted model** — ``n_features`` and, when present, the
   ``feature_names`` layout saved by :meth:`repro.core.model.T3Model.save`.

This analyzer reads 1 and 2 from the AST (no execution of the extractor)
and cross-checks them against each other and against the live
:class:`~repro.core.features.FeatureRegistry` layout:

* FS001 — extractor emits a feature no declaration mentions (the value
  would be silently dropped),
* FS002 — declared feature with no extractor branch (KeyError at the
  first pipeline that reaches it),
* FS003 — index/order drift between the declared layout, the live
  registry, or a persisted model's ``feature_names``,
* FS004 — persisted model ``n_features`` disagrees with the registry,
* FS005 — ``_STAGE_FEATURES`` declares a ``(operator, stage)`` pair the
  engine's ``OPERATOR_STAGES`` does not produce (dead declaration),
* FS006 — duplicate basic-feature name within one stage declaration.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from ..errors import CheckError
from .astutils import (
    PACKAGE_ROOT,
    find_class_function,
    load_module_ast,
    repo_relative,
)
from .findings import Finding, Severity

__all__ = ["DeclaredSchema", "extract_declared_schema",
           "extract_emitted_features", "check_feature_schema"]

_FEATURES_PATH = PACKAGE_ROOT / "core" / "features.py"
_STAGES_PATH = PACKAGE_ROOT / "engine" / "stages.py"


@dataclass
class DeclaredSchema:
    """``_STAGE_FEATURES`` as written in the source."""

    #: (operator enum member, stage enum member) -> list of (suffix, line)
    stage_features: Dict[Tuple[str, str], List[Tuple[str, int]]]
    #: dict-key line per pair, for findings about the pair itself
    pair_lines: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def all_suffixes(self) -> Set[str]:
        return {suffix for entries in self.stage_features.values()
                for suffix, _ in entries}


@dataclass
class EmittedFeatures:
    """What the extractor chain can actually produce."""

    #: suffixes with an explicit ``suffix == "..."`` extractor branch
    handled: Dict[str, int]
    #: prefixes routed to ``_expression_percentages`` (e.g. ``expr_``)
    prefixes: Dict[str, int]
    #: keys of the dict `_expression_percentages` returns
    expression_keys: Dict[str, int]
    #: features emitted structurally (``count`` via the stage plan's
    #: ``count_index`` write in ``_fill_stage``)
    direct: Dict[str, int]

    def covers(self, suffix: str) -> bool:
        if suffix in self.handled or suffix in self.direct:
            return True
        return any(suffix.startswith(prefix) and suffix in self.expression_keys
                   for prefix in self.prefixes)


def _enum_pair(node: ast.expr) -> Optional[Tuple[str, str]]:
    """``(OperatorType.X, Stage.Y)`` -> ``("X", "Y")``."""
    if not (isinstance(node, ast.Tuple) and len(node.elts) == 2):
        return None
    names = []
    for element in node.elts:
        if not isinstance(element, ast.Attribute):
            return None
        names.append(element.attr)
    return names[0], names[1]


def extract_declared_schema(features_path: Union[str, Path] = _FEATURES_PATH
                            ) -> DeclaredSchema:
    """Read ``_STAGE_FEATURES`` from the source, without importing it."""
    tree = load_module_ast(features_path)
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "_STAGE_FEATURES"
                   for t in targets):
            continue
        value = node.value
        if not isinstance(value, ast.Dict):
            raise CheckError("_STAGE_FEATURES is not a dict literal")
        schema = DeclaredSchema(stage_features={})
        for key, entry in zip(value.keys, value.values):
            pair = _enum_pair(key) if key is not None else None
            if pair is None:
                raise CheckError(
                    f"_STAGE_FEATURES key at line {key.lineno if key else '?'}"
                    " is not an (OperatorType, Stage) tuple")
            if not isinstance(entry, (ast.Tuple, ast.List)):
                raise CheckError(
                    f"_STAGE_FEATURES value for {pair} is not a tuple")
            suffixes = []
            for element in entry.elts:
                if not (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    raise CheckError(
                        f"_STAGE_FEATURES entry for {pair} holds a "
                        "non-string element")
                suffixes.append((element.value, element.lineno))
            schema.stage_features[pair] = suffixes
            schema.pair_lines[pair] = key.lineno
        return schema
    raise CheckError(f"_STAGE_FEATURES not found in {features_path}")


def extract_operator_stages(stages_path: Union[str, Path] = _STAGES_PATH
                            ) -> Dict[str, List[str]]:
    """Read ``OPERATOR_STAGES`` (operator member -> stage members)."""
    tree = load_module_ast(stages_path)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        if not any(isinstance(t, ast.Name) and t.id == "OPERATOR_STAGES"
                   for t in targets):
            continue
        value = node.value
        if not isinstance(value, ast.Dict):
            raise CheckError("OPERATOR_STAGES is not a dict literal")
        stages: Dict[str, List[str]] = {}
        for key, entry in zip(value.keys, value.values):
            if not isinstance(key, ast.Attribute):
                raise CheckError("OPERATOR_STAGES key is not OperatorType.X")
            if not isinstance(entry, (ast.Tuple, ast.List)):
                raise CheckError("OPERATOR_STAGES value is not a tuple")
            stages[key.attr] = [element.attr for element in entry.elts
                                if isinstance(element, ast.Attribute)]
        return stages
    raise CheckError(f"OPERATOR_STAGES not found in {stages_path}")


def extract_emitted_features(features_path: Union[str, Path] = _FEATURES_PATH
                             ) -> EmittedFeatures:
    """Read the extractor chain's emit capability from the source."""
    tree = load_module_ast(features_path)
    emitted = EmittedFeatures(handled={}, prefixes={},
                              expression_keys={}, direct={})

    basic = find_class_function(tree, "FeatureRegistry",
                                "_basic_feature_values")
    for node in ast.walk(basic):
        if isinstance(node, ast.Compare):
            left, ops, comparators = node.left, node.ops, node.comparators
            if (isinstance(left, ast.Name) and left.id == "suffix"
                    and len(ops) == 1 and isinstance(ops[0], ast.Eq)
                    and isinstance(comparators[0], ast.Constant)
                    and isinstance(comparators[0].value, str)):
                emitted.handled.setdefault(comparators[0].value, node.lineno)
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute) and func.attr == "startswith"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "suffix" and node.args
                    and isinstance(node.args[0], ast.Constant)):
                emitted.prefixes.setdefault(node.args[0].value, node.lineno)

    expressions = find_class_function(tree, "FeatureRegistry", "_expression_percentages")
    for node in ast.walk(expressions):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    emitted.expression_keys.setdefault(key.value, key.lineno)

    fill_stage = find_class_function(tree, "FeatureRegistry", "_fill_stage")
    for node in ast.walk(fill_stage):
        if isinstance(node, ast.Attribute) and node.attr == "count_index":
            emitted.direct.setdefault("count", node.lineno)
    return emitted


def _expected_feature_names(schema: DeclaredSchema,
                            operator_stages: Dict[str, List[str]]) -> List[str]:
    """Reconstruct the registry layout from declarations alone.

    Mirrors ``FeatureRegistry.__init__``: definition order of
    ``OPERATOR_STAGES``, a ``count`` per pair, then the declared basic
    features. Enum *members* map to their values by the repo convention
    (``TABLE_SCAN`` -> ``TableScan``); the live enum supplies the value.
    """
    from ..engine.stages import OperatorType, Stage
    names = []
    for op_member, stage_members in operator_stages.items():
        op_value = OperatorType[op_member].value
        for stage_member in stage_members:
            stage_value = Stage[stage_member].value
            names.append(f"{op_value}_{stage_value}_count")
            for suffix, _ in schema.stage_features.get(
                    (op_member, stage_member), []):
                names.append(f"{op_value}_{stage_value}_{suffix}")
    return names


def check_feature_schema(features_path: Union[str, Path] = _FEATURES_PATH,
                         stages_path: Union[str, Path] = _STAGES_PATH,
                         model_path: Optional[Union[str, Path]] = None
                         ) -> List[Finding]:
    """Run the drift detector; optionally include a saved model file."""
    findings: List[Finding] = []
    features_path = Path(features_path)
    rel = repo_relative(features_path)
    schema = extract_declared_schema(features_path)
    emitted = extract_emitted_features(features_path)
    operator_stages = extract_operator_stages(stages_path)

    valid_pairs = {(op, stage) for op, stages in operator_stages.items()
                   for stage in stages}

    # FS005 / FS006 / FS002: declaration-side problems.
    for pair, entries in schema.stage_features.items():
        line = schema.pair_lines.get(pair, 0)
        if pair not in valid_pairs:
            findings.append(Finding(
                "FS005", Severity.ERROR, rel, line,
                f"_STAGE_FEATURES declares ({pair[0]}, {pair[1]}) but "
                "OPERATOR_STAGES never produces that stage"))
        seen: Set[str] = set()
        for suffix, suffix_line in entries:
            if suffix in seen:
                findings.append(Finding(
                    "FS006", Severity.ERROR, rel, suffix_line,
                    f"duplicate feature {suffix!r} declared for "
                    f"({pair[0]}, {pair[1]})"))
            seen.add(suffix)
            if not emitted.covers(suffix):
                findings.append(Finding(
                    "FS002", Severity.ERROR, rel, suffix_line,
                    f"feature {suffix!r} declared for ({pair[0]}, "
                    f"{pair[1]}) has no extractor branch in "
                    "_basic_feature_values"))

    # FS001: extractor-side emissions nothing declares.
    declared_suffixes = schema.all_suffixes()
    for suffix, line in emitted.expression_keys.items():
        if suffix not in declared_suffixes:
            findings.append(Finding(
                "FS001", Severity.ERROR, rel, line,
                f"_expression_percentages emits {suffix!r} but no stage "
                "declares it; the value is silently dropped"))
    for suffix, line in emitted.handled.items():
        if suffix not in declared_suffixes:
            findings.append(Finding(
                "FS001", Severity.WARNING, rel, line,
                f"extractor branch for {suffix!r} is dead: no stage "
                "declares that feature"))

    # FS003: declared layout vs. the live registry.
    from ..core.features import FeatureRegistry
    expected = _expected_feature_names(schema, operator_stages)
    live = FeatureRegistry().feature_names()
    if expected != live:
        drift = next((i for i, (a, b) in enumerate(zip(expected, live))
                      if a != b), min(len(expected), len(live)))
        findings.append(Finding(
            "FS003", Severity.ERROR, rel, 0,
            f"declared layout and live registry diverge at index {drift}: "
            f"declared {expected[drift] if drift < len(expected) else '<end>'!r}"
            f", live {live[drift] if drift < len(live) else '<end>'!r} "
            f"({len(expected)} declared vs {len(live)} live features)"))

    # FS003 / FS004: persisted model vs. the live registry.
    if model_path is not None:
        findings.extend(_check_model_file(Path(model_path), live))
    return findings


def _check_model_file(model_path: Path, live: List[str]) -> List[Finding]:
    findings: List[Finding] = []
    if not model_path.exists():
        raise CheckError(f"model file not found: {model_path}")
    try:
        payload = json.loads(model_path.read_text())
    except json.JSONDecodeError as exc:
        raise CheckError(f"model file {model_path} is not JSON: {exc}") from exc
    rel = model_path.name
    inner = payload.get("model", payload)
    n_features = inner.get("n_features")
    if n_features is not None and n_features != len(live):
        findings.append(Finding(
            "FS004", Severity.ERROR, rel, 0,
            f"model was trained on {n_features} features, the registry "
            f"now has {len(live)}"))
    names = payload.get("feature_names")
    if names is not None and list(names) != live:
        drift = next((i for i, (a, b) in enumerate(zip(names, live))
                      if a != b), min(len(names), len(live)))
        findings.append(Finding(
            "FS003", Severity.ERROR, rel, 0,
            f"model feature_names diverge from the registry at index "
            f"{drift}: saved "
            f"{names[drift] if drift < len(names) else '<end>'!r}, live "
            f"{live[drift] if drift < len(live) else '<end>'!r}"))
    return findings
