"""Per-function dataflow summaries over the call graph.

Two summary engines live here, both computed as bottom-up fixpoints
over :class:`~repro.checks.callgraph.CallGraph`:

* **Taint summaries** (:func:`compute_taint_summaries`) for the DT
  determinism analyzer: which nondeterminism *kinds* (wall clock,
  ``id()`` addresses, unseeded ``random``, OS entropy, set iteration
  order, ...) a function returns, which parameters flow to its return
  value, and which parameters it forwards into a seed-critical sink.
  The intra-function pass is flow-insensitive (a variable once tainted
  stays tainted) — sound for a "prove taint never reaches a sink"
  property, at the cost of some precision.

* **Raises summaries** (:func:`compute_raises_summaries`) for the EX
  exception-contract analyzer: the set of exception *type names* that
  may escape a function, with ``try`` handlers filtered through a
  class hierarchy (corpus ``errors.py`` classes + builtin exceptions).
  Unresolved calls contribute nothing — the summary answers "which
  raises *written in this corpus* escape", not "can CPython raise".

* **Cost summaries** (:func:`compute_cost_summaries`) for the HP
  hot-path analyzer: which expensive *effects* (ctypes FFI round-trips,
  pickling, regex compilation, JSON, subprocess spawns, blocking IO,
  sleeps) a function may perform — directly or through any corpus
  callee — plus its maximum loop-nest depth and whether it allocates
  fresh array copies per loop iteration. ``self.<attr>(...)`` calls
  count as FFI when the class binds ``<attr>`` from a
  ``ctypes.CDLL(...)`` handle (the ``CompiledTreeModel`` shape).

All engines cap their fixpoint iteration count; the call graphs here
are small (a few hundred functions) and monotone, so the caps exist
only to turn a future non-monotonicity bug into a loud
:class:`~repro.errors.CheckError` instead of a hang.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import CheckError
from .astutils import dotted_name, self_attr
from .callgraph import CallGraph, FunctionInfo

__all__ = [
    "COST_EFFECTS",
    "SINK_NAMES",
    "SOURCE_KINDS",
    "CostSummary",
    "EffectOrigin",
    "RaisesSummary",
    "TaintKind",
    "TaintSummary",
    "ExceptionHierarchy",
    "classify_cost_effect",
    "classify_source",
    "collect_ffi_attrs",
    "compute_cost_summaries",
    "compute_raises_summaries",
    "compute_taint_summaries",
    "escapes_of_statements",
    "handler_type_names",
    "map_loop_depths",
    "sink_name_of_call",
]

# -- taint ---------------------------------------------------------------

TaintKind = str

#: kind -> human-readable description of the nondeterminism source.
SOURCE_KINDS: Dict[TaintKind, str] = {
    "clock": "wall-clock reading",
    "id": "id() object address",
    "random": "unseeded stdlib random",
    "entropy": "OS entropy (os.urandom/uuid4/secrets)",
    "hash": "builtin hash() (PYTHONHASHSEED-dependent)",
    "set-order": "set iteration order",
    "procid": "process/thread identity",
    "env": "os.environ value",
    "set-pop": "set.pop() arbitrary element",
}

#: Marker kind: the value *is* a set (iterating it yields "set-order").
_IS_SET = "is-set"

#: Seed-critical sinks, by callee name. Values name the contract the
#: sink belongs to (used in finding messages).
SINK_NAMES: Dict[str, str] = {
    "derive_seed": "repro.rng seed derivation",
    "derive_rng": "repro.rng seed derivation",
    "make_rng": "repro.rng seed derivation",
    "FaultSpec": "repro.faults arming",
    "FaultPlan": "repro.faults arming",
    "iter_workload_chunks": "repro.parallel chunk scheduling",
    "WorkloadChunk": "repro.parallel chunk scheduling",
    "generate_c_source": "repro.treecomp emission order",
}

_CLOCK_CALLS = frozenset({
    "time.time", "time.monotonic", "time.perf_counter",
    "time.time_ns", "time.monotonic_ns", "time.perf_counter_ns",
    "time.process_time", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
})
_ENTROPY_CALLS = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
    "secrets.token_hex", "secrets.token_urlsafe", "secrets.randbelow",
})
_PROCID_CALLS = frozenset({
    "os.getpid", "os.getppid", "threading.get_ident",
    "threading.get_native_id",
})
_RANDOM_CALLS = frozenset({
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.shuffle", "random.sample",
    "random.uniform", "random.gauss", "random.Random",
})
#: Calls whose result launders set-order (deterministic ordering).
_ORDER_SANITIZERS = frozenset({"sorted", "min", "max", "sum", "len",
                               "frozenset"})


def classify_source(call: ast.Call) -> Optional[TaintKind]:
    """Nondeterminism kind produced by this call, if it is a source."""
    name = dotted_name(call.func)
    if name is None:
        return None
    if name in _CLOCK_CALLS:
        return "clock"
    if name in _ENTROPY_CALLS:
        return "entropy"
    if name in _PROCID_CALLS:
        return "procid"
    if name in _RANDOM_CALLS or name.startswith("random."):
        return "random"
    if name == "id":
        return "id"
    if name == "hash":
        return "hash"
    return None


def sink_name_of_call(call: ast.Call) -> Optional[str]:
    """The sink key for this call, if its callee is seed-critical."""
    func = call.func
    name: Optional[str] = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
        # FaultPlan.parse — classmethod constructor of the arming plan.
        if name == "parse" and isinstance(func.value, ast.Name) \
                and func.value.id == "FaultPlan":
            return "FaultPlan"
    if name in SINK_NAMES:
        return name
    return None


def _param_token(index: int) -> TaintKind:
    return f"P{index}"


def _is_param_token(kind: TaintKind) -> bool:
    return kind.startswith("P") and kind[1:].isdigit()


@dataclass
class SinkHit:
    """One tainted value reaching a seed-critical sink."""

    sink: str                 # key into SINK_NAMES
    kinds: FrozenSet[TaintKind]
    line: int
    #: the argument expression that carried the taint
    arg: ast.expr
    #: True when the taint reaches the sink through a callee's
    #: parameter (reported at the caller, as DT010).
    via_call: bool = False


@dataclass
class TaintSummary:
    """What one function does with nondeterministic values."""

    returns: Set[TaintKind] = field(default_factory=set)
    #: param index -> sink keys it is forwarded into.
    param_to_sink: Dict[int, Set[str]] = field(default_factory=dict)
    #: direct (non-parameter) taint reaching sinks inside this function.
    hits: List[SinkHit] = field(default_factory=list)

    def param_returns(self) -> Set[int]:
        return {int(k[1:]) for k in self.returns if _is_param_token(k)}

    def fingerprint(self) -> Tuple[object, ...]:
        return (frozenset(self.returns),
                frozenset((k, frozenset(v))
                          for k, v in self.param_to_sink.items()),
                len(self.hits))


class _TaintPass:
    """One flow-insensitive taint pass over one function."""

    def __init__(self, graph: CallGraph, info: FunctionInfo,
                 summaries: Dict[str, TaintSummary],
                 class_env: Dict[str, Dict[str, Set[TaintKind]]]):
        self.graph = graph
        self.info = info
        self.summaries = summaries
        self.class_env = class_env
        self.env: Dict[str, Set[TaintKind]] = {}
        self.summary = TaintSummary()
        self._callees: Dict[int, Tuple[str, ...]] = {
            id(site.node): site.callees for site in info.calls}
        args = info.node.args
        self._params = [a.arg for a in (list(args.posonlyargs)
                                        + list(args.args)
                                        + list(args.kwonlyargs))]
        for index, name in enumerate(self._params):
            if name in ("self", "cls"):
                continue
            self.env[name] = {_param_token(index)}

    # -- expression evaluation -------------------------------------------

    def eval(self, node: Optional[ast.expr]) -> Set[TaintKind]:
        if node is None:
            return set()
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            attr = self_attr(node)
            if attr is not None and self.info.cls is not None:
                cls_key = f"{self.info.module}:{self.info.cls}"
                return set(self.class_env.get(cls_key, {}).get(attr, ()))
            name = dotted_name(node)
            if name == "os.environ":
                return {"env"}
            return self.eval(node.value) if isinstance(
                node.value, ast.expr) else set()
        if isinstance(node, (ast.Set, ast.SetComp)):
            kinds = self._eval_children(node)
            kinds.add(_IS_SET)
            return kinds
        if isinstance(node, ast.IfExp):
            return (self.eval(node.body) | self.eval(node.orelse)
                    | self.eval(node.test))
        if isinstance(node, ast.Subscript):
            kinds = self.eval(node.value)
            if isinstance(node.slice, ast.expr):
                kinds |= self.eval(node.slice)
            return kinds
        if isinstance(node, (ast.Tuple, ast.List)):
            return self._eval_children(node)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, (ast.Lambda, ast.FunctionDef)):
            return set()
        return self._eval_children(node)

    def _eval_children(self, node: ast.AST) -> Set[TaintKind]:
        kinds: Set[TaintKind] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                kinds |= self.eval(child)
            elif isinstance(child, (ast.comprehension,)):
                iter_kinds = self.eval(child.iter)
                if _IS_SET in iter_kinds:
                    iter_kinds.discard(_IS_SET)
                    iter_kinds.add("set-order")
                if isinstance(child.target, ast.Name):
                    self.env.setdefault(child.target.id,
                                        set()).update(iter_kinds)
                kinds |= iter_kinds
        return kinds

    def _arg_exprs(self, call: ast.Call) -> List[ast.expr]:
        out: List[ast.expr] = list(call.args)
        out.extend(kw.value for kw in call.keywords)
        return out

    def _eval_call(self, call: ast.Call) -> Set[TaintKind]:
        name = dotted_name(call.func)
        arg_kinds = [self.eval(arg) for arg in self._arg_exprs(call)]
        merged: Set[TaintKind] = set()
        for kinds in arg_kinds:
            merged |= kinds

        source = classify_source(call)
        if source is not None:
            # id()/hash() of a tainted value stays tainted too.
            return {source} | (merged - {_IS_SET})

        if name is not None:
            base = name.split(".")[-1]
            if base in _ORDER_SANITIZERS:
                merged.discard("set-order")
                merged.discard(_IS_SET)
                if base == "len":
                    return set()
                return merged
            if base in ("set",):
                merged.add(_IS_SET)
                return merged
            if base in ("list", "tuple", "iter"):
                # materialising a set fixes an arbitrary order
                if _IS_SET in merged:
                    merged.discard(_IS_SET)
                    merged.add("set-order")
                return merged
            if isinstance(call.func, ast.Attribute) and \
                    call.func.attr == "pop" and \
                    _IS_SET in self.eval(call.func.value):
                return merged | {"set-pop"}

        self._check_sink(call, arg_kinds)

        callees = self._callees.get(id(call), ())
        if callees:
            result: Set[TaintKind] = set()
            for qname in callees:
                summary = self.summaries.get(qname)
                if summary is None:
                    continue
                result |= {k for k in summary.returns
                           if not _is_param_token(k)}
                callee = self.graph.functions[qname]
                offset = 1 if callee.cls is not None else 0
                for ret_param in summary.param_returns():
                    pos = ret_param - offset
                    if 0 <= pos < len(arg_kinds):
                        result |= arg_kinds[pos]
                # taint forwarded into a sink inside the callee
                for param, sinks in summary.param_to_sink.items():
                    pos = param - offset
                    if 0 <= pos < len(arg_kinds):
                        concrete = {k for k in arg_kinds[pos]
                                    if k != _IS_SET
                                    and not _is_param_token(k)}
                        params = {int(k[1:]) for k in arg_kinds[pos]
                                  if _is_param_token(k)}
                        if concrete:
                            args = self._arg_exprs(call)
                            for sink in sinks:
                                self.summary.hits.append(SinkHit(
                                    sink=sink,
                                    kinds=frozenset(concrete),
                                    line=call.lineno, arg=args[pos],
                                    via_call=True))
                        for param_index in params:
                            self.summary.param_to_sink.setdefault(
                                param_index, set()).update(sinks)
            return result
        # Unknown callee: assume it pipes argument taint through.
        merged.discard(_IS_SET)
        return merged

    def _check_sink(self, call: ast.Call,
                    arg_kinds: Sequence[Set[TaintKind]]) -> None:
        sink = sink_name_of_call(call)
        if sink is None:
            return
        args = self._arg_exprs(call)
        for arg, kinds in zip(args, arg_kinds):
            effective = set(kinds)
            if _IS_SET in effective:
                effective.discard(_IS_SET)
                effective.add("set-order")
            real = {k for k in effective if not _is_param_token(k)}
            params = {int(k[1:]) for k in effective if _is_param_token(k)}
            if real:
                self.summary.hits.append(SinkHit(
                    sink=sink, kinds=frozenset(real),
                    line=call.lineno, arg=arg))
            for param in params:
                self.summary.param_to_sink.setdefault(
                    param, set()).add(sink)

    # -- statement walk ----------------------------------------------------

    def run(self) -> TaintSummary:
        changed = True
        rounds = 0
        while changed:
            rounds += 1
            if rounds > 20:
                raise CheckError(
                    f"taint pass over {self.info.qname} did not converge")
            before = {k: frozenset(v) for k, v in self.env.items()}
            hits = len(self.summary.hits)
            self.summary.hits = self.summary.hits[:0]
            self._walk()
            changed = (before != {k: frozenset(v)
                                  for k, v in self.env.items()}
                       or hits != len(self.summary.hits))
        return self.summary

    def _walk(self) -> None:
        for node in self.info.own_statements():
            if isinstance(node, ast.Assign):
                kinds = self.eval(node.value)
                for target in node.targets:
                    self._assign(target, kinds, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._assign(node.target, self.eval(node.value), node.value)
            elif isinstance(node, ast.AugAssign):
                kinds = self.eval(node.value) | self.eval(
                    node.target if isinstance(node.target, ast.expr)
                    else None)
                self._assign(node.target, kinds, node.value)
            elif isinstance(node, ast.Return):
                self.summary.returns |= {
                    k for k in self.eval(node.value) if k != _IS_SET}
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                kinds = self.eval(node.iter)
                if _IS_SET in kinds:
                    kinds.discard(_IS_SET)
                    kinds.add("set-order")
                self._assign(node.target, kinds, node.iter)
            elif isinstance(node, ast.Expr):
                self.eval(node.value)
            elif isinstance(node, (ast.If, ast.While)):
                self.eval(node.test)
            elif isinstance(node, ast.Assert):
                self.eval(node.test)
            elif isinstance(node, ast.Raise):
                if node.exc is not None:
                    self.eval(node.exc)

    def _assign(self, target: ast.expr, kinds: Set[TaintKind],
                value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if kinds:
                self.env.setdefault(target.id, set()).update(kinds)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, set(kinds), value)
            return
        persistent = {k for k in kinds if not _is_param_token(k)
                      and k != _IS_SET}
        if not persistent:
            return
        attr = self_attr(target)
        if attr is None and isinstance(target, ast.Subscript):
            attr = self_attr(target.value)
        if attr is not None and self.info.cls is not None:
            cls_key = f"{self.info.module}:{self.info.cls}"
            self.class_env.setdefault(cls_key, {}).setdefault(
                attr, set()).update(persistent)


def compute_taint_summaries(graph: CallGraph
                            ) -> Dict[str, TaintSummary]:
    """Bottom-up taint fixpoint over every function of the graph.

    A worklist keyed on reverse call edges: a function is recomputed
    only when one of its callees' summaries (or its own class's
    attribute-taint environment) changed since its last pass. The cap
    turns a future non-monotonicity bug into a loud error, not a hang.
    """
    summaries: Dict[str, TaintSummary] = {
        qname: TaintSummary() for qname in graph.functions}
    class_env: Dict[str, Dict[str, Set[TaintKind]]] = {}
    callers = graph.callers_of()
    methods_by_class: Dict[str, List[str]] = {}
    for qname, info in graph.functions.items():
        if info.cls is not None:
            methods_by_class.setdefault(
                f"{info.module}:{info.cls}", []).append(qname)

    queue = list(graph.functions)
    queued = set(queue)
    iterations = 0
    cap = 60 * max(1, len(graph.functions))
    while queue:
        iterations += 1
        if iterations > cap:
            raise CheckError(
                "interprocedural taint summaries did not converge "
                f"({iterations} function passes)")
        qname = queue.pop(0)
        queued.discard(qname)
        info = graph.functions[qname]
        cls_key = (f"{info.module}:{info.cls}"
                   if info.cls is not None else None)
        env_before = {a: frozenset(v) for a, v in
                      class_env.get(cls_key, {}).items()} \
            if cls_key is not None else {}
        new = _TaintPass(graph, info, summaries, class_env).run()
        changed = new.fingerprint() != summaries[qname].fingerprint()
        summaries[qname] = new
        if changed:
            for caller in callers.get(qname, ()):
                if caller not in queued:
                    queued.add(caller)
                    queue.append(caller)
        if cls_key is not None:
            env_after = {a: frozenset(v) for a, v in
                         class_env.get(cls_key, {}).items()}
            if env_after != env_before:
                for method in methods_by_class.get(cls_key, ()):
                    if method not in queued:
                        queued.add(method)
                        queue.append(method)
    return summaries


# -- raises --------------------------------------------------------------

_RERAISE = "<reraise>"

#: Builtins that subclass BaseException directly (never Exception).
_BASE_ONLY = frozenset({"KeyboardInterrupt", "SystemExit", "GeneratorExit"})


class ExceptionHierarchy:
    """Name-level subclass relation over corpus + builtin exceptions."""

    def __init__(self, bases: Dict[str, List[str]]):
        #: class name -> direct base names
        self.bases = dict(bases)

    def ancestors(self, name: str) -> Set[str]:
        out: Set[str] = set()
        queue = [name]
        while queue:
            current = queue.pop()
            if current in out:
                continue
            out.add(current)
            if current in self.bases:
                queue.extend(self.bases[current])
            elif current in _BASE_ONLY:
                out.add("BaseException")
            elif current not in ("BaseException",):
                # Unknown/builtin exception: assume Exception subtype.
                out.add("Exception")
                out.add("BaseException")
        out.add("BaseException")
        return out

    def catches(self, handler_type: str, raised: str) -> bool:
        if raised == "<unknown>":
            return handler_type in ("Exception", "BaseException")
        return handler_type in self.ancestors(raised)

    @classmethod
    def from_graph(cls, graph: CallGraph) -> "ExceptionHierarchy":
        bases: Dict[str, List[str]] = {}
        for class_qname, base_names in graph.class_bases.items():
            name = class_qname.rpartition(":")[2]
            known = [b for b in base_names if b != "?"]
            if known:
                bases.setdefault(name, []).extend(
                    b for b in known if b not in bases.get(name, []))
        bases.setdefault("BrokenProcessPool", ["Exception"])
        return cls(bases)


@dataclass
class RaisesSummary:
    """Exception type names that may escape one function."""

    escapes: Set[str] = field(default_factory=set)
    #: line of one representative raise per escaping type.
    raise_lines: Dict[str, int] = field(default_factory=dict)


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return ["BaseException"]   # bare except catches everything
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    out = []
    for node in types:
        name = dotted_name(node)
        out.append(name.split(".")[-1] if name else "<unknown>")
    return out


class _RaisesPass:
    def __init__(self, graph: CallGraph, info: FunctionInfo,
                 summaries: Dict[str, RaisesSummary],
                 hierarchy: ExceptionHierarchy):
        self.graph = graph
        self.info = info
        self.summaries = summaries
        self.hierarchy = hierarchy
        self._callees: Dict[int, Tuple[str, ...]] = {
            id(site.node): site.callees for site in info.calls}
        self.lines: Dict[str, int] = {}

    def run(self) -> RaisesSummary:
        escapes = self._body(self.info.node.body)
        escapes.discard(_RERAISE)   # bare raise outside except: impossible
        return RaisesSummary(escapes=escapes,
                             raise_lines={name: self.lines.get(name, 0)
                                          for name in escapes})

    def _note(self, name: str, line: int) -> None:
        self.lines.setdefault(name, line)

    def _calls_in(self, node: ast.AST) -> Set[str]:
        """Escapes of corpus callees referenced inside ``node``."""
        out: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                for qname in self._callees.get(id(child), ()):
                    summary = self.summaries.get(qname)
                    if summary is not None:
                        for name in summary.escapes:
                            out.add(name)
                            self._note(name, child.lineno)
        return out

    def _body(self, statements: Sequence[ast.stmt]) -> Set[str]:
        escapes: Set[str] = set()
        for node in statements:
            escapes |= self._stmt(node)
        return escapes

    def _stmt(self, node: ast.stmt) -> Set[str]:
        if isinstance(node, ast.Raise):
            escapes = self._calls_in(node)
            if node.exc is None:
                escapes.add(_RERAISE)
                return escapes
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = dotted_name(target)
            raised = name.split(".")[-1] if name else "<unknown>"
            self._note(raised, node.lineno)
            escapes.add(raised)
            return escapes
        if isinstance(node, ast.Try):
            return self._try(node)
        if isinstance(node, (ast.If,)):
            out = self._calls_in(node.test)
            out |= self._body(node.body)
            out |= self._body(node.orelse)
            return out
        if isinstance(node, (ast.While,)):
            return (self._calls_in(node.test) | self._body(node.body)
                    | self._body(node.orelse))
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return (self._calls_in(node.iter) | self._body(node.body)
                    | self._body(node.orelse))
        if isinstance(node, (ast.With, ast.AsyncWith)):
            enter: Set[str] = set()
            for item in node.items:
                enter |= self._calls_in(item.context_expr)
            return enter | self._body(node.body)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return set()
        return self._calls_in(node)

    def _try(self, node: ast.Try) -> Set[str]:
        body_escapes = self._body(node.body)
        # ``else`` runs after the handlers are out of scope: its raises
        # escape the try (modulo finally) without handler filtering.
        escaped: Set[str] = self._body(node.orelse)
        escaped.discard(_RERAISE)
        routed: Dict[int, Set[str]] = {}
        for raised in body_escapes:
            if raised == _RERAISE:
                escaped.add(raised)
                continue
            for index, handler in enumerate(node.handlers):
                if any(self.hierarchy.catches(h, raised)
                       for h in _handler_names(handler)):
                    routed.setdefault(index, set()).add(raised)
                    break
            else:
                escaped.add(raised)
        for index, handler in enumerate(node.handlers):
            handler_escapes = self._body(handler.body)
            if _RERAISE in handler_escapes:
                handler_escapes.discard(_RERAISE)
                caught = routed.get(index, set())
                if not caught:
                    # Nothing provably routed here, but the handler can
                    # still catch raises our summaries cannot see (e.g.
                    # builtins); a bare re-raise propagates them. Keep
                    # the handler's declared types as the escape set.
                    caught = {h for h in _handler_names(handler)
                              if h != "<unknown>"}
                    for name in caught:
                        self._note(name, handler.lineno)
                handler_escapes |= caught
            escaped |= handler_escapes
        escaped |= self._body(node.finalbody)
        return escaped


def handler_type_names(handler: ast.ExceptHandler) -> List[str]:
    """Declared type names an ``except`` clause catches (public alias)."""
    return _handler_names(handler)


def escapes_of_statements(graph: CallGraph, info: FunctionInfo,
                          summaries: Dict[str, RaisesSummary],
                          hierarchy: ExceptionHierarchy,
                          statements: Sequence[ast.stmt]) -> Set[str]:
    """Exception type names that may escape a statement list.

    Used by the EX analyzer to ask "what can this ``try`` body raise"
    with the same handler-filtering semantics the summaries use.
    """
    gate = _RaisesPass(graph, info, summaries, hierarchy)
    escapes = gate._body(list(statements))
    escapes.discard(_RERAISE)
    return escapes


def compute_raises_summaries(graph: CallGraph,
                             hierarchy: Optional[ExceptionHierarchy] = None,
                             ) -> Dict[str, RaisesSummary]:
    """Bottom-up may-escape exception fixpoint over the call graph.

    Worklist over reverse call edges, like the taint fixpoint: a
    caller is revisited only when a callee's escape set grew.
    """
    hierarchy = hierarchy or ExceptionHierarchy.from_graph(graph)
    summaries: Dict[str, RaisesSummary] = {
        qname: RaisesSummary() for qname in graph.functions}
    callers = graph.callers_of()
    queue = list(graph.functions)
    queued = set(queue)
    iterations = 0
    cap = 60 * max(1, len(graph.functions))
    while queue:
        iterations += 1
        if iterations > cap:
            raise CheckError(
                "interprocedural raises summaries did not converge "
                f"({iterations} function passes)")
        qname = queue.pop(0)
        queued.discard(qname)
        new = _RaisesPass(
            graph, graph.functions[qname], summaries, hierarchy).run()
        if frozenset(new.escapes) != frozenset(summaries[qname].escapes):
            for caller in callers.get(qname, ()):
                if caller not in queued:
                    queued.add(caller)
                    queue.append(caller)
        summaries[qname] = new
    return summaries


# -- cost ----------------------------------------------------------------

#: effect tag -> human-readable description (used in HP messages).
COST_EFFECTS: Dict[str, str] = {
    "ffi": "ctypes FFI round-trip",
    "pickle": "pickle serialization",
    "re-compile": "regex compilation",
    "json": "JSON (de)serialization",
    "subprocess": "subprocess spawn",
    "io": "blocking file/socket IO",
    "sleep": "thread sleep",
}

#: dotted callee name -> effect tag, for exact-name classification.
_COST_CALL_TAGS: Dict[str, str] = {
    "pickle.dumps": "pickle", "pickle.loads": "pickle",
    "pickle.dump": "pickle", "pickle.load": "pickle",
    "re.compile": "re-compile",
    "json.dumps": "json", "json.loads": "json",
    "json.dump": "json", "json.load": "json",
    "subprocess.run": "subprocess", "subprocess.call": "subprocess",
    "subprocess.check_call": "subprocess",
    "subprocess.check_output": "subprocess",
    "subprocess.Popen": "subprocess", "os.system": "subprocess",
    "time.sleep": "sleep",
    "socket.create_connection": "io",
    "urllib.request.urlopen": "io",
    "open": "io",
}

#: method names that read/write files regardless of receiver type.
_IO_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: numpy allocators that copy the whole accumulator per call.
_COPY_ALLOCATORS = frozenset({
    "append", "concatenate", "vstack", "hstack",
})
_NUMPY_ALIASES = frozenset({"np", "numpy"})


def classify_cost_effect(call: ast.Call,
                         ffi_attrs: FrozenSet[str] = frozenset()
                         ) -> Optional[str]:
    """Effect tag this call performs directly, if any.

    ``ffi_attrs`` names ``self.<attr>`` members of the enclosing class
    that are bound from a ``ctypes.CDLL`` handle — calling one *is* the
    FFI round-trip even though no ``ctypes`` name appears at the site.
    """
    name = dotted_name(call.func)
    if name is not None:
        tag = _COST_CALL_TAGS.get(name)
        if tag is not None:
            return tag
        parts = name.split(".")
        if "ctypes" in parts:
            return "ffi"
        if parts[-1] in _IO_METHODS:
            return "io"
    attr = self_attr(call.func)
    if attr is not None and attr in ffi_attrs:
        return "ffi"
    return None


def collect_ffi_attrs(graph: CallGraph) -> Dict[str, FrozenSet[str]]:
    """class qname -> ``self.<attr>`` members that are FFI callables.

    Detects the ``CompiledTreeModel`` binding shape::

        self._lib = ctypes.CDLL(path)
        self._predict = getattr(self._lib, name)

    so ``self._predict(ptr)`` classifies as an FFI call.
    """
    out: Dict[str, FrozenSet[str]] = {}
    for info in graph.functions.values():
        if info.cls is None:
            continue
        lib_attrs: Set[str] = set()
        candidates: List[Tuple[str, str]] = []   # (attr, lib attr)
        for node in info.own_statements():
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1):
                continue
            target = self_attr(node.targets[0])
            if target is None or not isinstance(node.value, ast.Call):
                continue
            callee = dotted_name(node.value.func)
            if callee is not None and "ctypes" in callee.split(".") \
                    and callee.split(".")[-1] in ("CDLL", "PyDLL",
                                                  "WinDLL"):
                lib_attrs.add(target)
            elif callee == "getattr" and node.value.args:
                source = self_attr(node.value.args[0])
                if source is not None:
                    candidates.append((target, source))
        bound = {attr for attr, lib in candidates if lib in lib_attrs}
        if bound:
            key = f"{info.module}:{info.cls}"
            out[key] = out.get(key, frozenset()) | frozenset(bound)
    return out


def map_loop_depths(func: ast.AST) -> Dict[int, int]:
    """``id(node)`` -> loop-nest depth, for every node of one function.

    Depth counts ``for``/``while`` loops and comprehension generators.
    Evaluation position matters: a ``for`` iterable runs once (at the
    loop's own depth) while a ``while`` test runs per iteration (at
    body depth). Nested function/class bodies are their own scope and
    are not visited.
    """
    depths: Dict[int, int] = {}

    def mark(node: ast.AST, depth: int) -> None:
        depths[id(node)] = depth
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            mark(node.iter, depth)
            mark(node.target, depth + 1)
            for stmt in node.body:
                mark(stmt, depth + 1)
            for stmt in node.orelse:
                mark(stmt, depth)
            return
        if isinstance(node, ast.While):
            mark(node.test, depth + 1)
            for stmt in node.body:
                mark(stmt, depth + 1)
            for stmt in node.orelse:
                mark(stmt, depth)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            inner = depth + len(node.generators)
            for index, gen in enumerate(node.generators):
                mark(gen.iter, depth if index == 0 else inner)
                mark(gen.target, inner)
                for cond in gen.ifs:
                    mark(cond, inner)
            if isinstance(node, ast.DictComp):
                mark(node.key, inner)
                mark(node.value, inner)
            else:
                mark(node.elt, inner)
            return
        for child in ast.iter_child_nodes(node):
            mark(child, depth)

    for child in ast.iter_child_nodes(func):
        mark(child, 0)
    return depths


@dataclass(frozen=True)
class EffectOrigin:
    """Where an effect enters a function: a direct site or a call."""

    line: int
    #: callee qname when the effect is inherited through a call.
    via: Optional[str] = None


@dataclass
class CostSummary:
    """Expensive effects one function may perform, with witnesses."""

    effects: Dict[str, EffectOrigin] = field(default_factory=dict)
    max_loop_depth: int = 0
    #: a whole-array copy allocator runs inside one of its loops.
    allocates_in_loop: bool = False

    def fingerprint(self) -> Tuple[object, ...]:
        return (frozenset(self.effects), self.max_loop_depth,
                self.allocates_in_loop)


#: Loop-depth ceiling for summaries. Recursion inside a loop would
#: otherwise grow the transitive depth by one per fixpoint pass and
#: never converge; no HP rule distinguishes depths beyond this.
_MAX_SUMMARY_LOOP_DEPTH = 4


def _is_copy_allocator(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name is None:
        return False
    parts = name.split(".")
    return (len(parts) == 2 and parts[0] in _NUMPY_ALIASES
            and parts[1] in _COPY_ALLOCATORS)


class _CostPass:
    """One bottom-up cost pass over one function."""

    def __init__(self, graph: CallGraph, info: FunctionInfo,
                 summaries: Dict[str, CostSummary],
                 ffi_attrs: Dict[str, FrozenSet[str]]):
        self.graph = graph
        self.info = info
        self.summaries = summaries
        cls_key = (f"{info.module}:{info.cls}"
                   if info.cls is not None else "")
        self.class_ffi = ffi_attrs.get(cls_key, frozenset())
        self._callees: Dict[int, Tuple[str, ...]] = {
            id(site.node): site.callees for site in info.calls}

    def run(self) -> CostSummary:
        summary = CostSummary()
        depths = map_loop_depths(self.info.node)
        for node in self.info.own_statements():
            depth = depths.get(id(node), 0)
            summary.max_loop_depth = max(summary.max_loop_depth, depth)
            if not isinstance(node, ast.Call):
                continue
            tag = classify_cost_effect(node, self.class_ffi)
            if tag is not None:
                summary.effects.setdefault(
                    tag, EffectOrigin(line=node.lineno))
            if depth >= 1 and _is_copy_allocator(node):
                summary.allocates_in_loop = True
            for qname in self._callees.get(id(node), ()):
                callee = self.summaries.get(qname)
                if callee is None:
                    continue
                for callee_tag in callee.effects:
                    summary.effects.setdefault(
                        callee_tag,
                        EffectOrigin(line=node.lineno, via=qname))
                summary.max_loop_depth = max(
                    summary.max_loop_depth,
                    depth + callee.max_loop_depth)
                summary.allocates_in_loop = (
                    summary.allocates_in_loop or callee.allocates_in_loop)
        summary.max_loop_depth = min(summary.max_loop_depth,
                                     _MAX_SUMMARY_LOOP_DEPTH)
        return summary


def compute_cost_summaries(graph: CallGraph) -> Dict[str, CostSummary]:
    """Bottom-up cost-effect fixpoint over every function of the graph.

    Same worklist discipline as the taint and raises engines: a caller
    is revisited only when a callee's summary fingerprint changed, and
    the iteration cap turns non-monotonicity into a loud error.
    """
    summaries: Dict[str, CostSummary] = {
        qname: CostSummary() for qname in graph.functions}
    ffi_attrs = collect_ffi_attrs(graph)
    callers = graph.callers_of()
    queue = list(graph.functions)
    queued = set(queue)
    iterations = 0
    cap = 60 * max(1, len(graph.functions))
    while queue:
        iterations += 1
        if iterations > cap:
            raise CheckError(
                "interprocedural cost summaries did not converge "
                f"({iterations} function passes)")
        qname = queue.pop(0)
        queued.discard(qname)
        new = _CostPass(graph, graph.functions[qname], summaries,
                        ffi_attrs).run()
        if new.fingerprint() != summaries[qname].fingerprint():
            for caller in callers.get(qname, ()):
                if caller not in queued:
                    queued.add(caller)
                    queue.append(caller)
        summaries[qname] = new
    return summaries
