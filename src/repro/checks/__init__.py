"""Static-analysis subsystem: prove T3's invariants without running them.

Six analyzers behind one driver (``repro-t3 check``):

* :mod:`~repro.checks.codegen_verify` — parse generated C back into a
  tree structure and verify structural equivalence with the trained
  model (rules ``CG...``),
* :mod:`~repro.checks.feature_schema` — detect drift between feature
  declarations, emit sites, and persisted models (``FS...``),
* :mod:`~repro.checks.plan_invariants` — prove the pipeline
  decomposition total and well-shaped, percentage features normalised,
  cardinalities clamped, and the target transform finite (``PI...``),
* :mod:`~repro.checks.ensemble_analyze` — interval analysis over
  trained ensembles: dead branches, unreachable leaves, non-finite
  decodes, float32 near-ties (``EA...``),
* :mod:`~repro.checks.concurrency` — CFG-based lock-discipline
  dataflow over the multithreaded serving code (``LK...``),
* :mod:`~repro.checks.lint` — project-wide conventions: typed errors,
  no bare except, no mutable defaults, no print, seeded randomness
  (``PL...``).

Shared infrastructure lives in :mod:`~repro.checks.astutils` (AST
loading and navigation helpers) and :mod:`~repro.checks.cfg`
(per-function control-flow graphs plus a generic forward-dataflow
solver). Findings carry ``file:line``, a stable rule id, and a
severity; a TOML baseline (``checks_baseline.toml``) grandfathers known
findings so the driver can gate CI on *new* ones only, and
``--format sarif`` renders the same findings for code-scanning upload.
"""

from .cfg import CFG, Block, build_cfg, forward_dataflow
from .codegen_verify import parse_c_source, self_check_model, verify_codegen
from .concurrency import check_lock_discipline
from .driver import ANALYZERS, RULES, CheckReport, run_checks
from .ensemble_analyze import analyze_ensemble
from .feature_schema import check_feature_schema
from .findings import (
    Baseline,
    Finding,
    Severity,
    Suppression,
    update_baseline,
    write_baseline,
)
from .lint import check_lint
from .plan_invariants import check_plan_invariants
from .sarif import render_sarif

__all__ = [
    "ANALYZERS",
    "Baseline",
    "Block",
    "CFG",
    "CheckReport",
    "Finding",
    "RULES",
    "Severity",
    "Suppression",
    "analyze_ensemble",
    "build_cfg",
    "check_feature_schema",
    "check_lint",
    "check_lock_discipline",
    "check_plan_invariants",
    "forward_dataflow",
    "parse_c_source",
    "render_sarif",
    "run_checks",
    "self_check_model",
    "update_baseline",
    "verify_codegen",
    "write_baseline",
]
