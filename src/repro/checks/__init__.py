"""Static-analysis subsystem: prove T3's invariants without running them.

Four analyzers behind one driver (``repro-t3 check``):

* :mod:`~repro.checks.codegen_verify` — parse generated C back into a
  tree structure and verify structural equivalence with the trained
  model (rules ``CG...``),
* :mod:`~repro.checks.feature_schema` — detect drift between feature
  declarations, emit sites, and persisted models (``FS...``),
* :mod:`~repro.checks.lockcheck` — lexical lock-discipline analysis of
  the multithreaded serving code (``LK...``),
* :mod:`~repro.checks.lint` — project-wide conventions: typed errors,
  no bare except, no mutable defaults, no print, seeded randomness
  (``PL...``).

Findings carry ``file:line``, a stable rule id, and a severity; a
TOML baseline (``checks_baseline.toml``) grandfathers known findings so
the driver can gate CI on *new* ones only.
"""

from .codegen_verify import parse_c_source, self_check_model, verify_codegen
from .driver import ANALYZERS, RULES, CheckReport, run_checks
from .feature_schema import check_feature_schema
from .findings import Baseline, Finding, Severity, Suppression
from .lint import check_lint
from .lockcheck import check_lock_discipline

__all__ = [
    "ANALYZERS",
    "Baseline",
    "CheckReport",
    "Finding",
    "RULES",
    "Severity",
    "Suppression",
    "check_feature_schema",
    "check_lint",
    "check_lock_discipline",
    "parse_c_source",
    "run_checks",
    "self_check_model",
    "verify_codegen",
]
