"""Static-analysis subsystem: prove T3's invariants without running them.

Eleven analyzers behind one driver (``repro-t3 check``):

* :mod:`~repro.checks.codegen_verify` — parse generated C back into a
  tree structure and verify structural equivalence with the trained
  model (rules ``CG...``),
* :mod:`~repro.checks.feature_schema` — detect drift between feature
  declarations, emit sites, and persisted models (``FS...``),
* :mod:`~repro.checks.plan_invariants` — prove the pipeline
  decomposition total and well-shaped, percentage features normalised,
  cardinalities clamped, and the target transform finite (``PI...``),
* :mod:`~repro.checks.ensemble_analyze` — interval analysis over
  trained ensembles: dead branches, unreachable leaves, non-finite
  decodes, float32 near-ties (``EA...``),
* :mod:`~repro.checks.concurrency` — CFG-based lock-discipline
  dataflow over the multithreaded serving code (``LK...``),
* :mod:`~repro.checks.lint` — project-wide conventions: typed errors,
  no bare except, no mutable defaults, no print, seeded randomness
  (``PL...``),
* :mod:`~repro.checks.responsiveness` — unbounded blocking calls in
  code that must stay shut-downable (``RT...``),
* :mod:`~repro.checks.determinism` — interprocedural taint from
  nondeterminism sources (clock, ``id()``, unseeded randomness, set
  order) to seed-critical sinks (``DT...``),
* :mod:`~repro.checks.exceptions` — exception-contract proof: public
  boundaries raise only :class:`~repro.errors.ReproError` subtypes,
  the HTTP envelope stays total, load-control errors are never
  swallowed (``EX...``),
* :mod:`~repro.checks.resources` — must-release analysis over
  exception edges for locks, futures, pools, handles, and breaker
  probe slots (``RS...``),
* :mod:`~repro.checks.hotpath` — interprocedural cost summaries
  propagated from configurable hot roots: per-element FFI round-trips,
  accumulating allocation, per-item process fan-out, blocking under
  locks, and hoistable loop-invariant work on the predict/featurize
  paths (``HP...``).

Shared infrastructure lives in :mod:`~repro.checks.astutils` (AST
loading and navigation helpers), :mod:`~repro.checks.cfg`
(per-function control-flow graphs plus a generic forward-dataflow
solver), :mod:`~repro.checks.callgraph` (project-wide call graph with
layered call-target resolution), and :mod:`~repro.checks.interproc`
(bottom-up per-function taint and may-raise summaries over the call
graph). Findings carry ``file:line``, a stable rule id, and a
severity; a TOML baseline (``checks_baseline.toml``) grandfathers known
findings so the driver can gate CI on *new* ones only, and
``--format sarif`` renders the same findings for code-scanning upload.
"""

from .callgraph import CallGraph, FunctionInfo, build_call_graph
from .cfg import CFG, Block, build_cfg, forward_dataflow
from .codegen_verify import parse_c_source, self_check_model, verify_codegen
from .concurrency import check_lock_discipline
from .determinism import check_determinism
from .driver import ANALYZERS, RULES, CheckReport, run_checks
from .ensemble_analyze import analyze_ensemble
from .exceptions import check_exception_contracts
from .feature_schema import check_feature_schema
from .findings import (
    Baseline,
    Finding,
    Severity,
    Suppression,
    update_baseline,
    write_baseline,
)
from .hotpath import check_hotpath
from .interproc import (
    compute_cost_summaries,
    compute_raises_summaries,
    compute_taint_summaries,
)
from .lint import check_lint
from .plan_invariants import check_plan_invariants
from .resources import check_resource_lifecycles
from .sarif import render_sarif

__all__ = [
    "ANALYZERS",
    "Baseline",
    "Block",
    "CFG",
    "CallGraph",
    "CheckReport",
    "Finding",
    "FunctionInfo",
    "RULES",
    "Severity",
    "Suppression",
    "analyze_ensemble",
    "build_call_graph",
    "build_cfg",
    "check_determinism",
    "check_exception_contracts",
    "check_feature_schema",
    "check_hotpath",
    "check_lint",
    "check_lock_discipline",
    "check_plan_invariants",
    "check_resource_lifecycles",
    "compute_cost_summaries",
    "compute_raises_summaries",
    "compute_taint_summaries",
    "forward_dataflow",
    "parse_c_source",
    "render_sarif",
    "run_checks",
    "self_check_model",
    "update_baseline",
    "verify_codegen",
    "write_baseline",
]
