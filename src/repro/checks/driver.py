"""Unified driver for the static-analysis subsystem (`repro-t3 check`).

Runs the analyzers, applies the baseline, and renders findings. Each
analyzer owns a rule-id prefix; ``<prefix>000`` is reserved for "the
analyzer itself could not run", so a crashed check fails the build —
with exit code 3, distinct from exit code 1 for ordinary findings, so
CI can tell "the code has problems" from "the checker has problems".
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CheckError, CompilationError
from ..treecomp.codegen import STRATEGIES
from ..trees.boosting import BoostedTreesModel
from ..trees.serialize import loads_model
from .codegen_verify import self_check_model, verify_codegen
from .concurrency import check_lock_discipline
from .determinism import check_determinism
from .ensemble_analyze import analyze_ensemble
from .exceptions import check_exception_contracts
from .feature_schema import check_feature_schema
from .findings import (
    Baseline,
    Finding,
    Severity,
    Suppression,
    render_json,
    render_text,
)
from .hotpath import check_hotpath
from .lint import check_lint
from .plan_invariants import check_plan_invariants
from .resources import check_resource_lifecycles
from .responsiveness import check_responsiveness
from .sarif import render_sarif

__all__ = ["ANALYZERS", "RULES", "CheckOptions", "CheckReport",
           "run_checks", "DEFAULT_BASELINE_NAME", "EXIT_FINDINGS",
           "EXIT_ANALYZER_CRASH"]

DEFAULT_BASELINE_NAME = "checks_baseline.toml"

#: Exit codes of the check driver: clean runs exit 0.
EXIT_FINDINGS = 1
EXIT_ANALYZER_CRASH = 3

#: rule id -> one-line description (the check's contract).
RULES: Dict[str, str] = {
    "CG000": "codegen verifier could not run",
    "DT000": "determinism-taint analyzer could not run",
    "DT001": "wall-clock value reaches a seed-critical sink",
    "DT002": "id() key of a persistent container without pinning the object",
    "DT003": "stdlib random call outside repro.rng",
    "DT004": "OS entropy (urandom/uuid/secrets) reaches a sink",
    "DT005": "builtin hash() value reaches a sink",
    "DT006": "set iteration order reaches a sink",
    "DT007": "process/thread identity reaches a sink",
    "DT008": "os.environ value reaches a sink",
    "DT009": "set.pop() arbitrary element reaches a sink",
    "DT010": "nondeterministic argument forwarded into a sink via a call",
    "CG001": "generated C source cannot be parsed back into a tree",
    "CG002": "tree-function count or numbering mismatch",
    "CG003": "node/leaf structure differs from the trained model",
    "CG004": "feature index mismatch or outside [0, n_features)",
    "CG005": "threshold does not round-trip through repr(float)",
    "CG006": "leaf value does not round-trip through repr(float)",
    "CG007": "base score mismatch",
    "CG008": "predict/predict_batch/n_features export inconsistency",
    "CG009": "parsed code and model disagree on a probe vector",
    "CG010": "bare non-finite float literal in generated C",
    "EA000": "ensemble analyzer could not run",
    "EA001": "dead branch: split threshold outside its reachable interval",
    "EA002": "unreachable leaf (inside a dead subtree)",
    "EA003": "leaf value is NaN or infinite",
    "EA004": "reachable raw prediction decodes to a non-finite time",
    "EA005": "distinct same-feature thresholds within one float32 ulp",
    "EA006": "schema feature no tree ever splits on",
    "EA007": "tree node orphaned or shared between parents",
    "EA008": "split threshold is NaN or infinite",
    "EA009": "base score is NaN or infinite",
    "EA010": "split feature index outside [0, n_features)",
    "EX000": "exception-contract analyzer could not run",
    "EX001": "public boundary function may raise a non-ReproError type",
    "EX002": "except BaseException without re-raise",
    "EX003": "raise inside an except handler without 'from'",
    "EX004": "ServingError subclass with no envelope in error_response",
    "EX005": "broad handler swallows load-control errors",
    "EX006": "raising the bare ReproError/ServingError base class",
    "FS000": "feature-schema detector could not run",
    "FS001": "feature emitted by the extractor but never declared",
    "FS002": "feature declared but never emitted",
    "FS003": "feature index/order drift between layouts",
    "FS004": "persisted model n_features mismatch",
    "FS005": "declared (operator, stage) pair the engine never produces",
    "FS006": "duplicate feature within one stage declaration",
    "HP000": "hot-path cost analyzer could not run",
    "HP001": "per-element ctypes/FFI round-trip on a hot path",
    "HP002": "accumulating whole-array allocation inside a hot loop",
    "HP003": "per-item submission across a process boundary in a hot loop",
    "HP004": "blocking IO/subprocess/sleep while holding a lock on a hot path",
    "HP005": "loop-invariant pure call re-evaluated inside a hot loop",
    "HP006": "loop-invariant label/f-string formatting inside a hot loop",
    "HP007": "exception-as-control-flow per iteration in a hot loop",
    "HP008": "O(n) list membership test inside a hot loop",
    "HP009": "loop-invariant attribute chain re-resolved inside a hot loop",
    "HP010": "known-slow stdlib call (pickle/re.compile/json) on a hot path",
    "LK000": "concurrency checker could not run",
    "LK001": "attribute guarded elsewhere but accessed with no lock held",
    "LK002": "shared mutable attribute never accessed under a lock",
    "LK003": "lock-order inversion between two locks of one class",
    "LK004": "blocking call while holding a lock",
    "LK005": "await while holding a lock",
    "LK006": "lock may still be held when the function exits",
    "LK007": "release of a lock not held on any path",
    "LK008": "re-acquiring a held non-reentrant lock (self-deadlock)",
    "PI000": "plan-invariant verifier could not run",
    "PI001": "operator missing stage declaration or physical class",
    "PI002": "operator declared both binary and materializing",
    "PI003": "operator no pipeline-decomposition branch can handle",
    "PI004": "declared stages disagree with the pipeline decomposer",
    "PI005": "malformed stage tuple (not one of the legal shapes)",
    "PI006": "pipeline-breaker BUILD append without pipeline completion",
    "PI007": "fresh pipeline does not start with a scan stage",
    "PI008": "probe stage declared for an operator that cannot be probed",
    "PI009": "percentage feature emitted without dividing by start",
    "PI010": "expression percentages do not partition the classes",
    "PI011": "cardinality model missing non-negativity/selectivity clamp",
    "PI012": "target-transform bounds not finite or clip missing",
    "PL000": "project lint could not run",
    "PL001": "untyped raise in library code",
    "PL002": "bare except",
    "PL003": "mutable default argument",
    "PL004": "print() in library code",
    "PL005": "unseeded numpy.random outside rng.py",
    "RS000": "resource-lifecycle analyzer could not run",
    "RS001": "manually acquired lock may still be held at exit",
    "RS002": "lock released only on the normal path (exception-unsafe)",
    "RS003": "file handle not released on every path",
    "RS004": "executor/pool not released on every path",
    "RS005": "unguarded set_result/set_exception on a shared future",
    "RS006": "breaker probe slot not repaid by record_* on every path",
    "RS007": "socket not released on every path",
    "RS008": "temporary file/directory not released on every path",
    "RT000": "responsiveness checker could not run",
    "RT001": "queue get() with no timeout (unbounded block)",
    "RT002": "future result() with no timeout (unbounded block)",
    "RT003": "thread join() with no timeout (unbounded block)",
}


@dataclass
class CheckReport:
    """Outcome of one driver run."""

    findings: List[Finding]        # new (unsuppressed) findings
    suppressed: List[Finding]
    analyzers_run: List[str]
    elapsed_seconds: float
    timings: Dict[str, float] = field(default_factory=dict)
    #: baseline entries that matched no finding this run — dead weight
    #: (the source line moved or the issue was fixed); prune them with
    #: ``--update-baseline``.
    stale_suppressions: List[Suppression] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        if any(f.rule.endswith("000") for f in self.findings):
            return EXIT_ANALYZER_CRASH
        return EXIT_FINDINGS if self.findings else 0

    def stale_warnings(self) -> List[str]:
        """Human-readable warning per dead baseline entry."""
        out = []
        for entry in self.stale_suppressions:
            where = entry.path or "<any file>"
            if entry.line is not None:
                where += f":{entry.line}"
            out.append(f"stale baseline suppression {entry.rule} at "
                       f"{where} matches nothing; prune it with "
                       f"--update-baseline")
        return out

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            payload = json.loads(render_json(self.findings, self.suppressed))
            payload["analyzers"] = self.analyzers_run
            payload["elapsed_seconds"] = round(self.elapsed_seconds, 3)
            payload["analyzer_seconds"] = {
                name: round(seconds, 3)
                for name, seconds in self.timings.items()}
            payload["stale_suppressions"] = [
                {"rule": s.rule, "path": s.path, "line": s.line,
                 "reason": s.reason}
                for s in self.stale_suppressions]
            payload["exit_code"] = self.exit_code
            return json.dumps(payload, indent=2)
        if fmt == "sarif":
            return render_sarif(self.findings, self.suppressed, RULES)
        if fmt == "text":
            lines = [render_text(self.findings, self.suppressed)]
            lines.extend(self.stale_warnings())
            return "\n".join(lines)
        raise CheckError(
            f"unknown output format {fmt!r} (use text, json, or sarif)")


def _load_model_document(model_path: Union[str, Path]
                         ) -> Tuple[BoostedTreesModel, Optional[List[str]]]:
    """Accept either a T3Model JSON or a bare tree-model document."""
    path = Path(model_path)
    if not path.exists():
        raise CheckError(f"model file not found: {path}")
    text = path.read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckError(f"model file {path} is not JSON: {exc}") from exc
    if isinstance(payload, dict) and "model" in payload:
        names = payload.get("feature_names")
        return (loads_model(json.dumps(payload["model"])),
                list(names) if isinstance(names, list) else None)
    return loads_model(text), None


def _load_booster(model_path: Union[str, Path]) -> BoostedTreesModel:
    return _load_model_document(model_path)[0]


@dataclass(frozen=True)
class CheckOptions:
    """Knobs shared by all analyzer runners."""

    model_path: Optional[str] = None
    #: EA006 (never-split schema features) is opt-in: a small but
    #: legitimate model leaves most of the schema unsplit, and flooding
    #: every ``--model`` run with warnings would teach users to ignore
    #: the analyzer.
    check_unused_features: bool = False


def _run_codegen(opts: CheckOptions) -> List[Finding]:
    """Verify generated C for every registered codegen strategy.

    A strategy that refuses to generate for this model (e.g. the
    ``flat_array_f32`` near-tie guard) is skipped — the refusal is the
    guard working, not an equivalence failure, and the underlying
    condition is already surfaced as an EA005 warning.
    """
    if opts.model_path is not None:
        booster = _load_booster(opts.model_path)
        label = Path(opts.model_path).name
    else:
        booster = self_check_model()
        label = "<self-check model>"
    findings: List[Finding] = []
    for name, strategy in STRATEGIES.items():
        try:
            source = strategy.generate(booster)
        except CompilationError:
            continue
        findings.extend(verify_codegen(
            booster, source=source,
            path=f"<generated C ({name}) for {label}>", strategy=strategy))
    return findings


def _run_ensemble(opts: CheckOptions) -> List[Finding]:
    if opts.model_path is not None:
        booster, names = _load_model_document(opts.model_path)
        return analyze_ensemble(
            booster, path=Path(opts.model_path).name, feature_names=names,
            check_unused_features=opts.check_unused_features)
    return analyze_ensemble(self_check_model(), path="<self-check model>")


#: analyzer name -> (rule-id prefix, runner taking the shared options).
ANALYZERS: Dict[str, Tuple[str, Callable[[CheckOptions], List[Finding]]]] = {
    "codegen": ("CG", _run_codegen),
    "feature-schema": ("FS", lambda opts: check_feature_schema(
        model_path=opts.model_path)),
    "plan-invariants": ("PI", lambda opts: check_plan_invariants()),
    "ensemble": ("EA", _run_ensemble),
    "concurrency": ("LK", lambda opts: check_lock_discipline()),
    "lint": ("PL", lambda opts: check_lint()),
    "responsiveness": ("RT", lambda opts: check_responsiveness()),
    "determinism": ("DT", lambda opts: check_determinism()),
    "exceptions": ("EX", lambda opts: check_exception_contracts()),
    "resources": ("RS", lambda opts: check_resource_lifecycles()),
    "hotpath": ("HP", lambda opts: check_hotpath()),
}

#: analyzers whose first step is building the shared call graph; a
#: parallel run warms the graph cache once before dispatching them.
_INTERPROCEDURAL = frozenset({"determinism", "exceptions", "resources",
                              "hotpath"})


def _selected_analyzers(rules: Optional[Sequence[str]],
                        only: Optional[Sequence[str]] = None
                        ) -> Dict[str, bool]:
    """Which analyzers a ``--rule``/``--only`` selection touches.

    ``only`` selects whole analyzers by name (``determinism``) or rule
    prefix (``DT``); ``rules`` narrows to individual rule ids.  Both
    empty means everything.
    """
    prefix_to_name = {prefix: name
                      for name, (prefix, _) in ANALYZERS.items()}
    selected = {name: True for name in ANALYZERS}
    if only:
        chosen = set()
        for token in only:
            if token in ANALYZERS:
                chosen.add(token)
            elif token.upper() in prefix_to_name:
                chosen.add(prefix_to_name[token.upper()])
            else:
                raise CheckError(
                    f"unknown analyzer {token!r}; known analyzers: "
                    f"{', '.join(sorted(ANALYZERS))} "
                    f"(or prefixes {', '.join(sorted(prefix_to_name))})")
        selected = {name: name in chosen for name in ANALYZERS}
    if rules:
        prefixes = {rule[:2].upper() for rule in rules}
        unknown = [rule for rule in rules
                   if rule.upper() not in RULES
                   and rule[:2].upper() not in prefix_to_name]
        if unknown:
            raise CheckError(
                f"unknown rule(s) {', '.join(sorted(unknown))}; "
                f"known rules: {', '.join(sorted(RULES))}")
        selected = {name: selected[name] and prefix in prefixes
                    for name, (prefix, _) in ANALYZERS.items()}
    return selected


def _run_one(name: str, prefix: str,
             runner: Callable[[CheckOptions], List[Finding]],
             opts: CheckOptions) -> Tuple[List[Finding], float]:
    """Run one analyzer, converting any crash into a ``<prefix>000``.

    A broken analyzer must not take down the run: the other analyzers'
    findings (and SARIF output) still matter, and the crash itself is
    reported as a finding so the driver exits with
    :data:`EXIT_ANALYZER_CRASH` instead of pretending the code is clean.
    """
    analyzer_started = time.perf_counter()
    try:
        produced = runner(opts)
    except CheckError as exc:
        produced = [Finding(f"{prefix}000", Severity.ERROR,
                            "<driver>", 0, str(exc))]
    except Exception as exc:  # analyzer bug — report, do not crash the run
        produced = [Finding(
            f"{prefix}000", Severity.ERROR, "<driver>", 0,
            f"analyzer {name!r} crashed: {type(exc).__name__}: {exc}")]
    return produced, time.perf_counter() - analyzer_started


def run_checks(rules: Optional[Sequence[str]] = None,
               baseline: Optional[Union[str, Path, Baseline]] = None,
               model_path: Optional[str] = None,
               check_unused_features: bool = False,
               only: Optional[Sequence[str]] = None,
               jobs: int = 1) -> CheckReport:
    """Run the selected analyzers and apply the baseline.

    ``rules`` filters by full id (``LK001``) or analyzer prefix
    (``LK``); ``only`` selects whole analyzers by name or prefix; empty
    means everything. ``baseline`` may be a path or a loaded
    :class:`Baseline`. ``model_path`` feeds the codegen verifier, the
    ensemble analyzer, and the schema drift detector a persisted model
    to cross-check; ``check_unused_features`` additionally turns on
    EA006 for that model. ``jobs`` > 1 runs analyzers concurrently in
    threads; findings are still reported in the fixed analyzer order,
    so output is deterministic regardless of scheduling.
    """
    started = time.perf_counter()
    selected = _selected_analyzers(rules, only)
    wanted = {rule.upper() for rule in rules} if rules else None
    opts = CheckOptions(model_path=model_path,
                        check_unused_features=check_unused_features)
    if jobs < 1:
        raise CheckError(f"jobs must be >= 1, got {jobs}")

    to_run = [(name, prefix, runner)
              for name, (prefix, runner) in ANALYZERS.items()
              if selected[name]]
    analyzers_run = [name for name, _, _ in to_run]
    findings: List[Finding] = []
    timings: Dict[str, float] = {}
    if jobs > 1 and len(to_run) > 1:
        if any(name in _INTERPROCEDURAL for name, _, _ in to_run):
            # Warm the shared call-graph cache serially: otherwise the
            # three interprocedural analyzers would each build it.
            from .callgraph import build_call_graph
            build_call_graph()
        from concurrent.futures import ThreadPoolExecutor
        with ThreadPoolExecutor(max_workers=min(jobs, len(to_run)),
                                thread_name_prefix="repro-check") as pool:
            futures = [pool.submit(_run_one, name, prefix, runner, opts)
                       for name, prefix, runner in to_run]
            for (name, _, _), future in zip(to_run, futures):
                produced, seconds = future.result()
                timings[name] = seconds
                findings.extend(produced)
    else:
        for name, prefix, runner in to_run:
            produced, seconds = _run_one(name, prefix, runner, opts)
            timings[name] = seconds
            findings.extend(produced)

    if wanted is not None:
        # Crash findings always survive the filter: a --rule run whose
        # analyzer died must not exit 0.
        findings = [f for f in findings
                    if f.rule in wanted or f.rule[:2] in wanted
                    or f.rule.endswith("000")]

    if baseline is None:
        loaded = Baseline()
    elif isinstance(baseline, Baseline):
        loaded = baseline
    else:
        loaded = Baseline.load(baseline)
    new, suppressed, stale = loaded.partition(findings)
    if rules or only:
        # A filtered run never saw most findings, so absence of a match
        # proves nothing — stale detection needs the full suite.
        stale = []
    return CheckReport(findings=new, suppressed=suppressed,
                       analyzers_run=analyzers_run,
                       elapsed_seconds=time.perf_counter() - started,
                       timings=timings,
                       stale_suppressions=stale)
