"""Unified driver for the static-analysis subsystem (`repro-t3 check`).

Runs the four analyzers, applies the baseline, and renders findings.
Each analyzer owns a rule-id prefix; ``<prefix>000`` is reserved for
"the analyzer itself could not run", so a crashed check fails the build
instead of passing silently.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CheckError
from ..trees.boosting import BoostedTreesModel
from ..trees.serialize import loads_model
from .codegen_verify import self_check_model, verify_codegen
from .feature_schema import check_feature_schema
from .findings import (
    Baseline,
    Finding,
    Severity,
    render_json,
    render_text,
)
from .lint import check_lint
from .lockcheck import check_lock_discipline

__all__ = ["ANALYZERS", "RULES", "CheckReport", "run_checks",
           "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "checks_baseline.toml"

#: rule id -> one-line description (the check's contract).
RULES: Dict[str, str] = {
    "CG000": "codegen verifier could not run",
    "CG001": "generated C source cannot be parsed back into a tree",
    "CG002": "tree-function count or numbering mismatch",
    "CG003": "node/leaf structure differs from the trained model",
    "CG004": "feature index mismatch or outside [0, n_features)",
    "CG005": "threshold does not round-trip through repr(float)",
    "CG006": "leaf value does not round-trip through repr(float)",
    "CG007": "base score mismatch",
    "CG008": "predict/predict_batch/n_features export inconsistency",
    "CG009": "parsed code and model disagree on a probe vector",
    "CG010": "bare non-finite float literal in generated C",
    "FS000": "feature-schema detector could not run",
    "FS001": "feature emitted by the extractor but never declared",
    "FS002": "feature declared but never emitted",
    "FS003": "feature index/order drift between layouts",
    "FS004": "persisted model n_features mismatch",
    "FS005": "declared (operator, stage) pair the engine never produces",
    "FS006": "duplicate feature within one stage declaration",
    "LK000": "lock-discipline checker could not run",
    "LK001": "attribute guarded elsewhere but accessed without the lock",
    "LK002": "shared mutable attribute never accessed under a lock",
    "PL000": "project lint could not run",
    "PL001": "untyped raise in library code",
    "PL002": "bare except",
    "PL003": "mutable default argument",
    "PL004": "print() in library code",
    "PL005": "unseeded numpy.random outside rng.py",
}


@dataclass
class CheckReport:
    """Outcome of one driver run."""

    findings: List[Finding]        # new (unsuppressed) findings
    suppressed: List[Finding]
    analyzers_run: List[str]
    elapsed_seconds: float

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            payload = json.loads(render_json(self.findings, self.suppressed))
            payload["analyzers"] = self.analyzers_run
            payload["elapsed_seconds"] = round(self.elapsed_seconds, 3)
            return json.dumps(payload, indent=2)
        if fmt == "text":
            return render_text(self.findings, self.suppressed)
        raise CheckError(f"unknown output format {fmt!r} (use text or json)")


def _load_booster(model_path: Union[str, Path]) -> BoostedTreesModel:
    """Accept either a T3Model JSON or a bare tree-model document."""
    path = Path(model_path)
    if not path.exists():
        raise CheckError(f"model file not found: {path}")
    text = path.read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckError(f"model file {path} is not JSON: {exc}") from exc
    if isinstance(payload, dict) and "model" in payload:
        return loads_model(json.dumps(payload["model"]))
    return loads_model(text)


def _run_codegen(model_path: Optional[str]) -> List[Finding]:
    if model_path is not None:
        booster = _load_booster(model_path)
        label = Path(model_path).name
    else:
        booster = self_check_model()
        label = "<self-check model>"
    return verify_codegen(booster, path=f"<generated C for {label}>")


#: analyzer name -> (rule-id prefix, runner taking the model path).
ANALYZERS: Dict[str, Tuple[str, Callable[[Optional[str]], List[Finding]]]] = {
    "codegen": ("CG", _run_codegen),
    "feature-schema": ("FS",
                       lambda model: check_feature_schema(model_path=model)),
    "lockcheck": ("LK", lambda model: check_lock_discipline()),
    "lint": ("PL", lambda model: check_lint()),
}


def _selected_analyzers(rules: Optional[Sequence[str]]) -> Dict[str, bool]:
    """Which analyzers a ``--rule`` selection touches (all when empty)."""
    if not rules:
        return {name: True for name in ANALYZERS}
    prefixes = {rule[:2].upper() for rule in rules}
    unknown = [rule for rule in rules
               if rule.upper() not in RULES
               and rule[:2].upper() not in {p for p, _ in ANALYZERS.values()}]
    if unknown:
        raise CheckError(
            f"unknown rule(s) {', '.join(sorted(unknown))}; "
            f"known rules: {', '.join(sorted(RULES))}")
    return {name: prefix in prefixes
            for name, (prefix, _) in ANALYZERS.items()}


def run_checks(rules: Optional[Sequence[str]] = None,
               baseline: Optional[Union[str, Path, Baseline]] = None,
               model_path: Optional[str] = None) -> CheckReport:
    """Run the selected analyzers and apply the baseline.

    ``rules`` filters by full id (``LK001``) or analyzer prefix
    (``LK``); empty means everything. ``baseline`` may be a path or a
    loaded :class:`Baseline`. ``model_path`` feeds the codegen verifier
    and the schema drift detector a persisted model to cross-check.
    """
    started = time.perf_counter()
    selected = _selected_analyzers(rules)
    wanted = {rule.upper() for rule in rules} if rules else None

    findings: List[Finding] = []
    analyzers_run: List[str] = []
    for name, (prefix, runner) in ANALYZERS.items():
        if not selected[name]:
            continue
        analyzers_run.append(name)
        try:
            produced = runner(model_path)
        except CheckError as exc:
            produced = [Finding(f"{prefix}000", Severity.ERROR,
                                "<driver>", 0, str(exc))]
        findings.extend(produced)

    if wanted is not None:
        findings = [f for f in findings
                    if f.rule in wanted or f.rule[:2] in wanted]

    if baseline is None:
        loaded = Baseline()
    elif isinstance(baseline, Baseline):
        loaded = baseline
    else:
        loaded = Baseline.load(baseline)
    new, suppressed = loaded.split(findings)
    return CheckReport(findings=new, suppressed=suppressed,
                       analyzers_run=analyzers_run,
                       elapsed_seconds=time.perf_counter() - started)
