"""Unified driver for the static-analysis subsystem (`repro-t3 check`).

Runs the analyzers, applies the baseline, and renders findings. Each
analyzer owns a rule-id prefix; ``<prefix>000`` is reserved for "the
analyzer itself could not run", so a crashed check fails the build —
with exit code 3, distinct from exit code 1 for ordinary findings, so
CI can tell "the code has problems" from "the checker has problems".
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CheckError
from ..trees.boosting import BoostedTreesModel
from ..trees.serialize import loads_model
from .codegen_verify import self_check_model, verify_codegen
from .concurrency import check_lock_discipline
from .ensemble_analyze import analyze_ensemble
from .feature_schema import check_feature_schema
from .findings import (
    Baseline,
    Finding,
    Severity,
    render_json,
    render_text,
)
from .lint import check_lint
from .plan_invariants import check_plan_invariants
from .responsiveness import check_responsiveness
from .sarif import render_sarif

__all__ = ["ANALYZERS", "RULES", "CheckOptions", "CheckReport",
           "run_checks", "DEFAULT_BASELINE_NAME", "EXIT_FINDINGS",
           "EXIT_ANALYZER_CRASH"]

DEFAULT_BASELINE_NAME = "checks_baseline.toml"

#: Exit codes of the check driver: clean runs exit 0.
EXIT_FINDINGS = 1
EXIT_ANALYZER_CRASH = 3

#: rule id -> one-line description (the check's contract).
RULES: Dict[str, str] = {
    "CG000": "codegen verifier could not run",
    "CG001": "generated C source cannot be parsed back into a tree",
    "CG002": "tree-function count or numbering mismatch",
    "CG003": "node/leaf structure differs from the trained model",
    "CG004": "feature index mismatch or outside [0, n_features)",
    "CG005": "threshold does not round-trip through repr(float)",
    "CG006": "leaf value does not round-trip through repr(float)",
    "CG007": "base score mismatch",
    "CG008": "predict/predict_batch/n_features export inconsistency",
    "CG009": "parsed code and model disagree on a probe vector",
    "CG010": "bare non-finite float literal in generated C",
    "EA000": "ensemble analyzer could not run",
    "EA001": "dead branch: split threshold outside its reachable interval",
    "EA002": "unreachable leaf (inside a dead subtree)",
    "EA003": "leaf value is NaN or infinite",
    "EA004": "reachable raw prediction decodes to a non-finite time",
    "EA005": "distinct same-feature thresholds within one float32 ulp",
    "EA006": "schema feature no tree ever splits on",
    "EA007": "tree node orphaned or shared between parents",
    "EA008": "split threshold is NaN or infinite",
    "EA009": "base score is NaN or infinite",
    "EA010": "split feature index outside [0, n_features)",
    "FS000": "feature-schema detector could not run",
    "FS001": "feature emitted by the extractor but never declared",
    "FS002": "feature declared but never emitted",
    "FS003": "feature index/order drift between layouts",
    "FS004": "persisted model n_features mismatch",
    "FS005": "declared (operator, stage) pair the engine never produces",
    "FS006": "duplicate feature within one stage declaration",
    "LK000": "concurrency checker could not run",
    "LK001": "attribute guarded elsewhere but accessed with no lock held",
    "LK002": "shared mutable attribute never accessed under a lock",
    "LK003": "lock-order inversion between two locks of one class",
    "LK004": "blocking call while holding a lock",
    "LK005": "await while holding a lock",
    "LK006": "lock may still be held when the function exits",
    "LK007": "release of a lock not held on any path",
    "LK008": "re-acquiring a held non-reentrant lock (self-deadlock)",
    "PI000": "plan-invariant verifier could not run",
    "PI001": "operator missing stage declaration or physical class",
    "PI002": "operator declared both binary and materializing",
    "PI003": "operator no pipeline-decomposition branch can handle",
    "PI004": "declared stages disagree with the pipeline decomposer",
    "PI005": "malformed stage tuple (not one of the legal shapes)",
    "PI006": "pipeline-breaker BUILD append without pipeline completion",
    "PI007": "fresh pipeline does not start with a scan stage",
    "PI008": "probe stage declared for an operator that cannot be probed",
    "PI009": "percentage feature emitted without dividing by start",
    "PI010": "expression percentages do not partition the classes",
    "PI011": "cardinality model missing non-negativity/selectivity clamp",
    "PI012": "target-transform bounds not finite or clip missing",
    "PL000": "project lint could not run",
    "PL001": "untyped raise in library code",
    "PL002": "bare except",
    "PL003": "mutable default argument",
    "PL004": "print() in library code",
    "PL005": "unseeded numpy.random outside rng.py",
    "RT000": "responsiveness checker could not run",
    "RT001": "queue get() with no timeout (unbounded block)",
    "RT002": "future result() with no timeout (unbounded block)",
    "RT003": "thread join() with no timeout (unbounded block)",
}


@dataclass
class CheckReport:
    """Outcome of one driver run."""

    findings: List[Finding]        # new (unsuppressed) findings
    suppressed: List[Finding]
    analyzers_run: List[str]
    elapsed_seconds: float
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        if any(f.rule.endswith("000") for f in self.findings):
            return EXIT_ANALYZER_CRASH
        return EXIT_FINDINGS if self.findings else 0

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            payload = json.loads(render_json(self.findings, self.suppressed))
            payload["analyzers"] = self.analyzers_run
            payload["elapsed_seconds"] = round(self.elapsed_seconds, 3)
            payload["analyzer_seconds"] = {
                name: round(seconds, 3)
                for name, seconds in self.timings.items()}
            payload["exit_code"] = self.exit_code
            return json.dumps(payload, indent=2)
        if fmt == "sarif":
            return render_sarif(self.findings, self.suppressed, RULES)
        if fmt == "text":
            return render_text(self.findings, self.suppressed)
        raise CheckError(
            f"unknown output format {fmt!r} (use text, json, or sarif)")


def _load_model_document(model_path: Union[str, Path]
                         ) -> Tuple[BoostedTreesModel, Optional[List[str]]]:
    """Accept either a T3Model JSON or a bare tree-model document."""
    path = Path(model_path)
    if not path.exists():
        raise CheckError(f"model file not found: {path}")
    text = path.read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckError(f"model file {path} is not JSON: {exc}") from exc
    if isinstance(payload, dict) and "model" in payload:
        names = payload.get("feature_names")
        return (loads_model(json.dumps(payload["model"])),
                list(names) if isinstance(names, list) else None)
    return loads_model(text), None


def _load_booster(model_path: Union[str, Path]) -> BoostedTreesModel:
    return _load_model_document(model_path)[0]


@dataclass(frozen=True)
class CheckOptions:
    """Knobs shared by all analyzer runners."""

    model_path: Optional[str] = None
    #: EA006 (never-split schema features) is opt-in: a small but
    #: legitimate model leaves most of the schema unsplit, and flooding
    #: every ``--model`` run with warnings would teach users to ignore
    #: the analyzer.
    check_unused_features: bool = False


def _run_codegen(opts: CheckOptions) -> List[Finding]:
    if opts.model_path is not None:
        booster = _load_booster(opts.model_path)
        label = Path(opts.model_path).name
    else:
        booster = self_check_model()
        label = "<self-check model>"
    return verify_codegen(booster, path=f"<generated C for {label}>")


def _run_ensemble(opts: CheckOptions) -> List[Finding]:
    if opts.model_path is not None:
        booster, names = _load_model_document(opts.model_path)
        return analyze_ensemble(
            booster, path=Path(opts.model_path).name, feature_names=names,
            check_unused_features=opts.check_unused_features)
    return analyze_ensemble(self_check_model(), path="<self-check model>")


#: analyzer name -> (rule-id prefix, runner taking the shared options).
ANALYZERS: Dict[str, Tuple[str, Callable[[CheckOptions], List[Finding]]]] = {
    "codegen": ("CG", _run_codegen),
    "feature-schema": ("FS", lambda opts: check_feature_schema(
        model_path=opts.model_path)),
    "plan-invariants": ("PI", lambda opts: check_plan_invariants()),
    "ensemble": ("EA", _run_ensemble),
    "concurrency": ("LK", lambda opts: check_lock_discipline()),
    "lint": ("PL", lambda opts: check_lint()),
    "responsiveness": ("RT", lambda opts: check_responsiveness()),
}


def _selected_analyzers(rules: Optional[Sequence[str]]) -> Dict[str, bool]:
    """Which analyzers a ``--rule`` selection touches (all when empty)."""
    if not rules:
        return {name: True for name in ANALYZERS}
    prefixes = {rule[:2].upper() for rule in rules}
    unknown = [rule for rule in rules
               if rule.upper() not in RULES
               and rule[:2].upper() not in {p for p, _ in ANALYZERS.values()}]
    if unknown:
        raise CheckError(
            f"unknown rule(s) {', '.join(sorted(unknown))}; "
            f"known rules: {', '.join(sorted(RULES))}")
    return {name: prefix in prefixes
            for name, (prefix, _) in ANALYZERS.items()}


def run_checks(rules: Optional[Sequence[str]] = None,
               baseline: Optional[Union[str, Path, Baseline]] = None,
               model_path: Optional[str] = None,
               check_unused_features: bool = False) -> CheckReport:
    """Run the selected analyzers and apply the baseline.

    ``rules`` filters by full id (``LK001``) or analyzer prefix
    (``LK``); empty means everything. ``baseline`` may be a path or a
    loaded :class:`Baseline`. ``model_path`` feeds the codegen verifier,
    the ensemble analyzer, and the schema drift detector a persisted
    model to cross-check; ``check_unused_features`` additionally turns
    on EA006 for that model.
    """
    started = time.perf_counter()
    selected = _selected_analyzers(rules)
    wanted = {rule.upper() for rule in rules} if rules else None
    opts = CheckOptions(model_path=model_path,
                        check_unused_features=check_unused_features)

    findings: List[Finding] = []
    analyzers_run: List[str] = []
    timings: Dict[str, float] = {}
    for name, (prefix, runner) in ANALYZERS.items():
        if not selected[name]:
            continue
        analyzers_run.append(name)
        analyzer_started = time.perf_counter()
        try:
            produced = runner(opts)
        except CheckError as exc:
            produced = [Finding(f"{prefix}000", Severity.ERROR,
                                "<driver>", 0, str(exc))]
        timings[name] = time.perf_counter() - analyzer_started
        findings.extend(produced)

    if wanted is not None:
        findings = [f for f in findings
                    if f.rule in wanted or f.rule[:2] in wanted]

    if baseline is None:
        loaded = Baseline()
    elif isinstance(baseline, Baseline):
        loaded = baseline
    else:
        loaded = Baseline.load(baseline)
    new, suppressed = loaded.split(findings)
    return CheckReport(findings=new, suppressed=suppressed,
                       analyzers_run=analyzers_run,
                       elapsed_seconds=time.perf_counter() - started,
                       timings=timings)
