"""Pipeline-decomposition and featurization invariant verifier (PI rules).

T3's accuracy story rests on structural invariants the engine never
proves at runtime: every operator lands in exactly one decomposition
category, pipeline breakers terminate their pipeline, fresh pipelines
start with a scan, cardinalities stay non-negative and monotone through
filters, percentage features are always normalized by the pipeline's
starting cardinality, and the ``-log(t)`` target transform stays
finite. This analyzer proves them per (operator, stage) pair — partly
against the *live* stage tables (so a new operator cannot be declared
inconsistently) and partly against the *AST* of the decomposer,
featurizer, cardinality model, and target transform (so the proofs
survive refactors that keep runtime behaviour accidentally correct).

Rules
-----
PI001  operator missing a stage declaration or physical implementation
PI002  operator declared both binary and materializing (ambiguous)
PI003  operator no pipeline-decomposition branch can handle
PI004  declared stages disagree with what the decomposer emits
PI005  malformed stage tuple (not one of the four legal shapes)
PI006  pipeline-breaker BUILD append not followed by pipeline completion
PI007  fresh pipeline returned by the decomposer does not start with SCAN
PI008  PROBE declared for an operator ``compute_stage_flows`` rejects
PI009  percentage feature emitted without dividing by the pipeline start
PI010  expression-percentage emit does not partition the expression classes
PI011  cardinality model missing a non-negativity/selectivity clamp
PI012  target-transform bounds not finite or the clip is missing
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..engine.stages import Stage
from .astutils import (
    PACKAGE_ROOT,
    dotted_name,
    enum_member,
    find_class_function,
    find_function,
    load_module_ast,
    module_assignment,
    repo_relative,
)
from .findings import Finding, Severity

__all__ = [
    "OperatorInfo",
    "check_plan_invariants",
    "verify_cardinality_ast",
    "verify_decomposer_ast",
    "verify_featurization_ast",
    "verify_stage_tables",
    "verify_target_transform",
]

_STAGES_PATH = PACKAGE_ROOT / "engine" / "stages.py"
_PIPELINES_PATH = PACKAGE_ROOT / "engine" / "pipelines.py"
_CARDINALITY_PATH = PACKAGE_ROOT / "engine" / "cardinality.py"
_FEATURES_PATH = PACKAGE_ROOT / "core" / "features.py"
_TARGETS_PATH = PACKAGE_ROOT / "core" / "targets.py"

#: The four stage shapes the decomposer can produce.
_LEGAL_SHAPES = {
    (Stage.SCAN,),
    (Stage.PASS_THROUGH,),
    (Stage.BUILD, Stage.PROBE),
    (Stage.BUILD, Stage.SCAN),
}


@dataclass(frozen=True)
class OperatorInfo:
    """Everything the table checks need to know about one operator."""

    name: str                                # OperatorType.value
    stages: Optional[Tuple[Stage, ...]]      # None: no OPERATOR_STAGES entry
    arity: Optional[int]                     # None: no physical class
    probe_capable: bool                      # compute_stage_flows accepts PROBE
    binary: bool                             # in BINARY_OPERATORS
    materializing: bool                      # in MATERIALIZING_OPERATORS


# -- PI001..PI005, PI008: the stage tables -----------------------------------

def _decomposer_shape(info: OperatorInfo) -> Optional[Tuple[Stage, ...]]:
    """Stage tuple the decomposer emits for this operator, or ``None``."""
    if info.name == "TableScan":
        return (Stage.SCAN,)
    if info.name == "Union":
        return (Stage.BUILD, Stage.SCAN)
    if info.binary:
        return (Stage.BUILD, Stage.PROBE)
    if info.materializing:
        return (Stage.BUILD, Stage.SCAN)
    if info.name == "IndexNLJoin" or info.arity == 1:
        return (Stage.PASS_THROUGH,)
    return None


def verify_stage_tables(operators: Sequence[OperatorInfo],
                        path: str = "src/repro/engine/stages.py",
                        line: int = 0) -> List[Finding]:
    """PI001..PI005 and PI008 over the (live) operator/stage tables."""
    findings: List[Finding] = []
    for info in operators:
        if info.stages is None or info.arity is None:
            missing = ("OPERATOR_STAGES entry" if info.stages is None
                       else "physical operator class")
            findings.append(Finding(
                "PI001", Severity.ERROR, path, line,
                f"{info.name}: no {missing}; featurization is not total "
                f"over OperatorType"))
            continue
        if info.binary and info.materializing:
            findings.append(Finding(
                "PI002", Severity.ERROR, path, line,
                f"{info.name} is in both BINARY_OPERATORS and "
                f"MATERIALIZING_OPERATORS; decomposition would not be "
                f"disjoint"))
        shape = _decomposer_shape(info)
        if shape is None:
            findings.append(Finding(
                "PI003", Severity.ERROR, path, line,
                f"{info.name} (arity {info.arity}) matches no pipeline-"
                f"decomposition branch; decompose_into_pipelines would "
                f"raise on any plan containing it"))
        if tuple(info.stages) not in _LEGAL_SHAPES:
            declared = ", ".join(s.value for s in info.stages) or "<empty>"
            findings.append(Finding(
                "PI005", Severity.ERROR, path, line,
                f"{info.name}: stage tuple ({declared}) is not one of the "
                f"four legal shapes (Scan | PassThrough | Build,Probe | "
                f"Build,Scan)"))
        elif shape is not None and tuple(info.stages) != shape:
            declared = ", ".join(s.value for s in info.stages)
            derived = ", ".join(s.value for s in shape)
            findings.append(Finding(
                "PI004", Severity.ERROR, path, line,
                f"{info.name}: OPERATOR_STAGES declares ({declared}) but "
                f"the decomposer emits ({derived}); features would attach "
                f"to stages that never execute"))
        if (info.stages and Stage.PROBE in info.stages
                and not info.probe_capable):
            findings.append(Finding(
                "PI008", Severity.ERROR, path, line,
                f"{info.name} declares a Probe stage but its physical "
                f"class has no build_child; compute_stage_flows raises "
                f"PlanError on every plan using it"))
    return findings


def _collect_operator_infos() -> List[OperatorInfo]:
    from ..engine import physical, stages

    classes: Dict[stages.OperatorType, type] = {}
    for obj in vars(physical).values():
        if (isinstance(obj, type)
                and issubclass(obj, physical.PhysicalOperator)
                and isinstance(getattr(obj, "op_type", None),
                               stages.OperatorType)):
            classes.setdefault(obj.op_type, obj)

    infos: List[OperatorInfo] = []
    for op_type in stages.OperatorType:
        cls = classes.get(op_type)
        declared = stages.OPERATOR_STAGES.get(op_type)
        probe_capable = cls is not None and (
            issubclass(cls, physical._JoinBase)
            or cls is physical.PCrossProduct)
        infos.append(OperatorInfo(
            name=op_type.value,
            stages=tuple(declared) if declared is not None else None,
            arity=cls.arity if cls is not None else None,
            probe_capable=probe_capable,
            binary=op_type in stages.BINARY_OPERATORS,
            materializing=op_type in stages.MATERIALIZING_OPERATORS))
    return infos


# -- PI006/PI007: the decomposer's AST ---------------------------------------

def _stageref_stage(call: ast.expr) -> Optional[str]:
    """``StageRef(op, Stage.X)`` -> ``"X"``."""
    if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)
            and call.func.id == "StageRef" and len(call.args) == 2):
        return None
    member = enum_member(call.args[1])
    if member is not None and member[0] == "Stage":
        return member[1]
    return None


def _append_call(stmt: ast.stmt) -> Optional[ast.Call]:
    if (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "append"):
        return stmt.value
    return None


def _statement_lists(func: ast.AST) -> List[List[ast.stmt]]:
    lists = []
    for node in ast.walk(func):
        for field in ("body", "orelse", "finalbody"):
            stmts = getattr(node, field, None)
            if (isinstance(stmts, list) and stmts
                    and all(isinstance(s, ast.stmt) for s in stmts)):
                lists.append(stmts)
    return lists


def verify_decomposer_ast(path: Union[str, Path] = _PIPELINES_PATH
                          ) -> List[Finding]:
    """PI006/PI007 over ``decompose_into_pipelines``'s inner ``visit``."""
    tree = load_module_ast(path)
    rel = repo_relative(path)
    outer = find_function(tree, "decompose_into_pipelines")
    visit = find_function(outer, "visit")
    findings: List[Finding] = []

    for stmts in _statement_lists(visit):
        for position, stmt in enumerate(stmts):
            call = _append_call(stmt)
            if call is None or not call.args:
                continue
            if _stageref_stage(call.args[0]) != "BUILD":
                continue
            target = call.func.value  # type: ignore[union-attr]
            follower = (stmts[position + 1]
                        if position + 1 < len(stmts) else None)
            follower_call = (_append_call(follower)
                             if follower is not None else None)
            completes = (
                follower_call is not None
                and isinstance(follower_call.func, ast.Attribute)
                and isinstance(follower_call.func.value, ast.Name)
                and follower_call.func.value.id == "completed"
                and len(follower_call.args) == 1
                and ast.dump(follower_call.args[0]) == ast.dump(target))
            if not completes:
                name = (target.id if isinstance(target, ast.Name)
                        else ast.unparse(target))
                findings.append(Finding(
                    "PI006", Severity.ERROR, rel, stmt.lineno,
                    f"BUILD stage appended to {name} is not immediately "
                    f"completed; a pipeline breaker must terminate its "
                    f"pipeline (completed.append({name}) expected next)"))

    for node in ast.walk(visit):
        if not (isinstance(node, ast.Return)
                and isinstance(node.value, ast.List)):
            continue
        elements = node.value.elts
        if not elements:
            findings.append(Finding(
                "PI007", Severity.ERROR, rel, node.lineno,
                "decomposer returns an empty pipeline"))
            continue
        first = _stageref_stage(elements[0])
        if first is not None and first != "SCAN":
            findings.append(Finding(
                "PI007", Severity.ERROR, rel, node.lineno,
                f"fresh pipeline starts with Stage.{first}; every pipeline "
                f"must start with a SCAN source"))
    return findings


# -- PI009/PI010: the featurizer's AST ---------------------------------------

_PERCENTAGE_SUFFIXES = {"in_percentage", "right_percentage",
                        "out_percentage"}


def _divides_by_start(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div)
                and isinstance(sub.right, ast.Name)
                and sub.right.id == "start"):
            return True
    return False


def _suffix_branches(func: ast.AST) -> List[Tuple[str, ast.If]]:
    """(string literal, branch) for each ``suffix == "..."`` arm."""
    branches = []
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if (isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Name)
                and test.left.id == "suffix"
                and len(test.ops) == 1 and isinstance(test.ops[0], ast.Eq)
                and isinstance(test.comparators[0], ast.Constant)
                and isinstance(test.comparators[0].value, str)):
            branches.append((test.comparators[0].value, node))
    return branches


def _declared_expr_suffixes(tree: ast.Module) -> Set[str]:
    """``expr_*`` suffixes declared for (TableScan, Scan)."""
    table = module_assignment(tree, "_STAGE_FEATURES")
    suffixes: Set[str] = set()
    if not isinstance(table, ast.Dict):
        return suffixes
    for key, value in zip(table.keys, table.values):
        if not (isinstance(key, ast.Tuple) and len(key.elts) == 2):
            continue
        members = [enum_member(e) for e in key.elts]
        if (members[0] == ("OperatorType", "TABLE_SCAN")
                and members[1] == ("Stage", "SCAN")
                and isinstance(value, ast.Tuple)):
            for element in value.elts:
                if (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                        and element.value.startswith("expr_")):
                    suffixes.add(element.value)
    return suffixes


def verify_featurization_ast(path: Union[str, Path] = _FEATURES_PATH
                             ) -> List[Finding]:
    """PI009/PI010 over ``FeatureRegistry``'s emit sites."""
    tree = load_module_ast(path)
    rel = repo_relative(path)
    findings: List[Finding] = []

    basic = find_class_function(tree, "FeatureRegistry",
                                "_basic_feature_values")
    for literal, branch in _suffix_branches(basic):
        if literal not in _PERCENTAGE_SUFFIXES:
            continue
        if not all(_divides_by_start(stmt) for stmt in branch.body):
            findings.append(Finding(
                "PI009", Severity.ERROR, rel, branch.lineno,
                f"percentage feature {literal!r} is emitted without "
                f"dividing by the pipeline's starting cardinality; the "
                f"value would not be a fraction of start"))

    expr = find_class_function(tree, "FeatureRegistry",
                               "_expression_percentages")
    if not _divides_by_start(expr):
        findings.append(Finding(
            "PI009", Severity.ERROR, rel, expr.lineno,
            "_expression_percentages never divides by start; expression "
            "percentages would not be normalized to the pipeline"))

    # PI010: class list <-> fractions[...] uses <-> emitted keys must be
    # a bijection, which is what makes the group provably sum to the
    # total evaluated fraction at every emit site.
    classes_node = module_assignment(tree, "_EXPRESSION_CLASSES")
    declared_classes: List[str] = []
    if isinstance(classes_node, (ast.Tuple, ast.List)):
        for element in classes_node.elts:
            member = enum_member(element)
            if member is not None and member[0] == "ExpressionKind":
                declared_classes.append(member[1])

    return_dict: Optional[ast.Dict] = None
    for node in ast.walk(expr):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            return_dict = node.value
    if return_dict is None:
        findings.append(Finding(
            "PI010", Severity.ERROR, rel, expr.lineno,
            "_expression_percentages does not return a literal dict; the "
            "partition of expression classes cannot be verified"))
        return findings

    emitted: Dict[str, List[str]] = {}
    for key, value in zip(return_dict.keys, return_dict.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        used: List[str] = []
        for sub in ast.walk(value):
            if (isinstance(sub, ast.Subscript)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "fractions"):
                member = enum_member(sub.slice)
                if member is not None and member[0] == "ExpressionKind":
                    used.append(member[1])
        emitted[key.value] = used

    line = return_dict.lineno
    used_members = [m for members in emitted.values() for m in members]
    for key, members in emitted.items():
        if len(members) != 1:
            findings.append(Finding(
                "PI010", Severity.ERROR, rel, line,
                f"emitted feature {key!r} draws on {len(members)} "
                f"expression classes; each key must read exactly one "
                f"fractions[...] entry"))
    for member in declared_classes:
        if used_members.count(member) != 1:
            findings.append(Finding(
                "PI010", Severity.ERROR, rel, line,
                f"ExpressionKind.{member} is read {used_members.count(member)} "
                f"times by the emit dict; the emit must partition "
                f"_EXPRESSION_CLASSES exactly (group sums break otherwise)"))

    declared_suffixes = _declared_expr_suffixes(tree)
    if declared_suffixes and declared_suffixes != set(emitted):
        missing = declared_suffixes - set(emitted)
        extra = set(emitted) - declared_suffixes
        detail = "; ".join(filter(None, [
            f"declared but never emitted: {', '.join(sorted(missing))}"
            if missing else "",
            f"emitted but never declared: {', '.join(sorted(extra))}"
            if extra else ""]))
        findings.append(Finding(
            "PI010", Severity.ERROR, rel, line,
            f"expr_* schema and emit keys disagree ({detail})"))
    return findings


# -- PI011: cardinality clamps -----------------------------------------------

def _has_bounded_call(node: ast.AST, fn: str, bound: float) -> bool:
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id == fn
                and any(isinstance(a, ast.Constant) and a.value == bound
                        for a in sub.args)):
            return True
    return False


def _calls_method(node: ast.AST, name: str) -> bool:
    return any(isinstance(sub, ast.Call)
               and isinstance(sub.func, ast.Attribute)
               and sub.func.attr == name
               for sub in ast.walk(node))


def verify_cardinality_ast(path: Union[str, Path] = _CARDINALITY_PATH
                           ) -> List[Finding]:
    """PI011: the clamps that keep cardinalities sane."""
    tree = load_module_ast(path)
    rel = repo_relative(path)
    findings: List[Finding] = []

    sites = [
        ("output_cardinality", "max", 0.0,
         "memoized output cardinality is not clamped to >= 0"),
        ("predicate_selectivity", "min", 1.0,
         "predicate selectivity is not clamped to <= 1"),
        ("predicate_selectivity", "max", 0.0,
         "predicate selectivity is not clamped to >= 0"),
        ("_conjunction_selectivity", "min", 1.0,
         "conjunction selectivity is not clamped to <= 1 (filters would "
         "not be monotone)"),
        ("_conjunction_selectivity", "max", 0.0,
         "conjunction selectivity is not clamped to >= 0"),
    ]
    for method, fn, bound, message in sites:
        func = find_class_function(tree, "CardinalityModel", method)
        if not _has_bounded_call(func, fn, bound):
            findings.append(Finding(
                "PI011", Severity.ERROR, rel, func.lineno,
                f"CardinalityModel.{method}: {message}"))

    compute = find_class_function(tree, "CardinalityModel", "_compute")
    filter_ok = False
    for node in ast.walk(compute):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (isinstance(test, ast.Call)
                and isinstance(test.func, ast.Name)
                and test.func.id == "isinstance"
                and any("PFilter" in ast.dump(a) for a in test.args[1:])):
            continue
        # Monotonicity: the filter branch must multiply the child's
        # cardinality by the (clamped <= 1) conjunction selectivity.
        for sub in ast.walk(node):
            if (isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mult)
                    and (_calls_method(sub, "_conjunction_selectivity"))):
                filter_ok = True
    if not filter_ok:
        findings.append(Finding(
            "PI011", Severity.ERROR, rel, compute.lineno,
            "CardinalityModel._compute: PFilter branch does not multiply "
            "the child cardinality by _conjunction_selectivity; filter "
            "outputs are not provably <= their input"))
    return findings


# -- PI012: target transform -------------------------------------------------

def verify_target_transform(path: Union[str, Path] = _TARGETS_PATH
                            ) -> List[Finding]:
    """PI012: finite, ordered clamp bounds and a clip before the log."""
    tree = load_module_ast(path)
    rel = repo_relative(path)
    findings: List[Finding] = []

    bounds: Dict[str, Optional[float]] = {}
    for name in ("MIN_TUPLE_TIME", "MAX_TUPLE_TIME"):
        node = module_assignment(tree, name)
        try:
            bounds[name] = float(ast.literal_eval(node))  # type: ignore[arg-type]
        except (TypeError, ValueError, SyntaxError):
            bounds[name] = None
            findings.append(Finding(
                "PI012", Severity.ERROR, rel,
                getattr(node, "lineno", 0),
                f"{name} is not a numeric literal; clamp bounds must be "
                f"statically known"))

    low, high = bounds.get("MIN_TUPLE_TIME"), bounds.get("MAX_TUPLE_TIME")
    if low is not None and high is not None:
        problems = []
        if not (low > 0.0 and math.isfinite(low)):
            problems.append(f"MIN_TUPLE_TIME={low!r} must be finite and > 0"
                            f" (otherwise -log(t) diverges)")
        if not (math.isfinite(high) and high > low):
            problems.append(f"MAX_TUPLE_TIME={high!r} must be finite and "
                            f"> MIN_TUPLE_TIME")
        if not problems and not all(
                math.isfinite(-math.log(b)) for b in (low, high)):
            problems.append("transformed bounds are not finite")
        for problem in problems:
            findings.append(Finding("PI012", Severity.ERROR, rel, 0, problem))

    transform = find_function(tree, "transform_target")
    clip_ok = False
    for node in ast.walk(transform):
        if (isinstance(node, ast.Call)
                and dotted_name(node.func) in ("np.clip", "numpy.clip")):
            names = {sub.id for a in node.args
                     for sub in ast.walk(a) if isinstance(sub, ast.Name)}
            if {"MIN_TUPLE_TIME", "MAX_TUPLE_TIME"} <= names:
                clip_ok = True
    if not clip_ok:
        findings.append(Finding(
            "PI012", Severity.ERROR, rel, transform.lineno,
            "transform_target does not clip to [MIN_TUPLE_TIME, "
            "MAX_TUPLE_TIME] before the log; zero inputs would produce "
            "non-finite targets"))
    if not any(isinstance(n, ast.Call)
               and dotted_name(n.func) in ("np.log", "numpy.log")
               for n in ast.walk(transform)):
        findings.append(Finding(
            "PI012", Severity.ERROR, rel, transform.lineno,
            "transform_target does not apply the log transform"))

    inverse = find_function(tree, "inverse_transform")
    if not any(isinstance(n, ast.Call)
               and dotted_name(n.func) in ("np.exp", "numpy.exp")
               for n in ast.walk(inverse)):
        findings.append(Finding(
            "PI012", Severity.ERROR, rel, inverse.lineno,
            "inverse_transform does not invert via exp; round-tripping "
            "predictions would be wrong"))
    return findings


# -- entry point -------------------------------------------------------------

def check_plan_invariants() -> List[Finding]:
    """Run every PI rule against the live tables and real sources."""
    stages_tree = load_module_ast(_STAGES_PATH)
    table_node = module_assignment(stages_tree, "OPERATOR_STAGES")
    table_line = getattr(table_node, "lineno", 0)

    findings = verify_stage_tables(
        _collect_operator_infos(),
        path=repo_relative(_STAGES_PATH), line=table_line)
    findings.extend(verify_decomposer_ast())
    findings.extend(verify_featurization_ast())
    findings.extend(verify_cardinality_ast())
    findings.extend(verify_target_transform())
    return findings
