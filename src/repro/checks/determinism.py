"""DT: determinism-taint analysis (rules DT001-DT010).

T3's replay guarantee — same seed, same inputs, bit-identical outputs —
only holds if no nondeterministic value ever feeds a seed-critical
computation. This analyzer proves that statically: it taints the known
nondeterminism sources (wall clock, ``id()`` addresses, unseeded
``random``, OS entropy, ``hash()``, set iteration order, process
identity, environment variables) and tracks them interprocedurally via
:mod:`repro.checks.interproc` summaries into the seed-critical sinks
(``repro.rng`` seed derivation, ``repro.parallel`` chunk scheduling,
``repro.faults`` arming, ``repro.treecomp`` emission).

Two lexical rules ride along: DT002 also fires on ``id()`` used as the
key of a *persistent* container without pinning the keyed object in
the stored value (the PR 4 ``CardinalityModel`` bug: CPython reuses
addresses after GC, so an unpinned ``id()`` key can alias two distinct
objects across a run), and DT003 fires on any stdlib ``random`` call
outside ``repro.rng`` regardless of where the value flows.

=====  ========================================================
DT001  wall-clock value reaches a seed-critical sink
DT002  id() used as persistent key without pinning / reaches sink
DT003  stdlib random call outside repro.rng
DT004  OS entropy (urandom/uuid4/secrets) reaches a sink
DT005  builtin hash() value reaches a sink
DT006  set iteration order reaches a sink
DT007  process/thread identity reaches a sink
DT008  os.environ value reaches a sink
DT009  set.pop() arbitrary element reaches a sink
DT010  nondeterministic argument forwarded into a sink via a call
=====  ========================================================
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .astutils import dotted_name, self_attr
from .callgraph import CallGraph, FunctionInfo, build_call_graph, \
    iter_own_statements
from .findings import Finding, Severity
from .interproc import SINK_NAMES, SOURCE_KINDS, classify_source, \
    compute_taint_summaries

__all__ = ["check_determinism"]

#: taint kind -> (rule id, severity) for sink-reaching findings.
_KIND_RULES: Dict[str, Tuple[str, Severity]] = {
    "clock": ("DT001", Severity.ERROR),
    "id": ("DT002", Severity.ERROR),
    "random": ("DT003", Severity.ERROR),
    "entropy": ("DT004", Severity.ERROR),
    "hash": ("DT005", Severity.ERROR),
    "set-order": ("DT006", Severity.WARNING),
    "procid": ("DT007", Severity.WARNING),
    "env": ("DT008", Severity.WARNING),
    "set-pop": ("DT009", Severity.WARNING),
}

_ERROR_KINDS = frozenset(k for k, (_, sev) in _KIND_RULES.items()
                         if sev is Severity.ERROR)


def _is_rng_module(module: str) -> bool:
    return module == "rng" or module.endswith(".rng")


def _sink_findings(graph: CallGraph) -> List[Finding]:
    summaries = compute_taint_summaries(graph)
    findings: List[Finding] = []
    for qname, summary in summaries.items():
        info = graph.functions[qname]
        for hit in summary.hits:
            contract = SINK_NAMES[hit.sink]
            if hit.via_call:
                severity = (Severity.ERROR
                            if hit.kinds & _ERROR_KINDS
                            else Severity.WARNING)
                kinds = ", ".join(
                    SOURCE_KINDS.get(k, k) for k in sorted(hit.kinds))
                findings.append(Finding(
                    "DT010", severity, info.rel_path, hit.line,
                    f"nondeterministic value ({kinds}) forwarded "
                    f"through a call into {hit.sink}() "
                    f"({contract})"))
                continue
            for kind in sorted(hit.kinds):
                rule, severity = _KIND_RULES.get(
                    kind, ("DT010", Severity.WARNING))
                findings.append(Finding(
                    rule, severity, info.rel_path, hit.line,
                    f"{SOURCE_KINDS.get(kind, kind)} reaches "
                    f"seed-critical sink {hit.sink}() ({contract})"))
    return findings


def _random_call_findings(graph: CallGraph) -> List[Finding]:
    findings = []
    for module in graph.modules.values():
        if _is_rng_module(module.name):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and \
                    classify_source(node) == "random":
                findings.append(Finding(
                    "DT003", Severity.ERROR, module.rel_path, node.lineno,
                    f"stdlib random call "
                    f"{dotted_name(node.func) or '<random>'}() outside "
                    f"repro.rng; use derive_rng()/make_rng() so the draw "
                    f"is seeded and replayable"))
    return findings


# -- DT002: id() keys of persistent containers ----------------------------


def _names_outside_id_calls(node: ast.AST) -> Set[str]:
    """Names referenced in ``node``, excluding ``id(...)`` arguments."""
    out: Set[str] = set()
    queue: List[ast.AST] = [node]
    while queue:
        current = queue.pop()
        if isinstance(current, ast.Call) and \
                isinstance(current.func, ast.Name) and \
                current.func.id == "id":
            continue
        if isinstance(current, ast.Name):
            out.add(current.id)
        queue.extend(ast.iter_child_nodes(current))
    return out


def _id_arg_names(node: ast.AST) -> Set[str]:
    """Argument names of every ``id(<name>)`` call inside ``node``."""
    out: Set[str] = set()
    for current in ast.walk(node):
        if isinstance(current, ast.Call) and \
                isinstance(current.func, ast.Name) and \
                current.func.id == "id":
            for arg in current.args:
                if isinstance(arg, ast.Name):
                    out.add(arg.id)
    return out


def _contains_id_call(node: ast.AST) -> bool:
    return any(isinstance(c, ast.Call) and isinstance(c.func, ast.Name)
               and c.func.id == "id" for c in ast.walk(node))


def _module_globals(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        targets: Sequence[ast.expr] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _container_label(node: ast.expr) -> str:
    return dotted_name(node) or "<container>"


def _id_key_findings_for(info: FunctionInfo,
                         module_globals: Set[str]) -> List[Finding]:
    #: local var -> names of the objects its id() came from
    id_vars: Dict[str, Set[str]] = {}
    for node in info.own_statements():
        targets: Sequence[ast.expr] = ()
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not _contains_id_call(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                id_vars.setdefault(target.id, set()).update(
                    _id_arg_names(value))

    def is_persistent(container: ast.expr) -> bool:
        if self_attr(container) is not None:
            return True
        return (isinstance(container, ast.Name)
                and container.id in module_globals)

    def key_pin_names(expr: ast.AST) -> Optional[Set[str]]:
        """Object names whose id() feeds ``expr``; None if id-free."""
        if _contains_id_call(expr):
            pins = _id_arg_names(expr)
            for name in _names_outside_id_calls(expr):
                pins |= id_vars.get(name, set())
            return pins
        referenced = _names_outside_id_calls(expr)
        involved = referenced & id_vars.keys()
        if not involved:
            return None
        pins = set()
        for name in involved:
            pins |= id_vars[name]
        return pins

    findings: List[Finding] = []

    def report(line: int, container: ast.expr,
               pins: Set[str]) -> None:
        objects = ", ".join(sorted(pins)) if pins else "an object"
        findings.append(Finding(
            "DT002", Severity.ERROR, info.rel_path, line,
            f"id() of {objects} used as key/member of persistent "
            f"container {_container_label(container)} without pinning "
            f"the object in the stored value; CPython reuses addresses "
            f"after GC, so the key can alias distinct objects"))

    for node in info.own_statements():
        # container[<id-derived key>] = value
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Subscript):
                    continue
                if not is_persistent(target.value):
                    continue
                pins = key_pin_names(target.slice)
                if pins is None:
                    continue
                stored = _names_outside_id_calls(node.value)
                if not (pins & stored):
                    report(node.lineno, target.value, pins)
        # container.add/append(<id-derived value>)
        elif isinstance(node, ast.Expr) and \
                isinstance(node.value, ast.Call) and \
                isinstance(node.value.func, ast.Attribute) and \
                node.value.func.attr in ("add", "append"):
            call = node.value
            func = call.func
            assert isinstance(func, ast.Attribute)
            if not is_persistent(func.value) or not call.args:
                continue
            arg = call.args[0]
            pins = key_pin_names(arg)
            if pins is None:
                continue
            stored = _names_outside_id_calls(arg) - id_vars.keys()
            if not (pins & stored):
                report(node.lineno, func.value, pins)
    return findings


def _id_key_findings(graph: CallGraph) -> List[Finding]:
    findings: List[Finding] = []
    globals_by_module = {
        name: _module_globals(module.tree)
        for name, module in graph.modules.items()}
    for info in graph.functions.values():
        findings.extend(_id_key_findings_for(
            info, globals_by_module.get(info.module, set())))
    return findings


def check_determinism(roots: Optional[Sequence[Union[str, Path]]] = None
                      ) -> List[Finding]:
    """Run DT001-DT010 over ``roots`` (default: the repro package)."""
    graph = build_call_graph(roots)
    findings = (_sink_findings(graph) + _random_call_findings(graph)
                + _id_key_findings(graph))
    unique: List[Finding] = []
    seen: Set[Tuple[str, str, int, str]] = set()
    for finding in findings:
        key = (finding.rule, finding.path, finding.line, finding.message)
        if key not in seen:
            seen.add(key)
            unique.append(finding)
    unique.sort(key=lambda f: (f.path, f.line, f.rule))
    return unique
