"""Static verification of generated tree code (no compile, no execute).

T3's accuracy claim rests on the compiled ensemble being *exactly* the
trained model — one comparison and one branch per internal node
(Section 2.6). A codegen bug would silently skew every downstream
experiment, so this analyzer parses the C translation unit produced by
:func:`repro.treecomp.codegen.generate_c_source` back into a tree
structure and proves structural equivalence against the
:class:`~repro.trees.boosting.BoostedTreesModel`:

* one ``tree_<i>`` function per ensemble member (CG002),
* identical node/leaf counts and branch shape per tree (CG003),
* feature indices equal to the model's and inside ``[0, n_features)``
  (CG004),
* thresholds and leaf values that round-trip exactly through
  ``repr(float)`` (CG005/CG006),
* the exported ``predict`` summing every tree exactly once on top of the
  correct base score (CG007/CG008),
* ``predict_batch`` striding by ``n_features`` and delegating to the
  same ``predict`` symbol, and ``n_features()`` agreeing (CG008),
* the parsed representation predicting bit-identically to the Python
  model on deterministic probe vectors (CG009),
* no bare ``inf``/``nan`` literals that a C compiler would reject
  (CG010).

The C parser is deliberately narrow: it accepts exactly the shape the
generator emits and treats anything else as a parse failure (CG001) —
a verifier that guesses is no verifier at all.

The same rule IDs cover every codegen strategy. For the flat node-array
strategies (``flat_array``, ``flat_array_f32``) the parser recovers the
contiguous node arrays and the batch walker instead of nested branches,
and the comparison walks each tree through the arrays from its root:
CG002 covers array sizing and the walker's tree-loop bound, CG003
topology (leaf/split shape, child indices, orphaned or shared nodes),
CG004/CG005/CG006 per-node payloads, CG007/CG008 the walker's base
score, row stride, and ``n_features()``, and CG009 probes the parsed
arrays against the model — bit-identical for float64 strategies, and
bit-identical to a float32-truncated reference walk for
``flat_array_f32`` (whose generation the EA005 near-tie guard already
restricts to models where truncation is safe).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from ..errors import CheckError
from ..rng import DEFAULT_SEED, derive_rng
from ..trees.boosting import BoostedTreesModel
from ..trees.tree import LEAF, Tree
from ..treecomp.codegen import (
    DEFAULT_STRATEGY,
    CodegenStrategy,
    get_strategy,
)

__all__ = ["ParsedLeaf", "ParsedSplit", "ParsedTree", "ParsedModel",
           "ParsedFlatModel", "parse_c_source", "parse_flat_source",
           "verify_codegen", "self_check_model"]

from .findings import Finding, Severity

_RE_TREE_HEADER = re.compile(
    r"^static double tree_(\d+)\(const double \*f\) \{$")
_RE_IF = re.compile(r"^if \(f\[(\d+)\] <= (.+?)\) \{$")
_RE_RETURN = re.compile(r"^return (.+?);$")
_RE_PREDICT_HEADER = re.compile(
    r"^double (\w+)_predict\(const double \*f\) \{$")
_RE_PREDICT_BODY = re.compile(r"^return (.+?);$")
_RE_BATCH_HEADER = re.compile(
    r"^void (\w+)_predict_batch\(const double \*f, long n_rows, "
    r"double \*out\) \{$")
_RE_BATCH_ASSIGN = re.compile(r"^out\[i\] = (\w+)_predict\(f \+ i \* (\d+)L\);$")
_RE_N_FEATURES_HEADER = re.compile(r"^long (\w+)_n_features\(void\) \{$")
_RE_N_FEATURES_BODY = re.compile(r"^return (\d+)L;$")
_RE_TREE_CALL = re.compile(r"^tree_(\d+)\(f\)$")

#: Bare non-finite tokens ``repr(float)`` would emit but C rejects.
_RE_NONFINITE = re.compile(r"(?<![\w.])(-?inf|nan)(?![\w.])")

# -- flat node-array strategy shapes ----------------------------------------
_RE_FLAT_ARRAY_HEADER = re.compile(
    r"^static const (int|float|double) (\w+)_"
    r"(node_feature|node_threshold|node_left|node_right|node_value|"
    r"tree_root)\[(\d+)\] = \{$")
_RE_FLAT_ROW = re.compile(r"^const double \*row = f \+ i \* (\d+)L;$")
_RE_FLAT_ACC = re.compile(r"^double acc = (.+?);$")
_RE_FLAT_TREE_LOOP = re.compile(r"^for \(long t = 0; t < (\d+)L; t\+\+\) \{$")
_RE_FLAT_ROOT = re.compile(r"^long node = (\w+)_tree_root\[t\];$")
_RE_FLAT_WHILE = re.compile(r"^while \((\w+)_node_feature\[node\] >= 0\) \{$")
_RE_FLAT_STEP = re.compile(
    r"^node = row\[(\w+)_node_feature\[node\]\] <= "
    r"(\w+)_node_threshold\[node\] \? (\w+)_node_left\[node\] : "
    r"(\w+)_node_right\[node\];$")
_RE_FLAT_ACCUM = re.compile(r"^acc \+= (\w+)_node_value\[node\];$")

#: flat array kind -> required element C type(s), in emission order.
_FLAT_ARRAY_KINDS: List[Tuple[str, Tuple[str, ...]]] = [
    ("node_feature", ("int",)),
    ("node_threshold", ("double", "float")),
    ("node_left", ("int",)),
    ("node_right", ("int",)),
    ("node_value", ("double",)),
    ("tree_root", ("int",)),
]


@dataclass(frozen=True)
class ParsedLeaf:
    value: float
    line: int


@dataclass(frozen=True)
class ParsedSplit:
    feature: int
    threshold: float
    line: int
    left: "ParsedNode"
    right: "ParsedNode"


ParsedNode = Union[ParsedLeaf, ParsedSplit]


@dataclass(frozen=True)
class ParsedTree:
    index: int
    root: ParsedNode
    line: int

    def count_nodes(self) -> Tuple[int, int]:
        """(n_nodes, n_leaves) of the parsed tree."""
        nodes = leaves = 0
        stack: List[ParsedNode] = [self.root]
        while stack:
            node = stack.pop()
            nodes += 1
            if isinstance(node, ParsedLeaf):
                leaves += 1
            else:
                stack.append(node.left)
                stack.append(node.right)
        return nodes, leaves

    def evaluate(self, x: np.ndarray) -> float:
        node = self.root
        while isinstance(node, ParsedSplit):
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.value


@dataclass(frozen=True)
class ParsedModel:
    """A generated translation unit, structurally recovered."""

    symbol_prefix: str
    trees: List[ParsedTree]
    base_score: float
    base_score_line: int
    call_indices: List[int]          # tree indices summed by predict
    batch_stride: Optional[int]
    batch_stride_line: int
    batch_predict_symbol: Optional[str]
    reported_n_features: Optional[int]
    reported_n_features_line: int

    def evaluate(self, x: np.ndarray) -> float:
        total = self.base_score
        for index in self.call_indices:
            total += self.trees[index].evaluate(x)
        return total


def _parse_literal(token: str, line: int, what: str) -> float:
    """Parse a C double literal the generator may emit."""
    token = token.strip()
    negative = token.startswith("-")
    bare = token[1:] if negative else token
    if bare == "HUGE_VAL":
        return -math.inf if negative else math.inf
    try:
        value = float(token)
    except ValueError:
        raise CheckError(
            f"line {line}: cannot parse {what} literal {token!r}") from None
    return value


class _Parser:
    """Line-oriented recursive-descent parser for the generated C."""

    def __init__(self, source: str):
        # Keep 1-based physical line numbers; strip indentation only.
        self.lines = [(i + 1, raw.strip())
                      for i, raw in enumerate(source.splitlines())]
        self.pos = 0

    def _skip_blank_and_comments(self) -> None:
        while self.pos < len(self.lines):
            text = self.lines[self.pos][1]
            if (not text or text.startswith("/*") or text.startswith("*")
                    or text.startswith("#include")):
                self.pos += 1
                continue
            return

    def peek(self) -> Tuple[int, str]:
        self._skip_blank_and_comments()
        if self.pos >= len(self.lines):
            raise CheckError("unexpected end of generated source")
        return self.lines[self.pos]

    def take(self) -> Tuple[int, str]:
        line = self.peek()
        self.pos += 1
        return line

    def expect(self, text: str, context: str) -> int:
        lineno, actual = self.take()
        if actual != text:
            raise CheckError(
                f"line {lineno}: expected {text!r} ({context}), "
                f"got {actual!r}")
        return lineno

    def at_end(self) -> bool:
        self._skip_blank_and_comments()
        return self.pos >= len(self.lines)

    # -- grammar ----------------------------------------------------------

    def parse_node(self, tree_index: int) -> ParsedNode:
        lineno, text = self.take()
        match = _RE_RETURN.match(text)
        if match:
            value = _parse_literal(match.group(1), lineno,
                                   f"tree {tree_index} leaf")
            return ParsedLeaf(value, lineno)
        match = _RE_IF.match(text)
        if match:
            feature = int(match.group(1))
            threshold = _parse_literal(match.group(2), lineno,
                                       f"tree {tree_index} threshold")
            left = self.parse_node(tree_index)
            self.expect("} else {", f"tree {tree_index} else branch")
            right = self.parse_node(tree_index)
            self.expect("}", f"tree {tree_index} closing branch")
            return ParsedSplit(feature, threshold, lineno, left, right)
        raise CheckError(
            f"line {lineno}: expected a branch or return in tree "
            f"{tree_index}, got {text!r}")

    def parse_tree(self) -> Optional[ParsedTree]:
        lineno, text = self.peek()
        match = _RE_TREE_HEADER.match(text)
        if not match:
            return None
        self.take()
        index = int(match.group(1))
        root = self.parse_node(index)
        self.expect("}", f"tree {index} function end")
        return ParsedTree(index, root, lineno)

    def parse_predict(self) -> Tuple[str, float, int, List[int]]:
        lineno, text = self.take()
        match = _RE_PREDICT_HEADER.match(text)
        if not match:
            raise CheckError(
                f"line {lineno}: expected predict function, got {text!r}")
        prefix = match.group(1)
        body_lineno, body = self.take()
        body_match = _RE_PREDICT_BODY.match(body)
        if not body_match:
            raise CheckError(
                f"line {body_lineno}: expected predict return, got {body!r}")
        terms = [term.strip() for term in body_match.group(1).split(" + ")]
        if not terms:
            raise CheckError(f"line {body_lineno}: empty predict expression")
        base = _parse_literal(terms[0], body_lineno, "base score")
        calls = []
        for term in terms[1:]:
            call = _RE_TREE_CALL.match(term)
            if not call:
                raise CheckError(
                    f"line {body_lineno}: unexpected predict term {term!r}")
            calls.append(int(call.group(1)))
        self.expect("}", "predict function end")
        return prefix, base, body_lineno, calls

    def parse_batch(self) -> Tuple[str, str, int, int]:
        lineno, text = self.take()
        match = _RE_BATCH_HEADER.match(text)
        if not match:
            raise CheckError(
                f"line {lineno}: expected predict_batch function, got {text!r}")
        prefix = match.group(1)
        self.expect("for (long i = 0; i < n_rows; i++) {", "batch loop")
        body_lineno, body = self.take()
        body_match = _RE_BATCH_ASSIGN.match(body)
        if not body_match:
            raise CheckError(
                f"line {body_lineno}: expected batch assignment, got {body!r}")
        self.expect("}", "batch loop end")
        self.expect("}", "batch function end")
        return (prefix, body_match.group(1), int(body_match.group(2)),
                body_lineno)

    def parse_n_features(self) -> Tuple[str, int, int]:
        lineno, text = self.take()
        match = _RE_N_FEATURES_HEADER.match(text)
        if not match:
            raise CheckError(
                f"line {lineno}: expected n_features function, got {text!r}")
        body_lineno, body = self.take()
        body_match = _RE_N_FEATURES_BODY.match(body)
        if not body_match:
            raise CheckError(
                f"line {body_lineno}: expected n_features return, got {body!r}")
        self.expect("}", "n_features function end")
        return match.group(1), int(body_match.group(1)), body_lineno


def parse_c_source(source: str) -> ParsedModel:
    """Recover the tree structure from a generated translation unit.

    Raises :class:`~repro.errors.CheckError` when the source does not
    have the exact shape :func:`generate_c_source` emits.
    """
    parser = _Parser(source)
    trees: List[ParsedTree] = []
    while True:
        tree = parser.parse_tree()
        if tree is None:
            break
        trees.append(tree)
    if not trees:
        raise CheckError("generated source contains no tree functions")
    prefix, base, base_line, calls = parser.parse_predict()
    batch_prefix, batch_symbol, stride, stride_line = parser.parse_batch()
    nf_prefix, n_features, nf_line = parser.parse_n_features()
    if not parser.at_end():
        lineno, text = parser.peek()
        raise CheckError(f"line {lineno}: trailing content {text!r}")
    if len({prefix, batch_prefix, nf_prefix}) != 1:
        raise CheckError(
            f"inconsistent symbol prefixes: {prefix!r}, {batch_prefix!r}, "
            f"{nf_prefix!r}")
    return ParsedModel(
        symbol_prefix=prefix, trees=trees, base_score=base,
        base_score_line=base_line, call_indices=calls,
        batch_stride=stride, batch_stride_line=stride_line,
        batch_predict_symbol=batch_symbol,
        reported_n_features=n_features, reported_n_features_line=nf_line)


# ---------------------------------------------------------------------------
# Flat node-array strategies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParsedFlatModel:
    """A flat-array translation unit, structurally recovered."""

    symbol_prefix: str
    #: element C type of the threshold array ("double" or "float").
    threshold_ctype: str
    feature: List[int]
    threshold: List[float]
    left: List[int]
    right: List[int]
    value: List[float]
    roots: List[int]
    #: 1-based header line of each array, keyed by kind.
    array_lines: "dict[str, int]"
    batch_stride: int
    batch_stride_line: int
    base_score: float
    base_score_line: int
    #: walker's inner tree-loop bound.
    loop_trees: int
    loop_trees_line: int
    reported_n_features: int
    reported_n_features_line: int

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    def evaluate(self, x: np.ndarray) -> float:
        """Replay the walker in Python: same arrays, same double math.

        Float thresholds were parsed to exactly their float32 values,
        and C promotes ``float`` to ``double`` before the comparison, so
        this matches the ``flat_array_f32`` unit bit for bit too.
        """
        total = self.base_score
        for root in self.roots:
            node = root
            while self.feature[node] >= 0:
                follow_left = x[self.feature[node]] <= self.threshold[node]
                node = self.left[node] if follow_left else self.right[node]
            total += self.value[node]
        return total


def _parse_flat_float(token: str, ctype: str, line: int, what: str) -> float:
    """Parse a ``double`` or suffixed ``float`` element literal."""
    token = token.strip()
    if ctype == "float":
        if not token.endswith(("F", "f")):
            raise CheckError(
                f"line {line}: {what} literal {token!r} lacks the float "
                "suffix in a float array")
        token = token[:-1]
    return _parse_literal(token, line, what)


def _parse_flat_int(token: str, line: int, what: str) -> int:
    try:
        return int(token.strip())
    except ValueError:
        raise CheckError(
            f"line {line}: cannot parse {what} literal {token!r}") from None


class _FlatParser(_Parser):
    """Parser for the flat node-array translation unit."""

    def parse_array(self, expected_kind: str,
                    allowed_ctypes: Tuple[str, ...]
                    ) -> Tuple[str, str, List[str], int]:
        """One ``static const`` array: (prefix, ctype, tokens, line)."""
        lineno, text = self.take()
        match = _RE_FLAT_ARRAY_HEADER.match(text)
        if not match:
            raise CheckError(
                f"line {lineno}: expected {expected_kind} array, got {text!r}")
        ctype, prefix, kind, declared = (match.group(1), match.group(2),
                                         match.group(3), int(match.group(4)))
        if kind != expected_kind:
            raise CheckError(
                f"line {lineno}: expected {expected_kind} array, "
                f"got {kind}")
        if ctype not in allowed_ctypes:
            raise CheckError(
                f"line {lineno}: array {kind} has element type {ctype}, "
                f"expected one of {allowed_ctypes}")
        tokens: List[str] = []
        while True:
            value_line, value_text = self.take()
            if value_text == "};":
                break
            tokens.extend(t for t in (s.strip()
                                      for s in value_text.split(",")) if t)
        if len(tokens) != declared:
            raise CheckError(
                f"line {lineno}: array {kind} declares {declared} elements "
                f"but lists {len(tokens)}")
        return prefix, ctype, tokens, lineno

    def parse_walker(self) -> Tuple[str, int, int, float, int, int, int]:
        """The batch walker: (prefix, stride, stride_line, base,
        base_line, loop_trees, loop_line)."""
        lineno, text = self.take()
        match = _RE_BATCH_HEADER.match(text)
        if not match:
            raise CheckError(
                f"line {lineno}: expected predict_batch function, "
                f"got {text!r}")
        prefix = match.group(1)
        self.expect("for (long i = 0; i < n_rows; i++) {", "batch row loop")

        stride_line, stride_text = self.take()
        stride_match = _RE_FLAT_ROW.match(stride_text)
        if not stride_match:
            raise CheckError(
                f"line {stride_line}: expected row pointer, "
                f"got {stride_text!r}")
        stride = int(stride_match.group(1))

        base_line, base_text = self.take()
        base_match = _RE_FLAT_ACC.match(base_text)
        if not base_match:
            raise CheckError(
                f"line {base_line}: expected accumulator init, "
                f"got {base_text!r}")
        base = _parse_literal(base_match.group(1), base_line, "base score")

        loop_line, loop_text = self.take()
        loop_match = _RE_FLAT_TREE_LOOP.match(loop_text)
        if not loop_match:
            raise CheckError(
                f"line {loop_line}: expected tree loop, got {loop_text!r}")
        loop_trees = int(loop_match.group(1))

        prefixes = [prefix]
        for regex, what in ((_RE_FLAT_ROOT, "root lookup"),
                            (_RE_FLAT_WHILE, "leaf test"),
                            (_RE_FLAT_STEP, "walker step")):
            step_line, step_text = self.take()
            step_match = regex.match(step_text)
            if not step_match:
                raise CheckError(
                    f"line {step_line}: expected {what}, got {step_text!r}")
            prefixes.extend(step_match.groups())
        self.expect("}", "walker while end")

        accum_line, accum_text = self.take()
        accum_match = _RE_FLAT_ACCUM.match(accum_text)
        if not accum_match:
            raise CheckError(
                f"line {accum_line}: expected accumulation, "
                f"got {accum_text!r}")
        prefixes.append(accum_match.group(1))
        self.expect("}", "tree loop end")
        self.expect("out[i] = acc;", "row output")
        self.expect("}", "row loop end")
        self.expect("}", "batch function end")
        if len(set(prefixes)) != 1:
            raise CheckError(
                f"line {lineno}: walker mixes symbol prefixes "
                f"{sorted(set(prefixes))}")
        return prefix, stride, stride_line, base, base_line, loop_trees, \
            loop_line


def parse_flat_source(source: str) -> ParsedFlatModel:
    """Recover the node arrays from a flat-array translation unit.

    Raises :class:`~repro.errors.CheckError` when the source does not
    have the exact shape the flat strategies emit.
    """
    parser = _FlatParser(source)
    arrays: "dict[str, List[str]]" = {}
    lines: "dict[str, int]" = {}
    prefixes: List[str] = []
    threshold_ctype = "double"
    for kind, allowed in _FLAT_ARRAY_KINDS:
        prefix, ctype, tokens, lineno = parser.parse_array(kind, allowed)
        prefixes.append(prefix)
        arrays[kind] = tokens
        lines[kind] = lineno
        if kind == "node_threshold":
            threshold_ctype = ctype
    walker_prefix, stride, stride_line, base, base_line, loop_trees, \
        loop_line = parser.parse_walker()
    nf_prefix, n_features, nf_line = parser.parse_n_features()
    if not parser.at_end():
        lineno, text = parser.peek()
        raise CheckError(f"line {lineno}: trailing content {text!r}")
    if len(set(prefixes + [walker_prefix, nf_prefix])) != 1:
        raise CheckError(
            "inconsistent symbol prefixes: "
            f"{sorted(set(prefixes + [walker_prefix, nf_prefix]))}")

    node_kinds = [k for k, _ in _FLAT_ARRAY_KINDS if k != "tree_root"]
    sizes = {len(arrays[k]) for k in node_kinds}
    if len(sizes) != 1:
        raise CheckError(
            "node arrays disagree on length: "
            f"{ {k: len(arrays[k]) for k in node_kinds} }")

    return ParsedFlatModel(
        symbol_prefix=walker_prefix,
        threshold_ctype=threshold_ctype,
        feature=[_parse_flat_int(t, lines["node_feature"], "feature")
                 for t in arrays["node_feature"]],
        threshold=[_parse_flat_float(t, threshold_ctype,
                                     lines["node_threshold"], "threshold")
                   for t in arrays["node_threshold"]],
        left=[_parse_flat_int(t, lines["node_left"], "left child")
              for t in arrays["node_left"]],
        right=[_parse_flat_int(t, lines["node_right"], "right child")
               for t in arrays["node_right"]],
        value=[_parse_flat_float(t, "double", lines["node_value"],
                                 "leaf value")
               for t in arrays["node_value"]],
        roots=[_parse_flat_int(t, lines["tree_root"], "tree root")
               for t in arrays["tree_root"]],
        array_lines=lines,
        batch_stride=stride, batch_stride_line=stride_line,
        base_score=base, base_score_line=base_line,
        loop_trees=loop_trees, loop_trees_line=loop_line,
        reported_n_features=n_features, reported_n_features_line=nf_line)


# ---------------------------------------------------------------------------
# Structural comparison
# ---------------------------------------------------------------------------


def _compare_tree(parsed: ParsedTree, tree: Tree, tree_index: int,
                  n_features: int, path: str,
                  findings: List[Finding]) -> None:
    report = findings.append
    n_nodes, n_leaves = parsed.count_nodes()
    if n_nodes != tree.n_nodes or n_leaves != tree.n_leaves:
        report(Finding(
            "CG003", Severity.ERROR, path, parsed.line,
            f"tree {tree_index}: generated code has {n_nodes} nodes / "
            f"{n_leaves} leaves, model has {tree.n_nodes} / "
            f"{tree.n_leaves}"))

    # Walk both representations in lockstep; stop descending on a shape
    # mismatch but keep the traversal going elsewhere.
    stack: List[Tuple[ParsedNode, int]] = [(parsed.root, 0)]
    while stack:
        node, model_index = stack.pop()
        model_is_leaf = tree.left[model_index] == LEAF
        if isinstance(node, ParsedLeaf):
            if not model_is_leaf:
                report(Finding(
                    "CG003", Severity.ERROR, path, node.line,
                    f"tree {tree_index}: generated leaf where model node "
                    f"{model_index} is an internal split"))
                continue
            expected = float(tree.value[model_index])
            if not _floats_identical(node.value, expected):
                report(Finding(
                    "CG006", Severity.ERROR, path, node.line,
                    f"tree {tree_index}: leaf value {node.value!r} does not "
                    f"round-trip model value {expected!r} "
                    f"(node {model_index})"))
            continue
        if model_is_leaf:
            report(Finding(
                "CG003", Severity.ERROR, path, node.line,
                f"tree {tree_index}: generated split where model node "
                f"{model_index} is a leaf"))
            continue
        if not 0 <= node.feature < n_features:
            report(Finding(
                "CG004", Severity.ERROR, path, node.line,
                f"tree {tree_index}: feature index {node.feature} outside "
                f"[0, {n_features})"))
        model_feature = int(tree.feature[model_index])
        if node.feature != model_feature:
            report(Finding(
                "CG004", Severity.ERROR, path, node.line,
                f"tree {tree_index}: generated split on feature "
                f"{node.feature}, model splits on {model_feature} "
                f"(node {model_index})"))
        expected = float(tree.threshold[model_index])
        if not _floats_identical(node.threshold, expected):
            report(Finding(
                "CG005", Severity.ERROR, path, node.line,
                f"tree {tree_index}: threshold {node.threshold!r} does not "
                f"round-trip model threshold {expected!r} "
                f"(node {model_index})"))
        stack.append((node.left, int(tree.left[model_index])))
        stack.append((node.right, int(tree.right[model_index])))


def _floats_identical(a: float, b: float) -> bool:
    """Bit-for-bit equality, treating NaN as equal to NaN."""
    return a == b or (math.isnan(a) and math.isnan(b))


def _probe_vectors(model: BoostedTreesModel, n_random: int = 8) -> np.ndarray:
    """Deterministic probe inputs that exercise both branch directions."""
    rng = derive_rng(DEFAULT_SEED, "checks", "codegen-verify")
    probes = [np.zeros(model.n_features),
              np.full(model.n_features, 1e12),
              np.full(model.n_features, -1e12)]
    thresholds = np.concatenate(
        [t.threshold[t.left != LEAF] for t in model.trees] or
        [np.zeros(1)])
    if len(thresholds):
        lo, hi = float(thresholds.min()), float(thresholds.max())
        span = (hi - lo) or 1.0
        probes.extend(rng.uniform(lo - 0.5 * span, hi + 0.5 * span,
                                  size=(n_random, model.n_features)))
    return np.asarray(probes, dtype=np.float64)


def _expected_threshold(raw: float, float32: bool) -> float:
    """The threshold the generated unit must carry for a model value."""
    return float(np.float32(raw)) if float32 else float(raw)


def _reference_predict(model: BoostedTreesModel, x: np.ndarray,
                       float32: bool) -> float:
    """Walk the model with (optionally float32-truncated) thresholds.

    The float64 reference matches ``model.predict_one`` bit for bit;
    the float32 reference is what a correct ``flat_array_f32`` unit
    must compute (C promotes the ``float`` threshold back to ``double``
    for the comparison).
    """
    total = float(model.base_score)
    for tree in model.trees:
        node = 0
        while tree.left[node] != LEAF:
            threshold = _expected_threshold(float(tree.threshold[node]),
                                            float32)
            if x[int(tree.feature[node])] <= threshold:
                node = int(tree.left[node])
            else:
                node = int(tree.right[node])
        total += float(tree.value[node])
    return total


def _compare_flat(parsed: ParsedFlatModel, model: BoostedTreesModel,
                  path: str, float32: bool,
                  findings: List[Finding]) -> None:
    """Walk every model tree through the parsed node arrays."""
    report = findings.append
    total_nodes = sum(tree.n_nodes for tree in model.trees)
    if parsed.n_nodes != total_nodes:
        report(Finding(
            "CG002", Severity.ERROR, path, parsed.array_lines["node_feature"],
            f"node arrays hold {parsed.n_nodes} nodes, model has "
            f"{total_nodes}"))
    if len(parsed.roots) != model.n_trees:
        report(Finding(
            "CG002", Severity.ERROR, path, parsed.array_lines["tree_root"],
            f"tree_root lists {len(parsed.roots)} trees, model has "
            f"{model.n_trees}"))
        return
    if parsed.loop_trees != model.n_trees:
        report(Finding(
            "CG002", Severity.ERROR, path, parsed.loop_trees_line,
            f"walker loops over {parsed.loop_trees} trees, model has "
            f"{model.n_trees}"))

    visited: "dict[int, Tuple[int, int]]" = {}
    for tree_index, tree in enumerate(model.trees):
        line = parsed.array_lines["tree_root"]
        # (flat index, model node) pairs walked in lockstep.
        stack: List[Tuple[int, int]] = [(parsed.roots[tree_index], 0)]
        while stack:
            flat, model_index = stack.pop()
            if not 0 <= flat < parsed.n_nodes:
                report(Finding(
                    "CG003", Severity.ERROR, path, line,
                    f"tree {tree_index}: node index {flat} outside the "
                    f"{parsed.n_nodes}-node arrays"))
                continue
            if flat in visited:
                other = visited[flat]
                report(Finding(
                    "CG003", Severity.ERROR, path, line,
                    f"tree {tree_index}: node {flat} already reached by "
                    f"tree {other[0]} node {other[1]} (shared node)"))
                continue
            visited[flat] = (tree_index, model_index)
            model_is_leaf = tree.left[model_index] == LEAF
            flat_is_leaf = parsed.feature[flat] < 0
            if flat_is_leaf != model_is_leaf:
                kind = "leaf" if flat_is_leaf else "split"
                report(Finding(
                    "CG003", Severity.ERROR, path,
                    parsed.array_lines["node_feature"],
                    f"tree {tree_index}: generated {kind} at node {flat} "
                    f"where model node {model_index} is a "
                    f"{'leaf' if model_is_leaf else 'split'}"))
                continue
            if flat_is_leaf:
                expected = float(tree.value[model_index])
                if not _floats_identical(parsed.value[flat], expected):
                    report(Finding(
                        "CG006", Severity.ERROR, path,
                        parsed.array_lines["node_value"],
                        f"tree {tree_index}: leaf value "
                        f"{parsed.value[flat]!r} at node {flat} does not "
                        f"round-trip model value {expected!r} "
                        f"(node {model_index})"))
                continue
            model_feature = int(tree.feature[model_index])
            if not 0 <= parsed.feature[flat] < model.n_features:
                report(Finding(
                    "CG004", Severity.ERROR, path,
                    parsed.array_lines["node_feature"],
                    f"tree {tree_index}: feature index "
                    f"{parsed.feature[flat]} at node {flat} outside "
                    f"[0, {model.n_features})"))
            elif parsed.feature[flat] != model_feature:
                report(Finding(
                    "CG004", Severity.ERROR, path,
                    parsed.array_lines["node_feature"],
                    f"tree {tree_index}: generated split on feature "
                    f"{parsed.feature[flat]} at node {flat}, model splits "
                    f"on {model_feature} (node {model_index})"))
            expected = _expected_threshold(float(tree.threshold[model_index]),
                                           float32)
            if not _floats_identical(parsed.threshold[flat], expected):
                report(Finding(
                    "CG005", Severity.ERROR, path,
                    parsed.array_lines["node_threshold"],
                    f"tree {tree_index}: threshold "
                    f"{parsed.threshold[flat]!r} at node {flat} does not "
                    f"round-trip expected {expected!r} "
                    f"(node {model_index}"
                    f"{', float32-truncated' if float32 else ''})"))
            stack.append((parsed.left[flat], int(tree.left[model_index])))
            stack.append((parsed.right[flat], int(tree.right[model_index])))
    if len(visited) != parsed.n_nodes and parsed.n_nodes == total_nodes:
        report(Finding(
            "CG003", Severity.ERROR, path,
            parsed.array_lines["node_feature"],
            f"{parsed.n_nodes - len(visited)} node(s) in the arrays are "
            "unreachable from every tree root"))


def _verify_flat(model: BoostedTreesModel, source: str, path: str,
                 float32: bool, findings: List[Finding]) -> List[Finding]:
    try:
        parsed = parse_flat_source(source)
    except CheckError as exc:
        findings.append(Finding(
            "CG001", Severity.ERROR, path, 0,
            f"generated source cannot be parsed: {exc}"))
        return findings

    expected_ctype = "float" if float32 else "double"
    if parsed.threshold_ctype != expected_ctype:
        findings.append(Finding(
            "CG005", Severity.ERROR, path,
            parsed.array_lines["node_threshold"],
            f"threshold array has element type {parsed.threshold_ctype}, "
            f"strategy requires {expected_ctype}"))
        return findings

    _compare_flat(parsed, model, path, float32, findings)

    if not _floats_identical(parsed.base_score, float(model.base_score)):
        findings.append(Finding(
            "CG007", Severity.ERROR, path, parsed.base_score_line,
            f"base score {parsed.base_score!r} does not round-trip model "
            f"base score {model.base_score!r}"))
    if parsed.batch_stride != model.n_features:
        findings.append(Finding(
            "CG008", Severity.ERROR, path, parsed.batch_stride_line,
            f"predict_batch strides by {parsed.batch_stride} doubles per "
            f"row, model has {model.n_features} features"))
    if parsed.reported_n_features != model.n_features:
        findings.append(Finding(
            "CG008", Severity.ERROR, path, parsed.reported_n_features_line,
            f"n_features() returns {parsed.reported_n_features}, model "
            f"has {model.n_features}"))

    # Semantic cross-check: only meaningful while the structure matches.
    if not findings:
        for x in _probe_vectors(model):
            expected = _reference_predict(model, x, float32)
            actual = parsed.evaluate(x)
            if not _floats_identical(actual, expected):
                findings.append(Finding(
                    "CG009", Severity.ERROR, path, 0,
                    f"parsed arrays predict {actual!r} on a probe vector, "
                    f"{'float32 reference' if float32 else 'model'} "
                    f"predicts {expected!r}"))
                break
    return findings


def verify_codegen(model: BoostedTreesModel,
                   source: Optional[str] = None,
                   path: str = "<generated C>",
                   strategy: Union[str, CodegenStrategy] = DEFAULT_STRATEGY
                   ) -> List[Finding]:
    """Statically verify generated C against ``model``.

    ``source`` defaults to code freshly generated with ``strategy``;
    pass an explicit string to verify a source artifact (e.g. one kept
    from an earlier compilation — ``strategy`` must then name the
    strategy that produced it). Returns findings; an empty list proves
    structural equivalence. A source so malformed it cannot be parsed
    yields a single CG001 error.
    """
    resolved = get_strategy(strategy)
    if source is None:
        source = resolved.generate(model)
    findings: List[Finding] = []

    for match in _RE_NONFINITE.finditer(source):
        line = source[:match.start()].count("\n") + 1
        findings.append(Finding(
            "CG010", Severity.ERROR, path, line,
            f"bare non-finite literal {match.group(0)!r} is not valid C"))

    if not resolved.emits_single_entry:
        return _verify_flat(model, source, path,
                            float32=resolved.threshold_dtype == "float32",
                            findings=findings)

    try:
        parsed = parse_c_source(source)
    except CheckError as exc:
        findings.append(Finding(
            "CG001", Severity.ERROR, path, 0,
            f"generated source cannot be parsed: {exc}"))
        return findings

    if len(parsed.trees) != model.n_trees:
        findings.append(Finding(
            "CG002", Severity.ERROR, path, 0,
            f"generated source defines {len(parsed.trees)} tree functions, "
            f"model has {model.n_trees} trees"))
    for position, tree in enumerate(parsed.trees):
        if tree.index != position:
            findings.append(Finding(
                "CG002", Severity.ERROR, path, tree.line,
                f"tree function index {tree.index} at position {position}"))

    for parsed_tree, model_tree in zip(parsed.trees, model.trees):
        _compare_tree(parsed_tree, model_tree, parsed_tree.index,
                      model.n_features, path, findings)

    if not _floats_identical(parsed.base_score, model.base_score):
        findings.append(Finding(
            "CG007", Severity.ERROR, path, parsed.base_score_line,
            f"base score {parsed.base_score!r} does not round-trip model "
            f"base score {model.base_score!r}"))

    if parsed.call_indices != list(range(model.n_trees)):
        findings.append(Finding(
            "CG008", Severity.ERROR, path, parsed.base_score_line,
            f"predict sums tree indices {parsed.call_indices}, expected "
            f"each of 0..{model.n_trees - 1} exactly once, in order"))
    if parsed.batch_stride != model.n_features:
        findings.append(Finding(
            "CG008", Severity.ERROR, path, parsed.batch_stride_line,
            f"predict_batch strides by {parsed.batch_stride} doubles per "
            f"row, model has {model.n_features} features"))
    if parsed.batch_predict_symbol != parsed.symbol_prefix:
        findings.append(Finding(
            "CG008", Severity.ERROR, path, parsed.batch_stride_line,
            f"predict_batch delegates to "
            f"{parsed.batch_predict_symbol!r}_predict, expected "
            f"{parsed.symbol_prefix!r}_predict"))
    if parsed.reported_n_features != model.n_features:
        findings.append(Finding(
            "CG008", Severity.ERROR, path, parsed.reported_n_features_line,
            f"n_features() returns {parsed.reported_n_features}, model "
            f"has {model.n_features}"))

    # Semantic cross-check: only meaningful while the structure matches,
    # otherwise it would just repeat the structural findings.
    if not findings and parsed.call_indices == list(range(model.n_trees)):
        for x in _probe_vectors(model):
            expected = model.predict_one(x)
            actual = parsed.evaluate(x)
            if not _floats_identical(actual, expected):
                findings.append(Finding(
                    "CG009", Severity.ERROR, path, 0,
                    f"parsed code predicts {actual!r} on a probe vector, "
                    f"model predicts {expected!r}"))
                break
    return findings


def self_check_model(n_trees: int = 5, n_features: int = 7
                     ) -> BoostedTreesModel:
    """A small deterministic ensemble for driver self-checks and tests.

    Built directly from node arrays (no training) so ``repro-t3 check``
    can exercise the codegen path without any saved model artifact.
    Thresholds include negative, subnormal-ish, and integral values to
    stress literal round-tripping.
    """
    rng = derive_rng(DEFAULT_SEED, "checks", "codegen-self-check")
    trees = []
    for _ in range(n_trees):
        # Node 1 must split on a different feature than node 0: nesting
        # the same feature with a random tighter threshold can produce a
        # provably dead branch (flagged by EA001).
        root_feature = int(rng.integers(0, n_features))
        child_feature = (root_feature + 1
                         + int(rng.integers(0, n_features - 1))) % n_features
        feature = [root_feature, child_feature, LEAF, LEAF, LEAF]
        threshold = [float(rng.normal()), float(rng.normal()) * 1e-7,
                     0.0, 0.0, 0.0]
        left = [1, 3, LEAF, LEAF, LEAF]
        right = [2, 4, LEAF, LEAF, LEAF]
        value = [0.0, 0.0, float(rng.normal()), float(rng.normal()),
                 float(rng.normal())]
        trees.append(Tree(
            feature=np.array(feature), threshold=np.array(threshold),
            left=np.array(left), right=np.array(right),
            value=np.array(value)))
    return BoostedTreesModel(trees, base_score=0.125, n_features=n_features)
