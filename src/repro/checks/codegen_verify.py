"""Static verification of generated tree code (no compile, no execute).

T3's accuracy claim rests on the compiled ensemble being *exactly* the
trained model — one comparison and one branch per internal node
(Section 2.6). A codegen bug would silently skew every downstream
experiment, so this analyzer parses the C translation unit produced by
:func:`repro.treecomp.codegen.generate_c_source` back into a tree
structure and proves structural equivalence against the
:class:`~repro.trees.boosting.BoostedTreesModel`:

* one ``tree_<i>`` function per ensemble member (CG002),
* identical node/leaf counts and branch shape per tree (CG003),
* feature indices equal to the model's and inside ``[0, n_features)``
  (CG004),
* thresholds and leaf values that round-trip exactly through
  ``repr(float)`` (CG005/CG006),
* the exported ``predict`` summing every tree exactly once on top of the
  correct base score (CG007/CG008),
* ``predict_batch`` striding by ``n_features`` and delegating to the
  same ``predict`` symbol, and ``n_features()`` agreeing (CG008),
* the parsed representation predicting bit-identically to the Python
  model on deterministic probe vectors (CG009),
* no bare ``inf``/``nan`` literals that a C compiler would reject
  (CG010).

The C parser is deliberately narrow: it accepts exactly the shape the
generator emits and treats anything else as a parse failure (CG001) —
a verifier that guesses is no verifier at all.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from ..errors import CheckError
from ..rng import DEFAULT_SEED, derive_rng
from ..trees.boosting import BoostedTreesModel
from ..trees.tree import LEAF, Tree
from ..treecomp.codegen import generate_c_source

__all__ = ["ParsedLeaf", "ParsedSplit", "ParsedTree", "ParsedModel",
           "parse_c_source", "verify_codegen", "self_check_model"]

from .findings import Finding, Severity

_RE_TREE_HEADER = re.compile(
    r"^static double tree_(\d+)\(const double \*f\) \{$")
_RE_IF = re.compile(r"^if \(f\[(\d+)\] <= (.+?)\) \{$")
_RE_RETURN = re.compile(r"^return (.+?);$")
_RE_PREDICT_HEADER = re.compile(
    r"^double (\w+)_predict\(const double \*f\) \{$")
_RE_PREDICT_BODY = re.compile(r"^return (.+?);$")
_RE_BATCH_HEADER = re.compile(
    r"^void (\w+)_predict_batch\(const double \*f, long n_rows, "
    r"double \*out\) \{$")
_RE_BATCH_ASSIGN = re.compile(r"^out\[i\] = (\w+)_predict\(f \+ i \* (\d+)L\);$")
_RE_N_FEATURES_HEADER = re.compile(r"^long (\w+)_n_features\(void\) \{$")
_RE_N_FEATURES_BODY = re.compile(r"^return (\d+)L;$")
_RE_TREE_CALL = re.compile(r"^tree_(\d+)\(f\)$")

#: Bare non-finite tokens ``repr(float)`` would emit but C rejects.
_RE_NONFINITE = re.compile(r"(?<![\w.])(-?inf|nan)(?![\w.])")


@dataclass(frozen=True)
class ParsedLeaf:
    value: float
    line: int


@dataclass(frozen=True)
class ParsedSplit:
    feature: int
    threshold: float
    line: int
    left: "ParsedNode"
    right: "ParsedNode"


ParsedNode = Union[ParsedLeaf, ParsedSplit]


@dataclass(frozen=True)
class ParsedTree:
    index: int
    root: ParsedNode
    line: int

    def count_nodes(self) -> Tuple[int, int]:
        """(n_nodes, n_leaves) of the parsed tree."""
        nodes = leaves = 0
        stack: List[ParsedNode] = [self.root]
        while stack:
            node = stack.pop()
            nodes += 1
            if isinstance(node, ParsedLeaf):
                leaves += 1
            else:
                stack.append(node.left)
                stack.append(node.right)
        return nodes, leaves

    def evaluate(self, x: np.ndarray) -> float:
        node = self.root
        while isinstance(node, ParsedSplit):
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.value


@dataclass(frozen=True)
class ParsedModel:
    """A generated translation unit, structurally recovered."""

    symbol_prefix: str
    trees: List[ParsedTree]
    base_score: float
    base_score_line: int
    call_indices: List[int]          # tree indices summed by predict
    batch_stride: Optional[int]
    batch_stride_line: int
    batch_predict_symbol: Optional[str]
    reported_n_features: Optional[int]
    reported_n_features_line: int

    def evaluate(self, x: np.ndarray) -> float:
        total = self.base_score
        for index in self.call_indices:
            total += self.trees[index].evaluate(x)
        return total


def _parse_literal(token: str, line: int, what: str) -> float:
    """Parse a C double literal the generator may emit."""
    token = token.strip()
    negative = token.startswith("-")
    bare = token[1:] if negative else token
    if bare == "HUGE_VAL":
        return -math.inf if negative else math.inf
    try:
        value = float(token)
    except ValueError:
        raise CheckError(
            f"line {line}: cannot parse {what} literal {token!r}") from None
    return value


class _Parser:
    """Line-oriented recursive-descent parser for the generated C."""

    def __init__(self, source: str):
        # Keep 1-based physical line numbers; strip indentation only.
        self.lines = [(i + 1, raw.strip())
                      for i, raw in enumerate(source.splitlines())]
        self.pos = 0

    def _skip_blank_and_comments(self) -> None:
        while self.pos < len(self.lines):
            text = self.lines[self.pos][1]
            if (not text or text.startswith("/*") or text.startswith("*")
                    or text.startswith("#include")):
                self.pos += 1
                continue
            return

    def peek(self) -> Tuple[int, str]:
        self._skip_blank_and_comments()
        if self.pos >= len(self.lines):
            raise CheckError("unexpected end of generated source")
        return self.lines[self.pos]

    def take(self) -> Tuple[int, str]:
        line = self.peek()
        self.pos += 1
        return line

    def expect(self, text: str, context: str) -> int:
        lineno, actual = self.take()
        if actual != text:
            raise CheckError(
                f"line {lineno}: expected {text!r} ({context}), "
                f"got {actual!r}")
        return lineno

    def at_end(self) -> bool:
        self._skip_blank_and_comments()
        return self.pos >= len(self.lines)

    # -- grammar ----------------------------------------------------------

    def parse_node(self, tree_index: int) -> ParsedNode:
        lineno, text = self.take()
        match = _RE_RETURN.match(text)
        if match:
            value = _parse_literal(match.group(1), lineno,
                                   f"tree {tree_index} leaf")
            return ParsedLeaf(value, lineno)
        match = _RE_IF.match(text)
        if match:
            feature = int(match.group(1))
            threshold = _parse_literal(match.group(2), lineno,
                                       f"tree {tree_index} threshold")
            left = self.parse_node(tree_index)
            self.expect("} else {", f"tree {tree_index} else branch")
            right = self.parse_node(tree_index)
            self.expect("}", f"tree {tree_index} closing branch")
            return ParsedSplit(feature, threshold, lineno, left, right)
        raise CheckError(
            f"line {lineno}: expected a branch or return in tree "
            f"{tree_index}, got {text!r}")

    def parse_tree(self) -> Optional[ParsedTree]:
        lineno, text = self.peek()
        match = _RE_TREE_HEADER.match(text)
        if not match:
            return None
        self.take()
        index = int(match.group(1))
        root = self.parse_node(index)
        self.expect("}", f"tree {index} function end")
        return ParsedTree(index, root, lineno)

    def parse_predict(self) -> Tuple[str, float, int, List[int]]:
        lineno, text = self.take()
        match = _RE_PREDICT_HEADER.match(text)
        if not match:
            raise CheckError(
                f"line {lineno}: expected predict function, got {text!r}")
        prefix = match.group(1)
        body_lineno, body = self.take()
        body_match = _RE_PREDICT_BODY.match(body)
        if not body_match:
            raise CheckError(
                f"line {body_lineno}: expected predict return, got {body!r}")
        terms = [term.strip() for term in body_match.group(1).split(" + ")]
        if not terms:
            raise CheckError(f"line {body_lineno}: empty predict expression")
        base = _parse_literal(terms[0], body_lineno, "base score")
        calls = []
        for term in terms[1:]:
            call = _RE_TREE_CALL.match(term)
            if not call:
                raise CheckError(
                    f"line {body_lineno}: unexpected predict term {term!r}")
            calls.append(int(call.group(1)))
        self.expect("}", "predict function end")
        return prefix, base, body_lineno, calls

    def parse_batch(self) -> Tuple[str, str, int, int]:
        lineno, text = self.take()
        match = _RE_BATCH_HEADER.match(text)
        if not match:
            raise CheckError(
                f"line {lineno}: expected predict_batch function, got {text!r}")
        prefix = match.group(1)
        self.expect("for (long i = 0; i < n_rows; i++) {", "batch loop")
        body_lineno, body = self.take()
        body_match = _RE_BATCH_ASSIGN.match(body)
        if not body_match:
            raise CheckError(
                f"line {body_lineno}: expected batch assignment, got {body!r}")
        self.expect("}", "batch loop end")
        self.expect("}", "batch function end")
        return (prefix, body_match.group(1), int(body_match.group(2)),
                body_lineno)

    def parse_n_features(self) -> Tuple[str, int, int]:
        lineno, text = self.take()
        match = _RE_N_FEATURES_HEADER.match(text)
        if not match:
            raise CheckError(
                f"line {lineno}: expected n_features function, got {text!r}")
        body_lineno, body = self.take()
        body_match = _RE_N_FEATURES_BODY.match(body)
        if not body_match:
            raise CheckError(
                f"line {body_lineno}: expected n_features return, got {body!r}")
        self.expect("}", "n_features function end")
        return match.group(1), int(body_match.group(1)), body_lineno


def parse_c_source(source: str) -> ParsedModel:
    """Recover the tree structure from a generated translation unit.

    Raises :class:`~repro.errors.CheckError` when the source does not
    have the exact shape :func:`generate_c_source` emits.
    """
    parser = _Parser(source)
    trees: List[ParsedTree] = []
    while True:
        tree = parser.parse_tree()
        if tree is None:
            break
        trees.append(tree)
    if not trees:
        raise CheckError("generated source contains no tree functions")
    prefix, base, base_line, calls = parser.parse_predict()
    batch_prefix, batch_symbol, stride, stride_line = parser.parse_batch()
    nf_prefix, n_features, nf_line = parser.parse_n_features()
    if not parser.at_end():
        lineno, text = parser.peek()
        raise CheckError(f"line {lineno}: trailing content {text!r}")
    if len({prefix, batch_prefix, nf_prefix}) != 1:
        raise CheckError(
            f"inconsistent symbol prefixes: {prefix!r}, {batch_prefix!r}, "
            f"{nf_prefix!r}")
    return ParsedModel(
        symbol_prefix=prefix, trees=trees, base_score=base,
        base_score_line=base_line, call_indices=calls,
        batch_stride=stride, batch_stride_line=stride_line,
        batch_predict_symbol=batch_symbol,
        reported_n_features=n_features, reported_n_features_line=nf_line)


# ---------------------------------------------------------------------------
# Structural comparison
# ---------------------------------------------------------------------------


def _compare_tree(parsed: ParsedTree, tree: Tree, tree_index: int,
                  n_features: int, path: str,
                  findings: List[Finding]) -> None:
    report = findings.append
    n_nodes, n_leaves = parsed.count_nodes()
    if n_nodes != tree.n_nodes or n_leaves != tree.n_leaves:
        report(Finding(
            "CG003", Severity.ERROR, path, parsed.line,
            f"tree {tree_index}: generated code has {n_nodes} nodes / "
            f"{n_leaves} leaves, model has {tree.n_nodes} / "
            f"{tree.n_leaves}"))

    # Walk both representations in lockstep; stop descending on a shape
    # mismatch but keep the traversal going elsewhere.
    stack: List[Tuple[ParsedNode, int]] = [(parsed.root, 0)]
    while stack:
        node, model_index = stack.pop()
        model_is_leaf = tree.left[model_index] == LEAF
        if isinstance(node, ParsedLeaf):
            if not model_is_leaf:
                report(Finding(
                    "CG003", Severity.ERROR, path, node.line,
                    f"tree {tree_index}: generated leaf where model node "
                    f"{model_index} is an internal split"))
                continue
            expected = float(tree.value[model_index])
            if not _floats_identical(node.value, expected):
                report(Finding(
                    "CG006", Severity.ERROR, path, node.line,
                    f"tree {tree_index}: leaf value {node.value!r} does not "
                    f"round-trip model value {expected!r} "
                    f"(node {model_index})"))
            continue
        if model_is_leaf:
            report(Finding(
                "CG003", Severity.ERROR, path, node.line,
                f"tree {tree_index}: generated split where model node "
                f"{model_index} is a leaf"))
            continue
        if not 0 <= node.feature < n_features:
            report(Finding(
                "CG004", Severity.ERROR, path, node.line,
                f"tree {tree_index}: feature index {node.feature} outside "
                f"[0, {n_features})"))
        model_feature = int(tree.feature[model_index])
        if node.feature != model_feature:
            report(Finding(
                "CG004", Severity.ERROR, path, node.line,
                f"tree {tree_index}: generated split on feature "
                f"{node.feature}, model splits on {model_feature} "
                f"(node {model_index})"))
        expected = float(tree.threshold[model_index])
        if not _floats_identical(node.threshold, expected):
            report(Finding(
                "CG005", Severity.ERROR, path, node.line,
                f"tree {tree_index}: threshold {node.threshold!r} does not "
                f"round-trip model threshold {expected!r} "
                f"(node {model_index})"))
        stack.append((node.left, int(tree.left[model_index])))
        stack.append((node.right, int(tree.right[model_index])))


def _floats_identical(a: float, b: float) -> bool:
    """Bit-for-bit equality, treating NaN as equal to NaN."""
    return a == b or (math.isnan(a) and math.isnan(b))


def _probe_vectors(model: BoostedTreesModel, n_random: int = 8) -> np.ndarray:
    """Deterministic probe inputs that exercise both branch directions."""
    rng = derive_rng(DEFAULT_SEED, "checks", "codegen-verify")
    probes = [np.zeros(model.n_features),
              np.full(model.n_features, 1e12),
              np.full(model.n_features, -1e12)]
    thresholds = np.concatenate(
        [t.threshold[t.left != LEAF] for t in model.trees] or
        [np.zeros(1)])
    if len(thresholds):
        lo, hi = float(thresholds.min()), float(thresholds.max())
        span = (hi - lo) or 1.0
        probes.extend(rng.uniform(lo - 0.5 * span, hi + 0.5 * span,
                                  size=(n_random, model.n_features)))
    return np.asarray(probes, dtype=np.float64)


def verify_codegen(model: BoostedTreesModel,
                   source: Optional[str] = None,
                   path: str = "<generated C>") -> List[Finding]:
    """Statically verify generated C against ``model``.

    ``source`` defaults to freshly generated code; pass an explicit
    string to verify a source artifact (e.g. one kept from an earlier
    compilation). Returns findings; an empty list proves structural
    equivalence. A source so malformed it cannot be parsed yields a
    single CG001 error.
    """
    if source is None:
        source = generate_c_source(model)
    findings: List[Finding] = []

    for match in _RE_NONFINITE.finditer(source):
        line = source[:match.start()].count("\n") + 1
        findings.append(Finding(
            "CG010", Severity.ERROR, path, line,
            f"bare non-finite literal {match.group(0)!r} is not valid C"))

    try:
        parsed = parse_c_source(source)
    except CheckError as exc:
        findings.append(Finding(
            "CG001", Severity.ERROR, path, 0,
            f"generated source cannot be parsed: {exc}"))
        return findings

    if len(parsed.trees) != model.n_trees:
        findings.append(Finding(
            "CG002", Severity.ERROR, path, 0,
            f"generated source defines {len(parsed.trees)} tree functions, "
            f"model has {model.n_trees} trees"))
    for position, tree in enumerate(parsed.trees):
        if tree.index != position:
            findings.append(Finding(
                "CG002", Severity.ERROR, path, tree.line,
                f"tree function index {tree.index} at position {position}"))

    for parsed_tree, model_tree in zip(parsed.trees, model.trees):
        _compare_tree(parsed_tree, model_tree, parsed_tree.index,
                      model.n_features, path, findings)

    if not _floats_identical(parsed.base_score, model.base_score):
        findings.append(Finding(
            "CG007", Severity.ERROR, path, parsed.base_score_line,
            f"base score {parsed.base_score!r} does not round-trip model "
            f"base score {model.base_score!r}"))

    if parsed.call_indices != list(range(model.n_trees)):
        findings.append(Finding(
            "CG008", Severity.ERROR, path, parsed.base_score_line,
            f"predict sums tree indices {parsed.call_indices}, expected "
            f"each of 0..{model.n_trees - 1} exactly once, in order"))
    if parsed.batch_stride != model.n_features:
        findings.append(Finding(
            "CG008", Severity.ERROR, path, parsed.batch_stride_line,
            f"predict_batch strides by {parsed.batch_stride} doubles per "
            f"row, model has {model.n_features} features"))
    if parsed.batch_predict_symbol != parsed.symbol_prefix:
        findings.append(Finding(
            "CG008", Severity.ERROR, path, parsed.batch_stride_line,
            f"predict_batch delegates to "
            f"{parsed.batch_predict_symbol!r}_predict, expected "
            f"{parsed.symbol_prefix!r}_predict"))
    if parsed.reported_n_features != model.n_features:
        findings.append(Finding(
            "CG008", Severity.ERROR, path, parsed.reported_n_features_line,
            f"n_features() returns {parsed.reported_n_features}, model "
            f"has {model.n_features}"))

    # Semantic cross-check: only meaningful while the structure matches,
    # otherwise it would just repeat the structural findings.
    if not findings and parsed.call_indices == list(range(model.n_trees)):
        for x in _probe_vectors(model):
            expected = model.predict_one(x)
            actual = parsed.evaluate(x)
            if not _floats_identical(actual, expected):
                findings.append(Finding(
                    "CG009", Severity.ERROR, path, 0,
                    f"parsed code predicts {actual!r} on a probe vector, "
                    f"model predicts {expected!r}"))
                break
    return findings


def self_check_model(n_trees: int = 5, n_features: int = 7
                     ) -> BoostedTreesModel:
    """A small deterministic ensemble for driver self-checks and tests.

    Built directly from node arrays (no training) so ``repro-t3 check``
    can exercise the codegen path without any saved model artifact.
    Thresholds include negative, subnormal-ish, and integral values to
    stress literal round-tripping.
    """
    rng = derive_rng(DEFAULT_SEED, "checks", "codegen-self-check")
    trees = []
    for _ in range(n_trees):
        # Node 1 must split on a different feature than node 0: nesting
        # the same feature with a random tighter threshold can produce a
        # provably dead branch (flagged by EA001).
        root_feature = int(rng.integers(0, n_features))
        child_feature = (root_feature + 1
                         + int(rng.integers(0, n_features - 1))) % n_features
        feature = [root_feature, child_feature, LEAF, LEAF, LEAF]
        threshold = [float(rng.normal()), float(rng.normal()) * 1e-7,
                     0.0, 0.0, 0.0]
        left = [1, 3, LEAF, LEAF, LEAF]
        right = [2, 4, LEAF, LEAF, LEAF]
        value = [0.0, 0.0, float(rng.normal()), float(rng.normal()),
                 float(rng.normal())]
        trees.append(Tree(
            feature=np.array(feature), threshold=np.array(threshold),
            left=np.array(left), right=np.array(right),
            value=np.array(value)))
    return BoostedTreesModel(trees, base_score=0.125, n_features=n_features)
